"""Job scheduling substrate: allocation policies and co-scheduling.

INRFlow "models the behaviour of large-scale parallel systems, including
... the scheduling policies (selection, allocation and mapping)" (paper
§4.1).  This package provides that layer: several jobs share one machine,
an allocation policy assigns each a disjoint set of endpoints, and the
co-scheduler runs them concurrently through the flow engine, measuring the
network interference each job suffers relative to running alone.
"""

from repro.scheduling.allocator import (aligned_allocation,
                                        contiguous_allocation,
                                        random_allocation)
from repro.scheduling.coscheduler import (CoScheduleResult, JobResult,
                                          coschedule, merge_flowsets)
from repro.scheduling.jobs import Job

__all__ = [
    "CoScheduleResult",
    "Job",
    "JobResult",
    "aligned_allocation",
    "coschedule",
    "contiguous_allocation",
    "merge_flowsets",
    "random_allocation",
]
