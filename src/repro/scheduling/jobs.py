"""Job descriptions for the co-scheduling layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Job:
    """One application to co-schedule: a named workload over N tasks.

    ``params`` are forwarded to the workload constructor; ``seed`` keeps
    each job's traffic reproducible independently of its peers.
    """

    name: str
    workload: str
    tasks: int
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tasks < 2:
            raise ConfigError(f"job {self.name!r} needs at least 2 tasks")

    def build_workload(self) -> Workload:
        from repro.workloads import build

        return build(self.workload, self.tasks, seed=self.seed,
                     **self.params)

    def describe(self) -> str:
        return f"{self.name}: {self.workload} x {self.tasks} tasks"
