"""Co-scheduling: run several jobs concurrently on one machine.

The co-scheduler merges every job's flow DAG into one :class:`FlowSet`
(task ids offset per job), concatenates the per-job placements, and runs a
single simulation — so the jobs contend for links exactly as they would on
a real shared interconnect.  Per-job metrics compare against each job
running *alone* on the same allocation, isolating network interference
from allocation quality.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.engine import simulate
from repro.engine.flows import FlowSet
from repro.errors import ConfigError
from repro.scheduling.jobs import Job
from repro.topology.base import Topology


def merge_flowsets(flowsets: Sequence[FlowSet]
                   ) -> tuple[FlowSet, list[slice]]:
    """Concatenate flow DAGs with task- and flow-id offsets.

    Returns the merged set plus one flow-id slice per input, so per-job
    completion times can be read back out of the combined result.
    """
    if not flowsets:
        raise ConfigError("nothing to merge")
    task_offset = 0
    flow_offset = 0
    src, dst, size, weight, indeg = [], [], [], [], []
    indptr_parts, indices = [], []
    slices = []
    for fs in flowsets:
        src.append(fs.src + task_offset)
        dst.append(fs.dst + task_offset)
        size.append(fs.size)
        weight.append(fs.weight)
        indeg.append(fs.indegree)
        indices.append(fs.succ_indices + flow_offset)
        # indptr: drop the leading 0 of each subsequent part
        part = fs.succ_indptr + (indptr_parts[-1][-1] if indptr_parts else 0)
        indptr_parts.append(part if not indptr_parts else part[1:])
        slices.append(slice(flow_offset, flow_offset + fs.num_flows))
        task_offset += fs.num_tasks
        flow_offset += fs.num_flows
    merged = FlowSet(
        num_tasks=task_offset,
        src=np.concatenate(src),
        dst=np.concatenate(dst),
        size=np.concatenate(size),
        weight=np.concatenate(weight),
        indegree=np.concatenate(indeg),
        succ_indptr=np.concatenate(indptr_parts),
        succ_indices=np.concatenate(indices),
    )
    return merged, slices


@dataclass(frozen=True)
class JobResult:
    """Per-job outcome of a co-scheduled run."""

    job: Job
    makespan: float          # completion of the job's last flow
    isolated_makespan: float # same allocation, machine otherwise idle

    @property
    def slowdown(self) -> float:
        """Network-interference factor (>= ~1)."""
        if self.isolated_makespan <= 0:
            return 1.0
        return self.makespan / self.isolated_makespan


@dataclass(frozen=True)
class CoScheduleResult:
    """Outcome of one co-scheduled batch."""

    jobs: list[JobResult]
    batch_makespan: float

    def worst_slowdown(self) -> float:
        return max(j.slowdown for j in self.jobs)

    def mean_slowdown(self) -> float:
        return float(np.mean([j.slowdown for j in self.jobs]))

    def summary(self) -> str:
        parts = [f"{j.job.name}: {j.slowdown:.2f}x" for j in self.jobs]
        return (f"batch {self.batch_makespan * 1e3:.3f} ms; "
                f"slowdowns {', '.join(parts)}")


def coschedule(topology: Topology, jobs: Sequence[Job],
               allocations: Sequence[np.ndarray], *,
               fidelity: str = "approx") -> CoScheduleResult:
    """Run ``jobs`` concurrently on ``topology`` under given allocations.

    ``allocations[i]`` lists the endpoints of job ``i`` (disjoint across
    jobs, length equal to the job's task count).  Each job is also run in
    isolation on its own allocation to provide the interference baseline.
    """
    if len(jobs) != len(allocations):
        raise ConfigError("need one allocation per job")
    seen: set[int] = set()
    for job, alloc in zip(jobs, allocations):
        if len(alloc) != job.tasks:
            raise ConfigError(
                f"job {job.name!r} has {job.tasks} tasks but "
                f"{len(alloc)} allocated endpoints")
        overlap = seen.intersection(alloc.tolist())
        if overlap:
            raise ConfigError(f"allocations overlap on endpoints {overlap}")
        seen.update(alloc.tolist())

    flowsets = [job.build_workload().build() for job in jobs]
    merged, slices = merge_flowsets(flowsets)
    placement = np.concatenate([np.asarray(a, dtype=np.int64)
                                for a in allocations])
    combined = simulate(topology, merged, placement=placement,
                        fidelity=fidelity)

    results = []
    for job, fs, alloc, sl in zip(jobs, flowsets, allocations, slices):
        alone = simulate(topology, fs,
                         placement=np.asarray(alloc, dtype=np.int64),
                         fidelity=fidelity)
        job_makespan = float(np.nanmax(combined.completion_times[sl]))
        results.append(JobResult(job=job, makespan=job_makespan,
                                 isolated_makespan=alone.makespan))
    return CoScheduleResult(jobs=results,
                            batch_makespan=combined.makespan)
