"""Node-allocation policies for co-scheduled jobs.

An allocation maps each job to a disjoint array of endpoint ids.  The
policies model the spectrum real resource managers produce:

* **contiguous** — first-fit consecutive blocks: the tidy, freshly-booted
  machine.  On the hybrids, consecutive endpoints are consecutive subtorus
  nodes, so small jobs enjoy full intra-subtorus locality.
* **random** — uniformly scattered nodes: the long-running, fragmented
  machine.  This is the fragmentation INRFlow-style studies quantify.
* **aligned** — whole-subtorus granularity on the hybrid topologies: jobs
  receive entire subtori (the unit the paper's lower tier naturally
  isolates), so intra-job traffic of small jobs never shares torus links
  with other jobs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.topology.base import Topology
from repro.topology.hybrid import NestedTopology


def _check_demand(job_sizes: Sequence[int], capacity: int) -> None:
    total = sum(job_sizes)
    if total > capacity:
        raise ConfigError(
            f"jobs need {total} endpoints, machine has {capacity}")
    if any(s < 1 for s in job_sizes):
        raise ConfigError("every job needs at least one endpoint")


def contiguous_allocation(topology: Topology,
                          job_sizes: Sequence[int]) -> list[np.ndarray]:
    """First-fit consecutive endpoint blocks."""
    _check_demand(job_sizes, topology.num_endpoints)
    out = []
    cursor = 0
    for size in job_sizes:
        out.append(np.arange(cursor, cursor + size, dtype=np.int64))
        cursor += size
    return out


def random_allocation(topology: Topology, job_sizes: Sequence[int], *,
                      seed: int = 0) -> list[np.ndarray]:
    """Uniformly scattered disjoint nodes (fragmented machine)."""
    _check_demand(job_sizes, topology.num_endpoints)
    rng = np.random.default_rng(seed)
    pool = rng.permutation(topology.num_endpoints).astype(np.int64)
    out = []
    cursor = 0
    for size in job_sizes:
        out.append(np.sort(pool[cursor:cursor + size]))
        cursor += size
    return out


def aligned_allocation(topology: NestedTopology,
                       job_sizes: Sequence[int]) -> list[np.ndarray]:
    """Whole-subtorus allocation on a hybrid topology.

    Each job receives ``ceil(size / t^3)`` complete subtori and uses the
    first ``size`` nodes of them; no two jobs share a subtorus, so the
    lower tier isolates their intra-job traffic entirely.
    """
    if not isinstance(topology, NestedTopology):
        raise ConfigError("aligned allocation needs a hybrid topology")
    nodes = topology.plan.nodes
    needed = sum(-(-size // nodes) for size in job_sizes)
    if needed > topology.num_subtori:
        raise ConfigError(
            f"jobs need {needed} subtori, machine has {topology.num_subtori}")
    out = []
    next_subtorus = 0
    for size in job_sizes:
        count = -(-size // nodes)
        base = next_subtorus * nodes
        out.append(np.arange(base, base + size, dtype=np.int64))
        next_subtorus += count
    return out


def by_name(policy: str, topology: Topology, job_sizes: Sequence[int], *,
            seed: int = 0) -> list[np.ndarray]:
    """Dispatch on a policy name."""
    if policy == "contiguous":
        return contiguous_allocation(topology, job_sizes)
    if policy == "random":
        return random_allocation(topology, job_sizes, seed=seed)
    if policy == "aligned":
        return aligned_allocation(topology, job_sizes)  # type: ignore[arg-type]
    raise ConfigError(f"unknown allocation policy {policy!r}")
