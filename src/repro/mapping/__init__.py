"""Task-to-endpoint placement policies."""

from repro.mapping.placement import (block_placement, by_name,
                                     identity_placement, random_placement,
                                     spread_placement)

__all__ = [
    "block_placement",
    "by_name",
    "identity_placement",
    "random_placement",
    "spread_placement",
]
