"""Task -> endpoint placements (INRFlow's "allocation and mapping").

A placement is an integer array of length ``num_tasks`` whose entries are
distinct endpoint ids.  Policies:

* **identity** — task ``i`` on endpoint ``i`` (consecutive fill, the
  paper's implied default: virtual grids line up with physical subtori),
* **block** — consecutive fill starting at an offset,
* **spread** — tasks spaced evenly across the machine, used when a
  quadratic workload (MapReduce, n-Bodies) runs fewer tasks than there are
  endpoints but should still exercise the whole network,
* **random** — seeded random sample, modelling fragmented allocations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def _check(num_tasks: int, num_endpoints: int) -> None:
    if num_tasks < 1:
        raise ConfigError("placement needs at least one task")
    if num_tasks > num_endpoints:
        raise ConfigError(
            f"cannot place {num_tasks} tasks on {num_endpoints} endpoints")


def identity_placement(num_tasks: int, num_endpoints: int) -> np.ndarray:
    """Task ``i`` on endpoint ``i``."""
    _check(num_tasks, num_endpoints)
    return np.arange(num_tasks, dtype=np.int64)


def block_placement(num_tasks: int, num_endpoints: int, *,
                    offset: int = 0) -> np.ndarray:
    """Consecutive endpoints starting at ``offset`` (wrapping around)."""
    _check(num_tasks, num_endpoints)
    return (np.arange(num_tasks, dtype=np.int64) + offset) % num_endpoints


def spread_placement(num_tasks: int, num_endpoints: int) -> np.ndarray:
    """Tasks spaced ``num_endpoints // num_tasks`` apart (even coverage)."""
    _check(num_tasks, num_endpoints)
    stride = max(1, num_endpoints // num_tasks)
    return (np.arange(num_tasks, dtype=np.int64) * stride) % num_endpoints


def random_placement(num_tasks: int, num_endpoints: int, *,
                     seed: int = 0) -> np.ndarray:
    """Distinct random endpoints (seeded, reproducible)."""
    _check(num_tasks, num_endpoints)
    rng = np.random.default_rng(seed)
    return rng.permutation(num_endpoints)[:num_tasks].astype(np.int64)


def by_name(name: str, num_tasks: int, num_endpoints: int, *,
            seed: int = 0) -> np.ndarray:
    """Dispatch on a policy name (config/CLI entry point)."""
    if name == "identity":
        return identity_placement(num_tasks, num_endpoints)
    if name == "block":
        return block_placement(num_tasks, num_endpoints)
    if name == "spread":
        return spread_placement(num_tasks, num_endpoints)
    if name == "random":
        return random_placement(num_tasks, num_endpoints, seed=seed)
    raise ConfigError(f"unknown placement policy {name!r}")
