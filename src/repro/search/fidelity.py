"""Multi-fidelity evaluation ladder for design candidates.

Three rungs, each two-plus orders of magnitude cheaper than the next:

* **rank 0 — static proxies** (free): Table-1 style routed average
  distance plus, per workload, the static analyzer's bottleneck bound and
  link-load imbalance (:func:`repro.engine.static.load_imbalance`), all at
  the pilot scale.  No simulation, topologies built once per label and
  cached for the whole search run.
* **rank 1 — pilot simulation**: full flow simulation at
  ``pilot_endpoints`` (a small multiple of every subtorus volume).
* **rank 2 — full fidelity**: flow simulation at the target scale.

Ranks 1 and 2 are executed as ordinary :class:`~repro.sweep.plan.SweepPlan`
runs through :func:`repro.sweep.runner.run_sweep`, so ``--jobs``
parallelism, JSONL checkpointing/resume, per-cell timeouts and fault
injection all come for free; each rank checkpoints to its own file
(``<base>.rank<N>.jsonl``).  When the pilot scale equals the target scale
the ladder *collapses*: rank 1 is skipped entirely rather than paying the
identical simulation twice.

The performance objective is always normalised against the fattree
reference measured at the same rung, so numbers are comparable across
rungs and against the paper's figures.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import (DEFAULT_QUADRATIC_TASKS, TopologySpec,
                               baseline_specs)
from repro.core.explorer import PLACEMENT_POLICY, workload_spec_for
from repro.errors import ConfigError
from repro.search.pareto import Objectives
from repro.search.space import Candidate
from repro.topology.cost import CostModel, upper_tier_switches

#: Default pilot scale: the smallest system every searchable subtorus side
#: (2, 4, 8) tiles.
DEFAULT_PILOT_ENDPOINTS = 512

#: Default search workload set: a collective (lower-tier bound), a stencil
#: with off-subtorus neighbours, and an adversarial permutation (upper-tier
#: bound).  A single workload rewards whichever tier it happens to stress;
#: the mix makes the makespan objective discriminate across the whole
#: design space.
DEFAULT_WORKLOADS = ("allreduce", "nearneighbors", "permutation")

#: Rank numbers of the ladder, in promotion order.
RANK_STATIC, RANK_PILOT, RANK_FULL = 0, 1, 2

#: Rank-0 proxy weights: routed average distance, static bottleneck bound,
#: link-load imbalance (each normalised to the fattree reference).
STATIC_WEIGHTS = {"distance": 0.4, "bottleneck": 0.4, "imbalance": 0.2}


def _ratio(value: float, reference: float) -> float:
    """value/reference with a deterministic zero-reference convention."""
    if reference > 0:
        return value / reference
    return 1.0 if value == 0 else math.inf


@dataclass(frozen=True)
class FidelityLadder:
    """The scales and workload set of one search run."""

    endpoints: int
    pilot_endpoints: int
    workloads: tuple[str, ...]
    fidelity: str = "approx"
    seed: int = 0
    quadratic_tasks: int = DEFAULT_QUADRATIC_TASKS
    static_pairs: int = 2_000

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ConfigError("the search needs at least one workload")
        if self.pilot_endpoints > self.endpoints:
            raise ConfigError(
                f"pilot scale {self.pilot_endpoints} exceeds the target "
                f"scale {self.endpoints}")

    @classmethod
    def for_scale(cls, endpoints: int, workloads, *,
                  pilot_endpoints: int | None = None, **kw) -> FidelityLadder:
        if pilot_endpoints is None:
            pilot_endpoints = min(endpoints, DEFAULT_PILOT_ENDPOINTS)
        return cls(endpoints=endpoints, pilot_endpoints=pilot_endpoints,
                   workloads=tuple(workloads), **kw)

    def collapsed(self) -> bool:
        """Pilot == target scale: rank 1 would duplicate rank 2."""
        return self.pilot_endpoints >= self.endpoints

    def rank_scale(self, rank: int) -> int:
        return self.endpoints if rank == RANK_FULL else self.pilot_endpoints

    def sim_ranks(self) -> tuple[int, ...]:
        return (RANK_FULL,) if self.collapsed() else (RANK_PILOT, RANK_FULL)


@dataclass(frozen=True)
class StaticMetrics:
    """Cached rank-0 measurements of one (healthy) topology."""

    avg_distance: float
    diameter: int
    bottleneck: dict[str, float]   # workload -> static lower bound (s)
    imbalance: dict[str, float]    # workload -> max/mean link drain


@dataclass
class LadderEvaluator:
    """Evaluates candidates at every rung, with rank-0 caching.

    The static cache is keyed by *healthy topology label*, so a candidate
    re-proposed by the random strategy — or proposed at a different fault
    level — never rebuilds a topology or recomputes ``analyze``;
    :attr:`static_cache_hits` counts the saves and the test suite asserts
    on it.  Simulation rungs go through :func:`repro.sweep.runner.run_sweep`
    with ``keep_going=True``: a candidate whose cell fails (e.g. a fault
    level that disconnects the machine) comes back as ``None`` —
    infeasible — instead of aborting the search.
    """

    ladder: FidelityLadder
    cost_model: CostModel = field(default_factory=CostModel)
    jobs: int = 1
    checkpoint: str | os.PathLike | None = None
    resume: bool = False
    cell_timeout: float | None = None
    metrics: str | os.PathLike | None = None
    log: Callable[[str], None] | None = None

    def __post_init__(self) -> None:
        self._static_cache: dict[str, StaticMetrics] = {}
        self.static_cache_hits = 0
        self.static_builds = 0
        self.sim_candidates = {RANK_PILOT: 0, RANK_FULL: 0}
        self.sim_cells = {RANK_PILOT: 0, RANK_FULL: 0}
        self._static_workloads: dict[str, tuple] | None = None
        self.reference_makespans: dict[int, dict[str, dict[str, float]]] = {}

    # ----------------------------------------------------------- objectives
    def cost_objectives(self, cand: Candidate) -> tuple[float, float, int]:
        """(cost overhead, power overhead, switch count) of a candidate.

        A pure function of the design at the *full* scale — the upper tier
        a design would ship with does not shrink at pilot fidelity.
        """
        switches = upper_tier_switches(cand.family, self.ladder.endpoints,
                                       cand.u)
        return (self.cost_model.cost_increase(switches,
                                              self.ladder.endpoints),
                self.cost_model.power_increase(switches,
                                               self.ladder.endpoints),
                switches)

    # --------------------------------------------------------------- rank 0
    def rank0(self, candidates: list[Candidate]
              ) -> dict[str, Objectives | None]:
        """Static-proxy objectives, keyed by candidate label.

        Fault levels share their healthy topology's cached metrics: the
        proxies rank designs, and a handful of failed cables does not move
        a design's *static* rank (the simulation rungs differentiate).
        """
        reference = self._static_metrics("fattree", baseline_specs()[0])
        out: dict[str, Objectives | None] = {}
        for cand in candidates:
            metrics = self._static_metrics(cand.topology_label(), cand.spec())
            terms = []
            for wname in self.ladder.workloads:
                terms.append(
                    STATIC_WEIGHTS["distance"]
                    * _ratio(metrics.avg_distance, reference.avg_distance)
                    + STATIC_WEIGHTS["bottleneck"]
                    * _ratio(metrics.bottleneck[wname],
                             reference.bottleneck[wname])
                    + STATIC_WEIGHTS["imbalance"]
                    * _ratio(metrics.imbalance[wname],
                             reference.imbalance[wname]))
            cost, power, _ = self.cost_objectives(cand)
            out[cand.label()] = Objectives(
                makespan=sum(terms) / len(terms), cost=cost, power=power)
        return out

    def _static_metrics(self, label: str, spec: TopologySpec) -> StaticMetrics:
        if label in self._static_cache:
            self.static_cache_hits += 1
            return self._static_cache[label]
        from repro.engine.static import analyze, load_imbalance
        from repro.topology.analysis import path_length_stats

        scale = self.ladder.pilot_endpoints
        self.static_builds += 1
        if self.log is not None:
            self.log(f"rank0: building {label} @ {scale} endpoints")
        topo = spec.build(scale)
        stats = path_length_stats(topo, max_pairs=self.ladder.static_pairs,
                                  seed=self.ladder.seed)
        bottleneck: dict[str, float] = {}
        imbalance: dict[str, float] = {}
        # one route cache per topology, shared by every workload's static
        # pass (same dict format simulate() takes)
        route_cache: dict[tuple[int, int], np.ndarray] = {}
        for wname, (flows, placement) in self._workload_inputs().items():
            report = analyze(topo, flows, placement=placement,
                             route_cache=route_cache)
            bottleneck[wname] = report.bottleneck_time
            imbalance[wname] = load_imbalance(topo, report)
        metrics = StaticMetrics(avg_distance=stats.average,
                                diameter=topo.routing_diameter(),
                                bottleneck=bottleneck, imbalance=imbalance)
        self._static_cache[label] = metrics
        return metrics

    def _workload_inputs(self) -> dict[str, tuple]:
        """Flows + placement per workload at the pilot scale, built once."""
        if self._static_workloads is None:
            from repro.mapping import placement as placement_mod

            scale = self.ladder.pilot_endpoints
            inputs: dict[str, tuple] = {}
            for wname in self.ladder.workloads:
                wspec = workload_spec_for(
                    wname, scale, quadratic_tasks=self.ladder.quadratic_tasks)
                flows = wspec.build(scale, seed=self.ladder.seed).build()
                tasks = wspec.resolve_tasks(scale)
                placement = None
                if tasks != scale:
                    policy = PLACEMENT_POLICY.get(wname, "spread")
                    placement = placement_mod.by_name(
                        policy, tasks, scale, seed=self.ladder.seed)
                inputs[wname] = (flows, placement)
            self._static_workloads = inputs
        return self._static_workloads

    # ----------------------------------------------------------- ranks 1, 2
    def simulate_rank(self, candidates: list[Candidate], rank: int
                      ) -> dict[str, Objectives | None]:
        """Flow-simulate candidates at a rung; ``None`` marks infeasible.

        One :class:`SweepPlan` covers every candidate plus the fattree and
        torus references, so the parallel runner groups cells by topology
        exactly as the figure sweeps do.
        """
        from repro.sweep import SweepCell, SweepPlan, run_sweep

        if rank not in (RANK_PILOT, RANK_FULL):
            raise ConfigError(f"not a simulation rank: {rank}")
        scale = self.ladder.rank_scale(rank)
        wspecs = {
            wname: workload_spec_for(
                wname, scale, quadratic_tasks=self.ladder.quadratic_tasks)
            for wname in self.ladder.workloads}
        cells = []
        for spec, fail_links, routing in self._cell_targets(candidates):
            for wname, wspec in wspecs.items():
                cells.append(SweepCell(
                    workload=wspec, topology=spec,
                    placement=PLACEMENT_POLICY.get(wname, "spread"),
                    fail_links=fail_links, fail_seed=self.ladder.seed,
                    routing=routing))
        plan = SweepPlan(endpoints=scale, fidelity=self.ladder.fidelity,
                         seed=self.ladder.seed, cells=tuple(cells))
        failures: dict[str, dict] = {}
        records = run_sweep(
            plan, jobs=self.jobs, checkpoint=self._rank_checkpoint(rank),
            resume=self.resume, log=self.log, keep_going=True,
            cell_timeout=self.cell_timeout, failures_out=failures,
            metrics_path=self._rank_metrics(rank))
        self.sim_candidates[rank] += len(candidates)
        self.sim_cells[rank] += len(cells)

        # makespans by (healthy topology label, failed cables, routing)
        makespans: dict[tuple[str, int, str], dict[str, float]] = {}
        for record in records:
            fail = record.faults["cables"] if record.faults else 0
            makespans.setdefault((record.topology, fail, record.routing),
                                 {})[record.workload] = record.makespan
        reference = makespans.get(("fattree", 0, "deterministic"), {})
        self.reference_makespans[rank] = {
            label: makespans.get((label, 0, "deterministic"), {})
            for label in ("fattree", "torus")}

        out: dict[str, Objectives | None] = {}
        for cand in candidates:
            mine = makespans.get(
                (cand.topology_label(), cand.fail_links, cand.routing), {})
            if any(w not in mine or w not in reference
                   for w in self.ladder.workloads):
                out[cand.label()] = None  # at least one cell failed
                continue
            norm = sum(_ratio(mine[w], reference[w])
                       for w in self.ladder.workloads) / len(
                           self.ladder.workloads)
            cost, power, _ = self.cost_objectives(cand)
            out[cand.label()] = Objectives(makespan=norm, cost=cost,
                                           power=power)
        return out

    def _cell_targets(self, candidates: list[Candidate]
                      ) -> list[tuple[TopologySpec, int, str]]:
        """Unique (spec, fail_links, routing) triples: candidates + both
        references (references always run the deterministic policy)."""
        targets: dict[tuple[str, int, str],
                      tuple[TopologySpec, int, str]] = {}
        for spec in baseline_specs():  # fattree reference + torus baseline
            targets[(spec.label(), 0, "deterministic")] = (
                spec, 0, "deterministic")
        for cand in candidates:
            key = (cand.topology_label(), cand.fail_links, cand.routing)
            targets.setdefault(
                key, (cand.spec(), cand.fail_links, cand.routing))
        return list(targets.values())

    def _rank_checkpoint(self, rank: int) -> str | None:
        if self.checkpoint is None:
            return None
        return f"{os.fspath(self.checkpoint)}.rank{rank}.jsonl"

    def _rank_metrics(self, rank: int) -> str | None:
        if self.metrics is None:
            return None
        return f"{os.fspath(self.metrics)}.rank{rank}.metrics.jsonl"
