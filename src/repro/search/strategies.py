"""Pluggable proposal strategies behind one ``SearchStrategy`` protocol.

A strategy only *proposes* candidates; evaluation, caching, promotion and
front bookkeeping live in the optimizer.  The contract:

* ``propose(k)`` returns up to ``k`` candidates (fewer — including none —
  when the strategy is exhausted);
* ``observe(results)`` feeds back ``(candidate, objectives-or-None)``
  pairs from the cheapest fidelity rank (``None`` = infeasible), which
  adaptive strategies use to steer later proposals.

All strategies are deterministic under a fixed seed, which is what makes
whole search reports byte-identical across runs.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigError
from repro.search.pareto import Objectives, nondominated
from repro.search.space import Candidate, DesignSpace


@runtime_checkable
class SearchStrategy(Protocol):
    """What the optimizer needs from a proposal strategy."""

    name: str

    def propose(self, k: int) -> list[Candidate]: ...

    def observe(self, results: list[tuple[Candidate, Objectives | None]]
                ) -> None: ...


class GridStrategy:
    """Exhaustive enumeration in deterministic space order (the baseline
    the paper's 12 hand-picked points correspond to, both families)."""

    name = "grid"

    def __init__(self, space: DesignSpace, seed: int = 0) -> None:
        self._pending = space.enumerate()

    def propose(self, k: int) -> list[Candidate]:
        batch, self._pending = self._pending[:k], self._pending[k:]
        return batch

    def observe(self, results) -> None:
        pass


class RandomStrategy:
    """Uniform sampling with replacement.

    Resampling the same design is allowed by construction — the
    optimizer's rank-0 static cache makes repeats free, and at small
    spaces a random budget larger than the space degrades gracefully into
    near-full coverage.
    """

    name = "random"

    def __init__(self, space: DesignSpace, seed: int = 0) -> None:
        self._space = space
        self._rng = np.random.default_rng(seed)

    def propose(self, k: int) -> list[Candidate]:
        return [self._space.sample(self._rng) for _ in range(k)]

    def observe(self, results) -> None:
        pass


class EvolutionStrategy:
    """(mu + lambda)-style evolutionary search over the design axes.

    Generation 0 is random; afterwards each proposal mutates a parent
    drawn round-robin from the archive of non-dominated feasible designs
    seen so far, with an ``immigrant_rate`` fraction of fresh random
    samples to keep exploring.  Infeasible designs (``None`` objectives —
    e.g. a fault level that disconnects the machine) never become parents.
    """

    name = "evolution"

    def __init__(self, space: DesignSpace, seed: int = 0, *,
                 immigrant_rate: float = 0.25) -> None:
        if not 0.0 <= immigrant_rate <= 1.0:
            raise ConfigError(
                f"immigrant_rate must be in [0, 1], got {immigrant_rate}")
        self._space = space
        self._rng = np.random.default_rng(seed)
        self._immigrant_rate = immigrant_rate
        self._seen: dict[str, Objectives] = {}
        self._by_label: dict[str, Candidate] = {}
        self._next_parent = 0

    def propose(self, k: int) -> list[Candidate]:
        parents = self._parents()
        batch: list[Candidate] = []
        for _ in range(k):
            if not parents or self._rng.random() < self._immigrant_rate:
                batch.append(self._space.sample(self._rng))
                continue
            parent = parents[self._next_parent % len(parents)]
            self._next_parent += 1
            batch.append(self._space.mutate(parent, self._rng))
        return batch

    def observe(self, results) -> None:
        for cand, objectives in results:
            label = cand.label()
            self._by_label[label] = cand
            if objectives is not None:
                self._seen[label] = objectives
            else:
                self._seen.pop(label, None)  # infeasible: never a parent

    def _parents(self) -> list[Candidate]:
        return [self._by_label[label] for label in nondominated(self._seen)]


_STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "evolution": EvolutionStrategy,
}


def available_strategies() -> list[str]:
    """Sorted names of the registered proposal strategies."""
    return sorted(_STRATEGIES)


def make_strategy(name: str, space: DesignSpace, seed: int = 0
                  ) -> SearchStrategy:
    """Instantiate a strategy by name (typed error on unknown names)."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown search strategy {name!r}; "
            f"available: {', '.join(available_strategies())}") from None
    return cls(space, seed)
