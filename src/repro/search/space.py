"""The searchable design space: hybrid ``(family, t, u)`` points.

A :class:`Candidate` is one buildable design — a hybrid family with its
subtorus side and uplink density, optionally degraded by a number of
failed cables (the fault knob lets the search optimise for resilient
operating points).  :class:`DesignSpace` enumerates, samples, and mutates
candidates; every candidate it produces passes the typed hybrid-parameter
validation of :mod:`repro.core.config`, so a search can never propose a
design that explodes deep inside topology construction.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import (HYBRID_FAMILIES, VALID_UPLINK_DENSITIES,
                               TopologySpec, validate_hybrid_params)
from repro.errors import ConfigError
from repro.routing import validate_policy

#: Subtorus sides the search considers (t=1 collapses to a pure fabric and
#: odd sides only admit u=1; the paper explores powers of two).
SEARCH_SIDES = (2, 4, 8)


@dataclass(frozen=True, order=True)
class Candidate:
    """One design point of the search space.

    ``fail_links`` > 0 evaluates the design *degraded*: every simulation
    cell runs with that many failed duplex cables (seeded by the search),
    so the front can trade peak performance against fault tolerance.

    ``routing`` evaluates the design under a candidate-selection policy
    (see :mod:`repro.routing.policy`) — multi-path spreading is a design
    knob just like the uplink density, and the search can trade it against
    the hardware axes.
    """

    family: str
    t: int
    u: int
    fail_links: int = 0
    routing: str = "deterministic"

    def label(self) -> str:
        base = f"{self.family}({self.t},{self.u})"
        if self.fail_links:
            base += f"+{self.fail_links}c"
        if self.routing != "deterministic":
            base += f"~{self.routing}"
        return base

    def topology_label(self) -> str:
        """Label of the healthy topology (the static-cache key)."""
        return f"{self.family}({self.t},{self.u})"

    def spec(self) -> TopologySpec:
        return TopologySpec(self.family, {"t": self.t, "u": self.u})


@dataclass(frozen=True)
class DesignSpace:
    """Every candidate the search may propose at a given system scale.

    ``endpoints`` is the *full-fidelity* scale; ``pilot_endpoints`` the
    cheaper rank-1 scale.  Only sides whose subtori tile **both** scales
    are admitted, so every candidate is buildable at every rung of the
    fidelity ladder.
    """

    endpoints: int
    pilot_endpoints: int | None = None
    families: tuple[str, ...] = HYBRID_FAMILIES
    sides: tuple[int, ...] = SEARCH_SIDES
    densities: tuple[int, ...] = VALID_UPLINK_DENSITIES
    fault_levels: tuple[int, ...] = (0,)
    routings: tuple[str, ...] = ("deterministic",)
    _valid_sides: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for family in self.families:
            if family not in HYBRID_FAMILIES:
                raise ConfigError(
                    f"searchable families are {HYBRID_FAMILIES}, "
                    f"got {self.family_list()}")
        for level in self.fault_levels:
            if not isinstance(level, int) or level < 0:
                raise ConfigError(
                    f"fault levels must be non-negative cable counts, "
                    f"got {self.fault_levels}")
        if not self.routings:
            raise ConfigError("routings axis must not be empty")
        for policy in self.routings:
            validate_policy(policy)
        scales = [self.endpoints]
        if self.pilot_endpoints is not None:
            scales.append(self.pilot_endpoints)
        valid = tuple(t for t in self.sides
                      if all(s % (t ** 3) == 0 for s in scales))
        if not valid:
            raise ConfigError(
                f"no subtorus side from {self.sides} tiles "
                f"{' and '.join(str(s) for s in scales)} endpoints")
        for t, u in itertools.product(valid, self.densities):
            validate_hybrid_params("search space", t, u)
        object.__setattr__(self, "_valid_sides", valid)

    def family_list(self) -> str:
        return ", ".join(self.families)

    def valid_sides(self) -> tuple[int, ...]:
        return self._valid_sides

    # ---------------------------------------------------------- enumeration
    def enumerate(self) -> list[Candidate]:
        """Every candidate, in deterministic (family, t, u, faults,
        routing) order."""
        return [Candidate(f, t, u, fl, rp)
                for f in self.families
                for t in self._valid_sides
                for u in self.densities
                for fl in self.fault_levels
                for rp in self.routings]

    def size(self) -> int:
        return (len(self.families) * len(self._valid_sides)
                * len(self.densities) * len(self.fault_levels)
                * len(self.routings))

    def __contains__(self, cand: Candidate) -> bool:
        return (cand.family in self.families
                and cand.t in self._valid_sides
                and cand.u in self.densities
                and cand.fail_links in self.fault_levels
                and cand.routing in self.routings)

    # ------------------------------------------------------------- sampling
    def sample(self, rng: np.random.Generator) -> Candidate:
        """One uniformly drawn candidate (with replacement)."""
        return Candidate(
            family=self.families[int(rng.integers(len(self.families)))],
            t=self._valid_sides[int(rng.integers(len(self._valid_sides)))],
            u=self.densities[int(rng.integers(len(self.densities)))],
            fail_links=self.fault_levels[
                int(rng.integers(len(self.fault_levels)))],
            routing=self.routings[int(rng.integers(len(self.routings)))])

    def mutate(self, cand: Candidate, rng: np.random.Generator) -> Candidate:
        """One axis-step away from ``cand`` (the evolutionary move).

        Picks an axis uniformly and steps to a neighbouring value on it;
        an axis with a single value mutates another instead.  The result
        is always in the space — the construction-time guard in
        :func:`repro.core.config.validate_hybrid_params` backstops this,
        so a buggy mutation fails typed instead of deep in a build.
        """
        axes = [("family", self.families), ("t", self._valid_sides),
                ("u", self.densities), ("fail_links", self.fault_levels),
                ("routing", self.routings)]
        axes = [(name, vals) for name, vals in axes if len(vals) > 1]
        if not axes:
            return cand
        name, vals = axes[int(rng.integers(len(axes)))]
        current = vals.index(getattr(cand, name))
        if current == 0:
            nxt = 1
        elif current == len(vals) - 1:
            nxt = current - 1
        else:
            nxt = current + (1 if rng.integers(2) else -1)
        mutated = dataclasses.replace(cand, **{name: vals[nxt]})
        validate_hybrid_params(mutated.family, mutated.t, mutated.u,
                               endpoints=self.endpoints)
        return mutated
