"""Multi-fidelity Pareto search over the hybrid design space.

The repo's first closed design loop: instead of replaying the paper's 12
hand-picked ``(t, u)`` points, :func:`~repro.search.optimizer.run_search`
*finds* the Pareto front over (normalised makespan, cost overhead, power
overhead) using pluggable proposal strategies
(:mod:`~repro.search.strategies`), a three-rung fidelity ladder with
successive-halving promotion (:mod:`~repro.search.fidelity`), and
deterministic dominance bookkeeping (:mod:`~repro.search.pareto`).
Candidate simulation reuses the parallel resumable sweep runner, so
``--jobs``, checkpoint/resume, cell timeouts and fault injection all work
inside a search.  ``repro optimize`` is the CLI entry point; see
``docs/search.md``.
"""

from repro.search.fidelity import (DEFAULT_PILOT_ENDPOINTS, DEFAULT_WORKLOADS,
                                   RANK_FULL, RANK_PILOT, RANK_STATIC,
                                   FidelityLadder, LadderEvaluator,
                                   StaticMetrics)
from repro.search.optimizer import SearchResult, run_search
from repro.search.pareto import (OBJECTIVE_NAMES, FrontMember, Objectives,
                                 ParetoFront, nondominated, promote)
from repro.search.report import (REPORT_SCHEMA_VERSION, render_report,
                                 report_document, validate_report,
                                 validate_report_file, write_report)
from repro.search.space import SEARCH_SIDES, Candidate, DesignSpace
from repro.search.strategies import (EvolutionStrategy, GridStrategy,
                                     RandomStrategy, SearchStrategy,
                                     available_strategies, make_strategy)

__all__ = [
    "DEFAULT_PILOT_ENDPOINTS",
    "DEFAULT_WORKLOADS",
    "OBJECTIVE_NAMES",
    "RANK_FULL",
    "RANK_PILOT",
    "RANK_STATIC",
    "REPORT_SCHEMA_VERSION",
    "SEARCH_SIDES",
    "Candidate",
    "DesignSpace",
    "EvolutionStrategy",
    "FidelityLadder",
    "FrontMember",
    "GridStrategy",
    "LadderEvaluator",
    "Objectives",
    "ParetoFront",
    "RandomStrategy",
    "SearchResult",
    "SearchStrategy",
    "StaticMetrics",
    "available_strategies",
    "make_strategy",
    "nondominated",
    "promote",
    "render_report",
    "report_document",
    "run_search",
    "validate_report",
    "validate_report_file",
    "write_report",
]
