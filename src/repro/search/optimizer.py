"""The closed design loop: propose -> evaluate -> promote -> front.

:func:`run_search` wires a proposal strategy to the fidelity ladder:

1. the strategy spends the whole proposal ``budget`` at rank 0, where
   evaluations are static proxies cached per topology label (duplicates
   are free) and results are fed back through ``observe`` so adaptive
   strategies steer;
2. successive halving promotes only the *non-dominated* rank-0 survivors
   (capped at ``1/halving`` of the unique designs) to pilot simulation,
   and only the non-dominated pilot survivors to full fidelity — a design
   dominated at any rung never pays for a more expensive one;
3. the final Pareto front is computed from full-fidelity objectives, with
   the fattree and torus baselines added for context (they are references,
   not budget consumers).

Everything is deterministic under a fixed seed: two identical invocations
produce byte-identical reports (no wall-clock anywhere in the result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.search.fidelity import (RANK_FULL, RANK_PILOT, RANK_STATIC,
                                   FidelityLadder, LadderEvaluator)
from repro.search.pareto import Objectives, ParetoFront, promote
from repro.search.space import Candidate, DesignSpace
from repro.search.strategies import SearchStrategy
from repro.topology.cost import CostModel, upper_tier_switches

#: Proposals requested from the strategy per ask/tell round.
DEFAULT_BATCH = 8

#: Successive-halving rate: at most 1/halving of a rung's designs climb.
DEFAULT_HALVING = 2


@dataclass
class SearchResult:
    """Everything a search run produced, ready for the JSON report."""

    space: DesignSpace
    ladder: FidelityLadder
    strategy: str
    budget: int
    halving: int
    front: ParetoFront
    cost_model: CostModel = field(default_factory=CostModel)
    evaluations: list[dict] = field(default_factory=list)
    rank_summary: dict[str, dict] = field(default_factory=dict)
    references: dict[str, dict] = field(default_factory=dict)

    def front_rows(self) -> list[dict]:
        """Front members as plain dicts, deterministic order."""
        rows = []
        for member in self.front.members():
            cand = member.payload
            row = {"label": member.label,
                   "objectives": member.objectives.as_dict()}
            if isinstance(cand, Candidate):
                row.update({"family": cand.family, "t": cand.t, "u": cand.u,
                            "fail_links": cand.fail_links,
                            "baseline": False})
            else:  # fattree/torus reference entry
                row.update({"family": member.label, "t": None, "u": None,
                            "fail_links": 0, "baseline": True})
            rows.append(row)
        return rows


def run_search(space: DesignSpace, strategy: SearchStrategy,
               ladder: FidelityLadder, *, budget: int,
               evaluator: LadderEvaluator | None = None,
               batch: int = DEFAULT_BATCH,
               halving: int = DEFAULT_HALVING,
               log=None) -> SearchResult:
    """Run one complete multi-fidelity search and return its result."""
    if budget < 1:
        raise ConfigError(f"search budget must be >= 1, got {budget}")
    if halving < 2:
        raise ConfigError(f"halving rate must be >= 2, got {halving}")
    if evaluator is None:
        evaluator = LadderEvaluator(ladder)
    evaluations: list[dict] = []

    # ------------------------------------------------- rank 0: proposal loop
    by_label: dict[str, Candidate] = {}
    rank0: dict[str, Objectives] = {}
    proposed = 0
    while proposed < budget:
        requested = min(batch, budget - proposed)
        candidates = strategy.propose(requested)
        if not candidates:
            break  # exhausted (e.g. grid smaller than the budget)
        proposed += len(candidates)
        cached = [c.label() in rank0 for c in candidates]
        results = evaluator.rank0(candidates)
        for cand, was_cached in zip(candidates, cached):
            label = cand.label()
            by_label.setdefault(label, cand)
            rank0[label] = results[label]
            evaluations.append({
                "label": label, "rank": RANK_STATIC,
                "objectives": results[label].as_dict(),
                "cached": was_cached})
        strategy.observe([(c, results[c.label()]) for c in candidates])
    if not rank0:
        raise ConfigError("the strategy proposed no candidates")
    if log is not None:
        log(f"rank0: {proposed} proposals, {len(rank0)} unique designs, "
            f"{evaluator.static_cache_hits} static cache hits")

    # ---------------------------------------------- successive halving climb
    cap = max(1, math.ceil(len(rank0) / halving))
    survivors = promote(rank0, cap=cap)
    entries: dict[str, Objectives] = rank0
    if not ladder.collapsed():
        rank1 = evaluator.simulate_rank([by_label[s] for s in survivors],
                                        RANK_PILOT)
        for label in survivors:
            evaluations.append(_sim_evaluation(label, RANK_PILOT,
                                               rank1[label]))
        entries = {k: v for k, v in rank1.items() if v is not None}
        if log is not None:
            log(f"rank1: {len(survivors)} pilot simulations, "
                f"{len(survivors) - len(entries)} infeasible")
        cap = max(1, math.ceil(len(survivors) / halving))
        survivors = promote(entries, cap=cap)

    rank2 = evaluator.simulate_rank([by_label[s] for s in survivors],
                                    RANK_FULL)
    for label in survivors:
        evaluations.append(_sim_evaluation(label, RANK_FULL, rank2[label]))
    final = {k: v for k, v in rank2.items() if v is not None}
    if log is not None:
        log(f"rank2: {len(survivors)} full-fidelity simulations, "
            f"{len(survivors) - len(final)} infeasible")

    # ------------------------------------------------------- front + report
    front = ParetoFront()
    for label in sorted(final):
        front.add(label, final[label], payload=by_label[label])
    references = _reference_entries(evaluator)
    for name, entry in references.items():
        front.add(name, Objectives(**entry["objectives"]), payload=None)

    result = SearchResult(
        space=space, ladder=ladder, strategy=strategy.name, budget=budget,
        halving=halving, front=front, cost_model=evaluator.cost_model,
        evaluations=evaluations, references=references)
    result.rank_summary = {
        "rank0": {"scale": ladder.pilot_endpoints, "proposals": proposed,
                  "unique_designs": len(rank0),
                  "static_cache_hits": evaluator.static_cache_hits,
                  "topologies_built": evaluator.static_builds},
        "rank1": ({"skipped": "ladder collapsed (pilot scale == full scale)"}
                  if ladder.collapsed() else
                  {"scale": ladder.pilot_endpoints,
                   "simulations": evaluator.sim_candidates[RANK_PILOT],
                   "sweep_cells": evaluator.sim_cells[RANK_PILOT]}),
        "rank2": {"scale": ladder.endpoints,
                  "simulations": evaluator.sim_candidates[RANK_FULL],
                  "sweep_cells": evaluator.sim_cells[RANK_FULL]},
    }
    return result


def _sim_evaluation(label: str, rank: int,
                    objectives: Objectives | None) -> dict:
    return {"label": label, "rank": rank,
            "objectives": None if objectives is None
            else objectives.as_dict(),
            "cached": False}


def _reference_entries(evaluator: LadderEvaluator) -> dict[str, dict]:
    """Baseline front entries from the full-fidelity reference makespans.

    The fattree is the normalisation reference (makespan 1.0 by
    definition); the bare torus carries the whole workload on hard-wired
    cables (zero upper-tier overhead).
    """
    refs = evaluator.reference_makespans.get(RANK_FULL, {})
    fattree = refs.get("fattree", {})
    torus = refs.get("torus", {})
    workloads = evaluator.ladder.workloads
    entries: dict[str, dict] = {}
    if all(w in fattree for w in workloads):
        cost = evaluator.cost_model.cost_increase(
            _fattree_switches(evaluator), evaluator.ladder.endpoints)
        power = evaluator.cost_model.power_increase(
            _fattree_switches(evaluator), evaluator.ladder.endpoints)
        entries["fattree"] = {
            "objectives": {"makespan": 1.0, "cost": cost, "power": power}}
    if (all(w in torus for w in workloads)
            and all(fattree.get(w, 0) > 0 for w in workloads)):
        norm = sum(torus[w] / fattree[w] for w in workloads) / len(workloads)
        entries["torus"] = {
            "objectives": {"makespan": norm, "cost": 0.0, "power": 0.0}}
    return entries


def _fattree_switches(evaluator: LadderEvaluator) -> int:
    return upper_tier_switches("fattree", evaluator.ladder.endpoints)
