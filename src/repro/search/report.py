"""Schema-versioned JSON search reports (the ``repro optimize`` output).

The report is a single JSON document designed to be byte-identical across
runs with the same seed: keys are sorted, floats are emitted by ``json``
repr, and nothing wall-clock-dependent is included.  CI validates the
schema of a tiny-budget run on every push.

Layout::

    {"schema": "repro-search-report-v1",
     "meta":  {endpoints, pilot_endpoints, budget, seed, strategy,
               halving, fidelity, workloads, families, sides, densities,
               fault_levels, objectives, cost_model},
     "ranks": {rank0: {...}, rank1: {...}, rank2: {...}},
     "front": [{label, family, t, u, fail_links, baseline,
                objectives: {makespan, cost, power}}, ...],
     "references": {fattree: {...}, torus: {...}},
     "evaluations": [{label, rank, objectives|null, cached}, ...]}
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigError
from repro.search.optimizer import SearchResult
from repro.search.pareto import OBJECTIVE_NAMES

#: Schema tag of every search report.
REPORT_SCHEMA_VERSION = "repro-search-report-v1"


def report_document(result: SearchResult) -> dict:
    """The report as a plain dict (see module docstring for the layout)."""
    ladder, space = result.ladder, result.space
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "meta": {
            "endpoints": ladder.endpoints,
            "pilot_endpoints": ladder.pilot_endpoints,
            "budget": result.budget,
            "seed": ladder.seed,
            "strategy": result.strategy,
            "halving": result.halving,
            "fidelity": ladder.fidelity,
            "workloads": list(ladder.workloads),
            "families": list(space.families),
            "sides": list(space.valid_sides()),
            "densities": list(space.densities),
            "fault_levels": list(space.fault_levels),
            "objectives": list(OBJECTIVE_NAMES),
            "cost_model": {
                "switch_cost": result.cost_model.switch_cost,
                "switch_power": result.cost_model.switch_power,
            },
        },
        "ranks": result.rank_summary,
        "front": result.front_rows(),
        "references": result.references,
        "evaluations": result.evaluations,
    }


def render_report(result: SearchResult) -> str:
    """Deterministic JSON text (sorted keys, stable float repr)."""
    return json.dumps(report_document(result), sort_keys=True, indent=2) + "\n"


def write_report(result: SearchResult, path: str | os.PathLike) -> Path:
    """Render and write the report; returns the path written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_report(result))
    return out


# ------------------------------------------------------------------ validate
def validate_report(doc: dict) -> None:
    """Raise :class:`~repro.errors.ConfigError` unless ``doc`` is a valid
    search report: schema tag, meta fields, a mutually non-dominated front,
    and well-formed evaluation entries."""
    if not isinstance(doc, dict):
        raise ConfigError("search report must be a JSON object")
    if doc.get("schema") != REPORT_SCHEMA_VERSION:
        raise ConfigError(
            f"unknown search report schema {doc.get('schema')!r}; "
            f"expected {REPORT_SCHEMA_VERSION}")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        raise ConfigError("search report is missing its meta object")
    for fld in ("endpoints", "budget", "seed", "strategy", "workloads",
                "objectives"):
        if fld not in meta:
            raise ConfigError(f"search report meta lacks {fld!r}")
    if meta["objectives"] != list(OBJECTIVE_NAMES):
        raise ConfigError(
            f"report objectives {meta['objectives']} do not match "
            f"{list(OBJECTIVE_NAMES)}")
    front = doc.get("front")
    if not isinstance(front, list) or not front:
        raise ConfigError("search report front is missing or empty")
    vectors = []
    for row in front:
        if not isinstance(row, dict) or "label" not in row:
            raise ConfigError("front rows need at least a label")
        objectives = row.get("objectives")
        if (not isinstance(objectives, dict)
                or set(objectives) != set(OBJECTIVE_NAMES)
                or not all(isinstance(objectives[k], (int, float))
                           for k in OBJECTIVE_NAMES)):
            raise ConfigError(
                f"front row {row.get('label')!r} has malformed objectives")
        vectors.append((row["label"],
                        tuple(objectives[k] for k in OBJECTIVE_NAMES)))
    for label_a, a in vectors:
        for label_b, b in vectors:
            if (label_a != label_b
                    and all(x <= y for x, y in zip(a, b))
                    and any(x < y for x, y in zip(a, b))):
                raise ConfigError(
                    f"front is not mutually non-dominated: "
                    f"{label_a} dominates {label_b}")
    evaluations = doc.get("evaluations")
    if not isinstance(evaluations, list):
        raise ConfigError("search report needs an evaluations log")
    for entry in evaluations:
        if (not isinstance(entry, dict) or "label" not in entry
                or entry.get("rank") not in (0, 1, 2)):
            raise ConfigError(f"malformed evaluation entry: {entry!r}")


def validate_report_file(path: str | os.PathLike) -> dict:
    """Load + validate a report file; returns the document."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read search report {path}: {exc}") from exc
    validate_report(doc)
    return doc
