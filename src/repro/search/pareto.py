"""Pareto dominance bookkeeping for the design search.

The search minimises three objectives per design (see ``docs/search.md``):

* ``makespan`` — mean normalised makespan over the chosen workload set
  (1.0 = the fattree reference at the same fidelity rank),
* ``cost``    — fractional upper-tier cost overhead (Table 2 model),
* ``power``   — fractional upper-tier power overhead.

Everything here is pure and deterministic: dominance is exact float
comparison, fronts iterate in a stable order independent of insertion
order, and :func:`promote` — the successive-halving rung filter — never
lets a dominated candidate climb to a more expensive fidelity rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Objective names, in report order.  All are minimised.
OBJECTIVE_NAMES = ("makespan", "cost", "power")


@dataclass(frozen=True)
class Objectives:
    """One design's objective vector (all minimised)."""

    makespan: float
    cost: float
    power: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.makespan, self.cost, self.power)

    def as_dict(self) -> dict[str, float]:
        return {"makespan": self.makespan, "cost": self.cost,
                "power": self.power}

    def dominates(self, other: Objectives) -> bool:
        """True when self is no worse everywhere and better somewhere."""
        mine, theirs = self.as_tuple(), other.as_tuple()
        return (all(a <= b for a, b in zip(mine, theirs))
                and any(a < b for a, b in zip(mine, theirs)))


@dataclass(frozen=True)
class FrontMember:
    """One entry of a Pareto front: a labelled design and its objectives."""

    label: str
    objectives: Objectives
    payload: Any = None   # opaque candidate object carried along

    def sort_key(self) -> tuple:
        return (*self.objectives.as_tuple(), self.label)


class ParetoFront:
    """A mutually non-dominated set with deterministic iteration order.

    ``add`` keeps the invariant incrementally: a new design enters only if
    no current member dominates it, and evicts every member it dominates.
    Duplicate labels are replaced (latest objectives win), so re-evaluating
    a candidate at a higher fidelity rank updates its entry in place.
    """

    def __init__(self) -> None:
        self._members: dict[str, FrontMember] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, label: str) -> bool:
        return label in self._members

    def add(self, label: str, objectives: Objectives,
            payload: Any = None) -> bool:
        """Offer a design to the front; True when it enters (or updates)."""
        incoming = FrontMember(label, objectives, payload)
        others = [m for m in self._members.values() if m.label != label]
        if any(m.objectives.dominates(objectives) for m in others):
            # an existing entry for this label may itself now be stale
            self._members.pop(label, None)
            self._requeue(others)
            return False
        survivors = [m for m in others
                     if not objectives.dominates(m.objectives)]
        self._requeue(survivors)
        self._members[label] = incoming
        return True

    def _requeue(self, members: list[FrontMember]) -> None:
        self._members = {m.label: m for m in members}

    def members(self) -> list[FrontMember]:
        """Front members in deterministic (objectives, label) order."""
        return sorted(self._members.values(), key=FrontMember.sort_key)

    def dominates(self, objectives: Objectives) -> bool:
        """Whether any member dominates the given objective vector."""
        return any(m.objectives.dominates(objectives)
                   for m in self._members.values())


def nondominated(entries: dict[str, Objectives]) -> list[str]:
    """Labels of the mutually non-dominated subset, deterministically
    ordered by (objectives, label)."""
    labels = sorted(entries, key=lambda k: (*entries[k].as_tuple(), k))
    return [a for a in labels
            if not any(entries[b].dominates(entries[a]) for b in labels
                       if b != a)]


def promote(entries: dict[str, Objectives], *, cap: int) -> list[str]:
    """Successive-halving rung filter: the survivors that may pay for the
    next fidelity rank.

    Only non-dominated designs are eligible — a candidate dominated at the
    current rank is never promoted, whatever the cap allows — and at most
    ``cap`` of them survive, in deterministic (objectives, label) order.
    """
    if cap < 1:
        return []
    return nondominated(entries)[:cap]
