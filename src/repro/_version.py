"""Single source of the engine version string.

Lives in its own import-free module because the sweep layer folds the
version into cell fingerprints (a result simulated by one engine version
must never satisfy a request against another) and importing the ``repro``
package root from ``repro.sweep.plan`` would be circular.
"""

__version__ = "1.0.0"
