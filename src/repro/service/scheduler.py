"""Bounded, weighted fair queueing for the simulation service.

One greedy tenant must not starve the others: the scheduler implements
*stride scheduling* over per-tenant FIFO lanes.  Every tenant carries a
pass value; each dequeue picks the lane with the smallest pass and
advances it by the lane's stride (``SCALE / weight``), so over time each
backlogged tenant receives service proportional to its weight while
requests within one tenant stay in submission order.

The queue is bounded: :meth:`FairScheduler.submit` raises the typed
:class:`~repro.errors.QueueFullError` once ``capacity`` entries are
waiting, which the HTTP front-end surfaces as a 429 so clients back off
instead of piling work onto a saturated broker.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.errors import ConfigError, QueueFullError

__all__ = ["FairScheduler"]

#: Stride numerator; weights divide this, so pass values stay integral
#: and exactly comparable for any weight up to the scale.
STRIDE_SCALE = 1 << 20


class FairScheduler:
    """Weighted fair queue of ``(tenant, item)`` submissions.

    Parameters
    ----------
    capacity:
        Maximum entries queued across all tenants; further submissions
        raise :class:`~repro.errors.QueueFullError`.
    weights:
        Optional ``tenant -> weight`` map (positive integers).  A tenant
        with weight 2 drains twice as fast as a weight-1 tenant while
        both are backlogged.  Unknown tenants get ``default_weight``.
    """

    def __init__(self, capacity: int, *,
                 weights: dict[str, int] | None = None,
                 default_weight: int = 1) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if default_weight < 1:
            raise ConfigError(
                f"default_weight must be >= 1, got {default_weight}")
        for tenant, weight in (weights or {}).items():
            if not isinstance(weight, int) or weight < 1:
                raise ConfigError(
                    f"weight for tenant {tenant!r} must be a positive "
                    f"integer, got {weight!r}")
        self.capacity = capacity
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._lanes: dict[str, deque[Any]] = {}
        self._passes: dict[str, int] = {}
        #: pass value newly backlogged lanes start from — the max pass
        #: already issued, so a tenant cannot bank credit while idle
        self._clock = 0
        self._depth = 0

    # ------------------------------------------------------------------

    def _stride(self, tenant: str) -> int:
        return STRIDE_SCALE // self._weights.get(tenant,
                                                 self._default_weight)

    @property
    def depth(self) -> int:
        """Entries currently queued across all tenants."""
        return self._depth

    def __len__(self) -> int:
        return self._depth

    def backlog(self) -> dict[str, int]:
        """Queued entries per tenant (only tenants with a backlog)."""
        return {t: len(lane) for t, lane in self._lanes.items() if lane}

    # ------------------------------------------------------------------

    def submit(self, tenant: str, item: Any) -> None:
        """Queue one item for a tenant, or raise :class:`QueueFullError`."""
        if self._depth >= self.capacity:
            raise QueueFullError(capacity=self.capacity, depth=self._depth,
                                 tenant=tenant)
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = deque()
        if not lane:
            # (re)joining the backlog: start at the current clock so an
            # idle period never accumulates scheduling credit
            self._passes[tenant] = max(self._passes.get(tenant, 0),
                                       self._clock)
        lane.append(item)
        self._depth += 1

    def next(self) -> tuple[str, Any] | None:
        """Dequeue the fairest next ``(tenant, item)``; ``None`` if empty.

        Smallest pass wins; ties break on the tenant name so the order is
        deterministic and testable.
        """
        best: str | None = None
        for tenant, lane in self._lanes.items():
            if not lane:
                continue
            if best is None or (self._passes[tenant], tenant) \
                    < (self._passes[best], best):
                best = tenant
        if best is None:
            return None
        lane = self._lanes[best]
        item = lane.popleft()
        self._passes[best] += self._stride(best)
        self._clock = max(self._clock, self._passes[best])
        self._depth -= 1
        if not lane:
            # prune the drained lane: a long-lived service sees an
            # unbounded stream of tenant names, and every empty lane
            # would otherwise stay in the scan above forever.  Dropping
            # the pass value too is behaviour-preserving — the clock is
            # >= every issued pass, so a rejoining tenant restarts from
            # the clock either way (idle time never banks credit).
            del self._lanes[best]
            del self._passes[best]
        return best, item

    def drain(self, limit: int | None = None) -> Iterator[tuple[str, Any]]:
        """Yield up to ``limit`` fair-ordered entries (all, if ``None``)."""
        taken = 0
        while limit is None or taken < limit:
            entry = self.next()
            if entry is None:
                return
            taken += 1
            yield entry
