"""Simulation-as-a-service: async front-end over the sweep runner.

A long-lived service layer (``repro serve`` / ``repro submit``) that
answers repeated design-point questions without repeated simulation:

* :mod:`repro.service.store` — content-addressed, schema-versioned
  result store keyed by the canonical cell fingerprint;
* :mod:`repro.service.scheduler` — bounded queue with weighted
  per-tenant fair sharing (stride scheduling);
* :mod:`repro.service.broker` — in-flight dedup, fair batching, and the
  bridge into :func:`repro.sweep.runner.run_sweep`;
* :mod:`repro.service.protocol` — strict JSON wire forms;
* :mod:`repro.service.http` — stdlib-only asyncio HTTP front-end plus a
  small synchronous client.

See ``docs/service.md`` for the architecture and the wire protocol.
"""

from repro.service.broker import Broker
from repro.service.http import ServiceClient, ServiceServer
from repro.service.protocol import (cell_from_json, cell_to_json,
                                    submission_from_json)
from repro.service.scheduler import FairScheduler
from repro.service.store import (RESULT_SCHEMA_VERSION, ResultStore,
                                 ResultStoreWarning, content_digest,
                                 validate_store_record)

__all__ = [
    "Broker",
    "FairScheduler",
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "ResultStoreWarning",
    "ServiceClient",
    "ServiceServer",
    "cell_from_json",
    "cell_to_json",
    "content_digest",
    "submission_from_json",
    "validate_store_record",
]
