"""JSON wire protocol of the simulation service.

One canonical JSON shape per :class:`~repro.sweep.plan.SweepCell`, plus
the submission envelope clients POST to the front-end.  Parsing is
strict: every malformed field raises a typed
:class:`~repro.errors.ProtocolError` naming the offending field (the
HTTP layer maps it to a 400, mirroring the CLI's exit-2 validation
style), so a bad request can never reach the simulation engine.

Cell JSON layout::

    {"workload": "allreduce", "tasks": null, "workload_params": {},
     "topology": {"family": "nesttree", "params": {"t": 2, "u": 4}},
     "placement": "spread",
     "faults": {"cables": 4, "uplinks": 2, "seed": 7},   # or null
     "routing": "deterministic",
     "timeline": {"cables": 1, "uplinks": 1, "seed": 0,   # or null
                  "horizon": 1.0, "mttr": 0.25}}

The plan globals (endpoints, fidelity, seed) are *server* configuration:
a service instance answers for exactly one global configuration, echoed
in every response, and the content digest folds them in so stores of
different configurations never alias.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import TopologySpec, WorkloadSpec
from repro.errors import ConfigError, ProtocolError
from repro.routing import ROUTING_POLICIES
from repro.sweep.plan import SweepCell
from repro.topology.timeline import TimelineSpec

__all__ = ["PLACEMENTS", "cell_from_json", "cell_to_json",
           "submission_from_json"]

#: Placement policies :func:`repro.mapping.placement.by_name` dispatches.
PLACEMENTS = ("identity", "block", "spread", "random")

#: Cells one submission may carry; a guard against a single request
#: swallowing the whole queue capacity.
MAX_CELLS_PER_SUBMISSION = 256

_CELL_FIELDS = frozenset({
    "workload", "tasks", "workload_params", "topology", "placement",
    "faults", "routing", "timeline",
})


def _require(doc: dict, field: str, kinds, where: str) -> Any:
    value = doc.get(field)
    if not isinstance(value, kinds):
        names = "/".join(k.__name__ for k in
                         (kinds if isinstance(kinds, tuple) else (kinds,)))
        raise ProtocolError(
            f"{where}: field {field!r} must be {names}, "
            f"got {type(value).__name__}")
    return value


def cell_to_json(cell: SweepCell) -> dict:
    """The canonical JSON form of a cell (inverse of
    :func:`cell_from_json`)."""
    return {
        "workload": cell.workload.name,
        "tasks": cell.workload.tasks,
        "workload_params": dict(cell.workload.params),
        "topology": {"family": cell.topology.family,
                     "params": dict(cell.topology.params)},
        "placement": cell.placement,
        "faults": cell.fault_fingerprint(),
        "routing": cell.routing,
        "timeline": (None if cell.timeline is None
                     else cell.timeline.fingerprint()),
    }


def cell_from_json(doc: Any, *, where: str = "cell") -> SweepCell:
    """Parse and validate one cell document into a :class:`SweepCell`.

    Raises :class:`~repro.errors.ProtocolError` naming the bad field for
    anything the simulation layer would reject later — unknown workload,
    topology family, placement or routing policy, invalid hybrid
    parameters, or a cell carrying both static faults and a timeline.
    """
    from repro.topology.registry import available as topo_available
    from repro.workloads import available as wl_available

    if not isinstance(doc, dict):
        raise ProtocolError(
            f"{where}: must be an object, got {type(doc).__name__}")
    unknown = doc.keys() - _CELL_FIELDS
    if unknown:
        raise ProtocolError(
            f"{where}: unknown fields {sorted(unknown)}; "
            f"expected a subset of {sorted(_CELL_FIELDS)}")

    workload = _require(doc, "workload", str, where)
    if workload not in wl_available():
        raise ProtocolError(
            f"{where}: unknown workload {workload!r}; "
            f"available: {wl_available()}")
    tasks = doc.get("tasks")
    if tasks is not None and (not isinstance(tasks, int) or tasks < 1):
        raise ProtocolError(
            f"{where}: field 'tasks' must be a positive integer or null, "
            f"got {tasks!r}")
    wl_params = doc.get("workload_params") or {}
    if not isinstance(wl_params, dict):
        raise ProtocolError(
            f"{where}: field 'workload_params' must be an object")

    topo_doc = _require(doc, "topology", dict, where)
    family = topo_doc.get("family")
    if not isinstance(family, str) or family not in topo_available():
        raise ProtocolError(
            f"{where}: unknown topology family {family!r}; "
            f"available: {topo_available()}")
    topo_params = topo_doc.get("params") or {}
    if not isinstance(topo_params, dict):
        raise ProtocolError(
            f"{where}: field 'topology.params' must be an object")

    placement = doc.get("placement", "spread")
    if placement not in PLACEMENTS:
        raise ProtocolError(
            f"{where}: unknown placement {placement!r}; "
            f"available: {list(PLACEMENTS)}")
    routing = doc.get("routing", "deterministic")
    if routing not in ROUTING_POLICIES:
        raise ProtocolError(
            f"{where}: unknown routing policy {routing!r}; "
            f"available: {sorted(ROUTING_POLICIES)}")

    faults = doc.get("faults")
    fail_links = fail_uplinks = fail_seed = 0
    if faults is not None:
        if not isinstance(faults, dict):
            raise ProtocolError(
                f"{where}: field 'faults' must be an object or null")
        for field in ("cables", "uplinks", "seed"):
            value = faults.get(field, 0)
            if not isinstance(value, int) or value < 0:
                raise ProtocolError(
                    f"{where}: field 'faults.{field}' must be a "
                    f"non-negative integer, got {value!r}")
        fail_links = faults.get("cables", 0)
        fail_uplinks = faults.get("uplinks", 0)
        fail_seed = faults.get("seed", 0)

    timeline = None
    tl_doc = doc.get("timeline")
    if tl_doc is not None:
        if not isinstance(tl_doc, dict):
            raise ProtocolError(
                f"{where}: field 'timeline' must be an object or null")
        try:
            timeline = TimelineSpec(
                cables=int(tl_doc.get("cables", 0)),
                uplinks=int(tl_doc.get("uplinks", 0)),
                seed=int(tl_doc.get("seed", 0)),
                horizon=float(tl_doc.get("horizon", 1.0)),
                mttr=(None if tl_doc.get("mttr") is None
                      else float(tl_doc["mttr"])))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"{where}: invalid timeline: {exc}") from None

    try:
        return SweepCell(
            workload=WorkloadSpec(workload, tasks=tasks, params=wl_params),
            topology=TopologySpec(family, topo_params),
            placement=placement,
            fail_links=fail_links,
            fail_uplinks=fail_uplinks,
            fail_seed=fail_seed,
            routing=routing,
            timeline=timeline)
    except ConfigError as exc:
        # hybrid (t, u) validation and the faults/timeline exclusivity
        # guard fire inside the spec constructors; surface them typed
        raise ProtocolError(f"{where}: {exc}") from None


def submission_from_json(doc: Any) -> tuple[str, list[SweepCell]]:
    """Parse a submission envelope into ``(tenant, cells)``.

    Envelope shape: ``{"tenant": "alice", "cells": [<cell>, ...]}``.
    ``tenant`` is optional (defaults to ``"default"``); ``cells`` must be
    a non-empty list of at most :data:`MAX_CELLS_PER_SUBMISSION` cells.
    """
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"submission: must be an object, got {type(doc).__name__}")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            f"submission: field 'tenant' must be a non-empty string, "
            f"got {tenant!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ProtocolError(
            "submission: field 'cells' must be a non-empty list")
    if len(cells) > MAX_CELLS_PER_SUBMISSION:
        raise ProtocolError(
            f"submission: {len(cells)} cells exceed the per-request "
            f"limit of {MAX_CELLS_PER_SUBMISSION}")
    return tenant, [cell_from_json(c, where=f"cells[{i}]")
                    for i, c in enumerate(cells)]
