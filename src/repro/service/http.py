"""Stdlib-only asyncio HTTP front-end for the simulation service.

A deliberately small HTTP/1.1 server (``asyncio.start_server``; no
third-party dependencies) exposing the broker as four JSON endpoints:

* ``POST /v1/submit`` — submission envelope in, digests out.  With
  ``"wait": true`` the response carries the full result documents
  (the request blocks until its cells settle); otherwise it returns
  immediately with per-cell ``done``/``pending`` statuses.
* ``GET /v1/result/<digest>`` — ``200`` with the result document,
  ``202`` while the digest is queued or simulating, ``404`` for a
  digest this service has never seen.
* ``GET /v1/stats`` — broker counters, queue state, store statistics.
* ``GET /v1/healthz`` — liveness probe.

Error mapping is typed end to end:
:class:`~repro.errors.ProtocolError` → 400 (the body names the bad
field), :class:`~repro.errors.QueueFullError` → 429 with the queue
``capacity`` and ``depth`` so clients can back off deliberately.
Malformed framing — a non-numeric, negative, or conflicting-duplicate
``Content-Length`` — is a 400 before the body is read, never a 500.

Connections are one-request (``Connection: close``): the service's unit
of work is a simulation measured in seconds, so connection reuse buys
nothing and the parser stays trivially auditable.
"""

from __future__ import annotations

import asyncio
import http.client
import json

from repro.errors import ProtocolError, QueueFullError, ServiceError
from repro.service.broker import Broker
from repro.service.protocol import submission_from_json

__all__ = ["ServiceClient", "ServiceServer"]

#: Bytes a request body may carry (a full 256-cell submission is ~100 KB).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error"}


def _response(status: int, body: dict) -> bytes:
    payload = json.dumps(body).encode()
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode() + payload


class ServiceServer:
    """One listening socket bound to one :class:`Broker`."""

    def __init__(self, broker: Broker, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.broker = broker
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind, start the broker, and return the bound ``(host, port)``
        (the port is resolved when 0 was requested)."""
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.broker.close()

    # ------------------------------------------------------------- plumbing

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._respond(reader)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never kill the server on one request
            status, body = 500, {"error": type(exc).__name__,
                                 "message": str(exc)}
        try:
            writer.write(_response(status, body))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> tuple[int, dict]:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                return 400, {"error": "ProtocolError",
                             "message": "malformed request line"}
            method, target, _ = parts
            length: int | None = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    # strict non-negative decimal only: int() would also
                    # accept "+5", "-5" or "1_0", and a negative length
                    # must never reach readexactly()
                    value = value.strip()
                    if not (value.isascii() and value.isdigit()):
                        return 400, {"error": "ProtocolError",
                                     "message": "bad Content-Length"}
                    parsed = int(value)
                    if length is not None and parsed != length:
                        return 400, {"error": "ProtocolError",
                                     "message": "conflicting duplicate "
                                                "Content-Length headers"}
                    length = parsed
            if length is None:
                length = 0
            if length > MAX_BODY_BYTES:
                return 413, {"error": "ProtocolError",
                             "message": f"body exceeds {MAX_BODY_BYTES} "
                                        f"bytes"}
            body = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, UnicodeDecodeError):
            return 400, {"error": "ProtocolError",
                         "message": "truncated request"}
        return await self._route(method, target, body)

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        if target == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "ProtocolError",
                             "message": "healthz is GET-only"}
            return 200, {"ok": True}
        if target == "/v1/stats":
            if method != "GET":
                return 405, {"error": "ProtocolError",
                             "message": "stats is GET-only"}
            return 200, self.broker.stats()
        if target.startswith("/v1/result/"):
            if method != "GET":
                return 405, {"error": "ProtocolError",
                             "message": "result is GET-only"}
            return self._result(target[len("/v1/result/"):])
        if target == "/v1/submit":
            if method != "POST":
                return 405, {"error": "ProtocolError",
                             "message": "submit is POST-only"}
            return await self._submit(body)
        return 404, {"error": "ProtocolError",
                     "message": f"unknown endpoint {target!r}"}

    def _result(self, digest: str) -> tuple[int, dict]:
        doc = self.broker.peek(digest)
        if doc is None:
            return 404, {"error": "ServiceError",
                         "message": f"unknown digest {digest!r}"}
        return (202 if doc.get("status") == "pending" else 200), doc

    async def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            doc = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            return 400, {"error": "ProtocolError",
                         "message": f"undecodable JSON body: {exc}"}
        wait = isinstance(doc, dict) and bool(doc.pop("wait", False))
        try:
            tenant, cells = submission_from_json(doc)
            digests = self.broker.submit_many(tenant, cells)
        except ProtocolError as exc:
            return 400, {"error": "ProtocolError", "message": str(exc)}
        except QueueFullError as exc:
            return 429, {"error": "QueueFullError", "message": str(exc),
                         "capacity": exc.capacity, "depth": exc.depth}
        if wait:
            results = [await self.broker.result(d) for d in digests]
            return 200, {"tenant": tenant, "results": results}
        statuses = [self.broker.peek(d) or {"status": "pending",
                                            "digest": d}
                    for d in digests]
        return 200, {"tenant": tenant,
                     "digests": digests,
                     "statuses": [{"digest": s["digest"],
                                   "status": s["status"]}
                                  for s in statuses]}


class ServiceClient:
    """Small synchronous client (``http.client``) for the CLI, the test
    suite, and the benchmark harness."""

    def __init__(self, host: str, port: int, timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read() or b"null")
        finally:
            conn.close()

    def submit(self, cells: list[dict], *, tenant: str = "default",
               wait: bool = False) -> tuple[int, dict]:
        """POST a submission; returns ``(http_status, response_doc)``."""
        return self._request("POST", "/v1/submit",
                             {"tenant": tenant, "cells": cells,
                              "wait": wait})

    def result(self, digest: str) -> tuple[int, dict]:
        return self._request("GET", f"/v1/result/{digest}")

    def stats(self) -> dict:
        status, doc = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(f"stats endpoint returned {status}: {doc}")
        return doc

    def healthy(self) -> bool:
        try:
            status, doc = self._request("GET", "/v1/healthz")
        except OSError:
            return False
        return status == 200 and doc.get("ok") is True
