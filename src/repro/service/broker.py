"""Request broker: dedup, fair batching, and the simulation pipeline.

The broker is the heart of the service: it turns a stream of per-tenant
cell submissions into the *minimum* number of simulations.

* **Content dedup** — a submission whose digest is already in the store
  is answered from disk; one already in flight attaches to the existing
  future (one simulation, fanned-out answers).  Only genuinely novel
  cells reach the queue.
* **Fair batching** — queued cells drain through the
  :class:`~repro.service.scheduler.FairScheduler` in weighted fair
  order, then run as *one* :func:`~repro.sweep.runner.run_sweep` batch,
  so cells sharing a topology share its construction and route caches
  exactly like a sweep would.
* **Keep-going errors** — each batch runs with ``keep_going=True``; a
  failing cell resolves its waiters with a typed error document and is
  *not* stored (failures may be transient), while the rest of the batch
  completes normally.  Settled error documents are retained in a bounded
  in-memory LRU so a client that polls *after* the batch settles still
  gets its ``{"status": "error", ...}`` answer instead of a 404;
  resubmitting the digest evicts the cached error and re-simulates.

Simulations run in a worker thread (``run_sweep`` is synchronous and may
itself fork a worker pool), so the asyncio front-end keeps accepting and
deduplicating submissions while a batch computes.
"""

from __future__ import annotations

import asyncio
import functools
from collections import OrderedDict
from typing import Iterable

from repro.errors import ConfigError, ReproError
from repro.routing.cache import RouteCacheConfig
from repro.service.scheduler import FairScheduler
from repro.service.store import ResultStore, content_digest
from repro.sweep.plan import SweepCell, SweepPlan
from repro.sweep.runner import run_sweep

__all__ = ["Broker"]

#: Fidelities the engine accepts (mirrors ``repro.engine.simulator``).
_FIDELITIES = ("exact", "approx")

#: Cells drained into one simulation batch.
DEFAULT_BATCH_MAX = 32

#: Settled error documents retained for late pollers (bounded LRU).
ERROR_DOCS_MAX = 256


class Broker:
    """Async front-door over the sweep runner with a content-addressed
    store, in-flight dedup, and weighted per-tenant fair scheduling.

    One broker instance answers for one plan-global configuration
    (``endpoints``, ``fidelity``, ``seed``); the globals are folded into
    every content digest, so two brokers with different configurations
    can share nothing even when pointed at the same store directory.
    """

    def __init__(self, store: ResultStore, *,
                 endpoints: int,
                 fidelity: str = "approx",
                 seed: int = 0,
                 capacity: int = 256,
                 weights: dict[str, int] | None = None,
                 jobs: int = 1,
                 cell_timeout: float | None = None,
                 metrics_path: str | None = None,
                 route_cache_config: RouteCacheConfig | None = None,
                 batch_max: int = DEFAULT_BATCH_MAX) -> None:
        if endpoints < 2:
            raise ConfigError(
                f"the service needs at least 2 endpoints, got {endpoints}")
        if fidelity not in _FIDELITIES:
            raise ConfigError(
                f"fidelity must be one of {_FIDELITIES}, got {fidelity!r}")
        if batch_max < 1:
            raise ConfigError(f"batch_max must be >= 1, got {batch_max}")
        self.store = store
        self.meta = {"endpoints": endpoints, "fidelity": fidelity,
                     "seed": seed}
        self.jobs = jobs
        self.cell_timeout = cell_timeout
        self.metrics_path = metrics_path
        self.route_cache_config = route_cache_config
        self.batch_max = batch_max
        self._scheduler = FairScheduler(capacity, weights=weights)
        #: digest -> future of every queued or in-flight cell
        self._futures: dict[str, asyncio.Future] = {}
        #: digest -> settled ``{"status": "error", ...}`` document, kept
        #: so pollers arriving after the batch settled still get their
        #: answer (errors are never persisted to the store)
        self._errors: OrderedDict[str, dict] = OrderedDict()
        self._wake = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self.counters = {"requests": 0, "store_hits": 0, "deduped": 0,
                         "enqueued": 0, "simulated": 0, "errors": 0,
                         "rejected": 0, "batches": 0}

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.create_task(self._drain_loop())

    async def close(self) -> None:
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        for digest, fut in self._futures.items():
            if not fut.done():
                fut.set_result({"status": "error", "digest": digest,
                                "error": {"error": "ServiceError",
                                          "message": "broker shut down"}})
        self._futures.clear()

    # ----------------------------------------------------------- submission

    def digest_of(self, cell: SweepCell) -> str:
        """The content address this broker files a cell under."""
        return content_digest(cell.fingerprint(), self.meta)

    def submit(self, tenant: str, cell: SweepCell) -> str:
        """Register one cell and return its digest immediately.

        Raises :class:`~repro.errors.QueueFullError` when the cell is
        novel and the bounded queue is saturated; store hits and
        in-flight duplicates never consume queue slots, so repeats stay
        answerable even under full backpressure.

        A digest whose last run ended in a cached error document is
        treated as novel again (failures may be transient): the cached
        error is evicted and the cell re-enqueued.  The store check
        *reads* the record rather than testing existence, so a corrupt
        on-disk record degrades to a re-simulation here instead of a
        ``KeyError`` at result time.
        """
        self.counters["requests"] += 1
        digest = self.digest_of(cell)
        if digest in self._futures:
            self.counters["deduped"] += 1
            return digest
        if self.store.get(digest) is not None:
            self.counters["store_hits"] += 1
            return digest
        try:
            self._scheduler.submit(tenant, (digest, cell))
        except ReproError:
            self.counters["rejected"] += 1
            raise
        self._errors.pop(digest, None)  # retrying a settled failure
        self.counters["enqueued"] += 1
        self._futures[digest] = asyncio.get_running_loop().create_future()
        self._wake.set()
        return digest

    def submit_many(self, tenant: str,
                    cells: Iterable[SweepCell]) -> list[str]:
        """Submit several cells; duplicates within the batch dedup too."""
        return [self.submit(tenant, cell) for cell in cells]

    # -------------------------------------------------------------- results

    def peek(self, digest: str) -> dict | None:
        """Non-blocking status: a done/pending/error response document,
        or ``None`` for a digest this broker has never seen."""
        fut = self._futures.get(digest)
        if fut is not None:
            if fut.done():
                return fut.result()
            return {"status": "pending", "digest": digest}
        error = self._errors.get(digest)
        if error is not None:
            self._errors.move_to_end(digest)
            return dict(error)
        doc = self.store.get(digest)
        if doc is not None:
            return dict(doc, status="done")
        return None

    async def result(self, digest: str) -> dict:
        """Wait for a digest and return its response document.

        ``{"status": "done", ...store record...}`` for a success,
        ``{"status": "error", "digest": ..., "error": {...}}`` for a
        typed per-cell failure, and a :class:`KeyError` for a digest
        never submitted here.
        """
        fut = self._futures.get(digest)
        if fut is not None:
            return await asyncio.shield(fut)
        error = self._errors.get(digest)
        if error is not None:
            self._errors.move_to_end(digest)
            return dict(error)
        doc = self.store.get(digest)
        if doc is None:
            raise KeyError(digest)
        return dict(doc, status="done")

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Counters, queue state, and store statistics in one document."""
        return {
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "queue": {"depth": self._scheduler.depth,
                      "capacity": self._scheduler.capacity,
                      "backlog": self._scheduler.backlog()},
            "inflight": len(self._futures),
            "error_docs": len(self._errors),
            "store": {"records": len(self.store), **self.store.stats},
        }

    # ----------------------------------------------------------- drain loop

    def _take_batch(self) -> list[tuple[str, str, SweepCell]]:
        """Drain up to ``batch_max`` fair-ordered cells with unique keys.

        Two distinct fingerprints can share a checkpoint *key* (keys
        omit the placement policy), and one ``run_sweep`` call indexes
        by key — so a key-colliding cell is pushed back for the next
        batch rather than silently aliasing.  The push-back happens
        synchronously (no await between drain and resubmit), so it can
        never race a concurrent submission past the capacity bound.
        """
        batch: list[tuple[str, str, SweepCell]] = []
        deferred: list[tuple[str, tuple[str, SweepCell]]] = []
        keys: set[str] = set()
        for tenant, (digest, cell) in self._scheduler.drain(self.batch_max):
            if cell.key() in keys:
                deferred.append((tenant, (digest, cell)))
                continue
            keys.add(cell.key())
            batch.append((tenant, digest, cell))
        for tenant, entry in deferred:
            self._scheduler.submit(tenant, entry)
        return batch

    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._scheduler.depth:
                batch = self._take_batch()
                if not batch:
                    break
                plan = SweepPlan(cells=tuple(c for _, _, c in batch),
                                 **self.meta)
                results: dict[str, dict] = {}
                failures: dict[str, dict] = {}
                self.counters["batches"] += 1
                try:
                    await loop.run_in_executor(None, functools.partial(
                        run_sweep, plan,
                        jobs=self.jobs,
                        keep_going=True,
                        cell_timeout=self.cell_timeout,
                        metrics_path=self.metrics_path,
                        metrics_append=True,
                        failures_out=failures,
                        results_out=results,
                        route_cache_config=self.route_cache_config))
                except ReproError as exc:
                    # a batch-level failure (not per-cell): fail every
                    # waiter with the typed error, cache nothing
                    fallback = {"error": type(exc).__name__,
                                "message": str(exc)}
                    for key, doc in failures.items():
                        results.setdefault(key, doc)
                    for _, digest, cell in batch:
                        failures.setdefault(cell.key(), fallback)
                self._settle(batch, results, failures)

    def _settle(self, batch, results: dict[str, dict],
                failures: dict[str, dict]) -> None:
        for _, digest, cell in batch:
            fut = self._futures.pop(digest, None)
            key = cell.key()
            doc = results.get(key)
            if doc is not None and "error" not in doc:
                stored = self.store.put(digest, cell.fingerprint(),
                                        self.meta, doc)
                self.counters["simulated"] += 1
                response = dict(stored, status="done")
                self._errors.pop(digest, None)  # success supersedes
            else:
                error = failures.get(key) or (doc if doc else {
                    "error": "SimulationError",
                    "message": f"cell {key!r} missing from sweep results"})
                self.counters["errors"] += 1
                response = {"status": "error", "digest": digest,
                            "error": error}
                # keep the settled error answerable for late pollers;
                # the future is popped above, so without this a poll
                # arriving after settlement would read as "never seen"
                self._errors[digest] = response
                self._errors.move_to_end(digest)
                while len(self._errors) > ERROR_DOCS_MAX:
                    self._errors.popitem(last=False)
            if fut is not None and not fut.done():
                fut.set_result(response)
