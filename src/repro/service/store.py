"""Content-addressed result store for the simulation service.

Most cells users ask a long-lived service for are repeats: the same
``(workload, topology, faults, routing, placement)`` cell at the same
``(endpoints, fidelity, seed)`` globals simulates to the identical record
every time, so the service persists each result once under its *content
address* — the SHA-256 of the canonical cell fingerprint
(:meth:`repro.sweep.plan.SweepCell.fingerprint`, which folds in the
engine version) plus the plan globals — and answers repeats from disk
without simulating.

Durability mirrors :class:`~repro.routing.cache.ShardedRouteCache`:

* one JSON file per record, fanned into 256 two-hex-digit
  subdirectories so a million-record store never puts a million entries
  in one directory;
* writes go to a process-unique temp file and land via :func:`os.replace`
  — readers (including a concurrent broker sharing the directory) never
  observe a half-written record, and two writers racing on one digest
  both leave a complete record behind;
* a corrupt, truncated, or foreign record degrades to a *miss* plus a
  :class:`ResultStoreWarning` (the file is removed and the cell is
  simply re-simulated) — a damaged store can cost time, never
  correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path

from repro.errors import ServiceError
from repro.sweep.checkpoint import RESULT_FIELDS

__all__ = ["RESULT_SCHEMA_VERSION", "ResultStore", "ResultStoreWarning",
           "content_digest", "validate_store_record"]

#: Schema tag of every persisted result record.
RESULT_SCHEMA_VERSION = "repro-service-result-v1"


class ResultStoreWarning(UserWarning):
    """A stored result record could not be read back.

    The record is dropped and its cell re-simulated — results are
    unaffected.
    """


def content_digest(fingerprint: dict, meta: dict) -> str:
    """The store key: SHA-256 over the canonical JSON of (cell, globals).

    ``fingerprint`` is :meth:`SweepCell.fingerprint` (which already
    carries the engine version); ``meta`` is :meth:`SweepPlan.meta` —
    endpoints, fidelity, seed.  Canonical form (sorted keys, no
    whitespace) makes the digest independent of dict ordering.
    """
    payload = json.dumps({"fingerprint": fingerprint, "meta": meta},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def validate_store_record(doc: dict) -> None:
    """Raise :class:`~repro.errors.ServiceError` unless ``doc`` is a valid
    store record (schema tag, digest, fingerprint, meta, result body)."""
    if not isinstance(doc, dict):
        raise ServiceError(
            f"store record must be a dict, got {type(doc).__name__}")
    if doc.get("schema") != RESULT_SCHEMA_VERSION:
        raise ServiceError(
            f"unknown store-record schema {doc.get('schema')!r}; "
            f"expected {RESULT_SCHEMA_VERSION!r}")
    if not isinstance(doc.get("digest"), str) or len(doc["digest"]) != 64:
        raise ServiceError("store record digest must be a sha256 hex string")
    for field in ("fingerprint", "meta", "record"):
        if not isinstance(doc.get(field), dict):
            raise ServiceError(f"store record {field!r} must be a dict")
    if "engine" not in doc["fingerprint"]:
        raise ServiceError(
            "store record fingerprint carries no engine version")
    if "error" in doc["record"]:
        raise ServiceError(
            "error records are never stored (failures may be transient)")
    missing = RESULT_FIELDS - doc["record"].keys()
    if missing:
        raise ServiceError(
            f"store record result body missing fields: {sorted(missing)}")


class ResultStore:
    """One directory of content-addressed, schema-versioned results.

    Safe for concurrent use by multiple broker processes pointed at the
    same directory: every write is atomic, identical digests hold
    identical payloads (wall-clock fields aside), and readers tolerate —
    and clean up — any torn state a crashed predecessor left behind.
    """

    #: Age (seconds) past which an orphaned ``*.tmp`` is swept at open.
    #: Generous against any live writer: an in-flight put holds its temp
    #: file for milliseconds, not minutes.
    TMP_STALE_S = 300.0

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "corrupt": 0,
                      "swept": 0}
        self.stats["swept"] = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Remove temp files a crashed writer left behind; return count.

        Only files older than :data:`TMP_STALE_S` go — a concurrent
        broker's in-flight write (same fanout directory, younger file)
        is left for its own ``os.replace`` to consume.
        """
        cutoff = time.time() - self.TMP_STALE_S
        swept = 0
        for tmp in self.root.glob("??/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    os.remove(tmp)
                    swept += 1
            except OSError:
                pass  # raced another sweeper or the owning writer
        return swept

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------ read
    def get(self, digest: str) -> dict | None:
        """The stored record for a digest, or ``None`` (counted as a miss).

        An unreadable record warns, is removed, and reads as a miss — the
        broker then re-simulates and re-stores the cell.
        """
        path = self._path(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        try:
            doc = json.loads(text)
            validate_store_record(doc)
            if doc["digest"] != digest:
                raise ServiceError(
                    f"record stored under {digest[:12]} claims digest "
                    f"{doc['digest'][:12]}")
        except (json.JSONDecodeError, ServiceError) as exc:
            warnings.warn(
                f"result record {path.name} is unreadable ({exc}); the "
                f"cell will be re-simulated", ResultStoreWarning,
                stacklevel=2)
            self.stats["corrupt"] += 1
            try:
                os.remove(path)
            except OSError:
                pass
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return doc

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def digests(self) -> list[str]:
        """Every digest currently in the store, sorted."""
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.digests())

    # ----------------------------------------------------------------- write
    def put(self, digest: str, fingerprint: dict, meta: dict,
            record: dict) -> dict:
        """Persist one simulated cell record atomically and return the doc.

        Last-writer-wins on a digest race is harmless: both writers hold
        the same simulation output (modulo wall-clock), and the
        process-unique temp name keeps their in-flight writes apart.
        """
        doc = {
            "schema": RESULT_SCHEMA_VERSION,
            "digest": digest,
            "fingerprint": fingerprint,
            "meta": meta,
            "record": record,
        }
        validate_store_record(doc)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("w") as fh:
            fh.write(json.dumps(doc) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.stats["puts"] += 1
        return doc
