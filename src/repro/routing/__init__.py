"""Pure routing algorithms.

Each module implements one deterministic routing rule as pure functions over
coordinates, independent of any concrete topology object, so the algorithms
can be unit-tested in isolation:

* :mod:`repro.routing.dor` — dimension-order routing on tori/meshes,
* :mod:`repro.routing.updown` — minimal UP*/DOWN* routing on generalised
  k-ary n-trees (with d-mod-k up-port selection),
* :mod:`repro.routing.ecube` — e-cube routing on generalised hypercubes,
* :mod:`repro.routing.policy` — candidate-selection policies
  (deterministic / ecmp / adaptive) applied on top of the per-topology
  candidate sets.

Each rule also exposes a candidate enumeration (``dor.paths``,
``updown.switch_paths``, ``ecube.paths``) returning *every* minimal walk
with the deterministic one first; the topologies assemble these into
:meth:`repro.topology.base.Topology.route_candidates`.
"""

from repro.routing import cache, dor, ecube, policy, updown
from repro.routing.cache import ShardedRouteCache, make_route_cache
from repro.routing.policy import ROUTING_POLICIES, validate_policy

__all__ = ["ROUTING_POLICIES", "ShardedRouteCache", "cache", "dor",
           "ecube", "make_route_cache", "policy", "updown",
           "validate_policy"]
