"""Pure routing algorithms.

Each module implements one deterministic routing rule as pure functions over
coordinates, independent of any concrete topology object, so the algorithms
can be unit-tested in isolation:

* :mod:`repro.routing.dor` — dimension-order routing on tori/meshes,
* :mod:`repro.routing.updown` — minimal UP*/DOWN* routing on generalised
  k-ary n-trees (with d-mod-k up-port selection),
* :mod:`repro.routing.ecube` — e-cube routing on generalised hypercubes.
"""

from repro.routing import dor, ecube, updown

__all__ = ["dor", "ecube", "updown"]
