"""Minimal UP*/DOWN* routing on generalised k-ary n-trees (fattrees).

A generalised fattree with down-arities ``(k_1, ..., k_n)`` (level 1 is the
leaf level) connects ``K = k_1 * ... * k_n`` leaf ports through ``n`` switch
stages; level ``l`` has ``K / k_l`` switches.  Level-``l`` switches have
``k_l`` down ports and, below the top stage, ``k_l`` up ports, so the tree
is non-blocking (no over-subscription, matching the paper's fattrees).

Switch identity
---------------
A level-``l`` switch is identified by ``(l, subtree, digits)`` where

* ``subtree = leaf_group // (k_1 * ... * k_l)`` selects which level-``l``
  subtree the switch belongs to, and
* ``digits = (e_1, ..., e_{l-1})`` with ``e_i in [0, k_i)`` selects the
  switch within the subtree (there are ``k_1 * ... * k_{l-1}`` of them).

Connectivity: level-``l`` switch ``(a, (e_1..e_{l-1}))`` connects *up*
through port ``x in [0, k_l)`` to the level-``l+1`` switch
``(a // k_{l+1}, (e_1..e_{l-1}, x))``.

Routing
-------
Minimal UP*/DOWN*: climb to the lowest common ancestor level ``m`` (the
smallest level at which the two leaves share a subtree), then descend.  The
up-port at level ``l`` is chosen as digit ``l`` of the *destination* leaf
("d-mod-k" selection), which spreads deterministic paths evenly across the
redundant ancestors.  The descent is uniquely determined.  Total switch
path length is ``2m - 1`` switches, i.e. ``2m`` link hops leaf-to-leaf.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import RoutingError


@dataclass(frozen=True)
class Switch:
    """A fattree switch: level (1-based), subtree index, intra-subtree digits."""

    level: int
    subtree: int
    digits: tuple[int, ...]


def leaf_count(arities: Sequence[int]) -> int:
    """Total leaf ports ``K`` of the fattree."""
    n = 1
    for k in arities:
        n *= k
    return n


def switch_count(arities: Sequence[int]) -> int:
    """Total number of switches over all stages: ``sum_l K / k_l``."""
    total_leaves = leaf_count(arities)
    return sum(total_leaves // k for k in arities)


def switches_at_level(arities: Sequence[int], level: int) -> int:
    """Number of switches at 1-based ``level``."""
    _check_level(arities, level)
    return leaf_count(arities) // arities[level - 1]


def leaf_digits(leaf: int, arities: Sequence[int]) -> tuple[int, ...]:
    """Mixed-radix digits of a leaf id, ``digit i`` having radix ``k_{i+1}``."""
    digits = []
    for k in arities:
        digits.append(leaf % k)
        leaf //= k
    if leaf:
        raise RoutingError("leaf id out of range")
    return tuple(digits)


def nca_level(src: int, dst: int, arities: Sequence[int]) -> int:
    """Level of the nearest common ancestor of two distinct leaves.

    This is the smallest ``m`` such that ``src`` and ``dst`` fall in the same
    level-``m`` subtree.  Equal leaves raise: they share a port, not a path.
    """
    total = leaf_count(arities)
    if not 0 <= src < total or not 0 <= dst < total:
        raise RoutingError("leaf id out of range")
    if src == dst:
        raise RoutingError("no common-ancestor level for identical leaves")
    group = 1
    for m, k in enumerate(arities, start=1):
        group *= k
        if src // group == dst // group:
            return m
    raise RoutingError("leaves do not share the top stage")  # pragma: no cover


def switch_path(src: int, dst: int, arities: Sequence[int]) -> list[Switch]:
    """The switch sequence of the minimal UP*/DOWN* path between two leaves.

    Returns ``2m - 1`` switches for an NCA at level ``m``; the caller adds
    the leaf-to-switch access hops.
    """
    m = nca_level(src, dst, arities)
    dst_digits = leaf_digits(dst, arities)

    up: list[Switch] = []
    subtree = src // arities[0]
    digits: tuple[int, ...] = ()
    up.append(Switch(1, subtree, digits))
    for level in range(1, m):
        # climb: choose up-port = destination digit of this level (d-mod-k)
        digits = digits + (dst_digits[level - 1],)
        subtree //= arities[level]
        up.append(Switch(level + 1, subtree, digits))

    down: list[Switch] = []
    # descend: subtree indices follow the destination, digits truncate
    for level in range(m - 1, 0, -1):
        group = 1
        for k in arities[:level]:
            group *= k
        down.append(Switch(level, dst // group, digits[: level - 1]))
    return up + down


def _assemble(src: int, dst: int, arities: Sequence[int], m: int,
              digits_choice: tuple[int, ...]) -> list[Switch]:
    """The UP*/DOWN* switch walk climbing through the given up-digits."""
    up: list[Switch] = []
    subtree = src // arities[0]
    digits: tuple[int, ...] = ()
    up.append(Switch(1, subtree, digits))
    for level in range(1, m):
        digits = digits + (digits_choice[level - 1],)
        subtree //= arities[level]
        up.append(Switch(level + 1, subtree, digits))
    down: list[Switch] = []
    for level in range(m - 1, 0, -1):
        group = 1
        for k in arities[:level]:
            group *= k
        down.append(Switch(level, dst // group, digits[: level - 1]))
    return up + down


def switch_paths(src: int, dst: int, arities: Sequence[int]) -> list[list[Switch]]:
    """Every minimal UP*/DOWN* switch walk between two distinct leaves.

    The climb to the NCA may take any up-port at each level (all ``2m - 1``
    switch walks are minimal); the descent is then uniquely determined.
    The first entry is the deterministic d-mod-k :func:`switch_path`: each
    level's choice tuple leads with the destination digit.
    """
    m = nca_level(src, dst, arities)
    dst_digits = leaf_digits(dst, arities)
    choices = []
    for level in range(1, m):
        det = dst_digits[level - 1]
        choices.append((det, *(x for x in range(arities[level - 1])
                               if x != det)))
    return [_assemble(src, dst, arities, m, combo)
            for combo in itertools.product(*choices)]


def path_lengths(src: int, dst: int, arities: Sequence[int]) -> int:
    """Leaf-to-leaf hop count of the minimal path (``2 * nca_level``)."""
    return 2 * nca_level(src, dst, arities)


def validate_adjacent(a: Switch, b: Switch, arities: Sequence[int]) -> bool:
    """True when two switches are directly linked in the fattree."""
    lo, hi = (a, b) if a.level < b.level else (b, a)
    if hi.level != lo.level + 1:
        return False
    if hi.subtree != lo.subtree // arities[hi.level - 1]:
        return False
    if len(hi.digits) != hi.level - 1 or hi.digits[: hi.level - 2] != lo.digits:
        return False
    # the appended digit is the up-port index of the lower switch
    return 0 <= hi.digits[-1] < arities[lo.level - 1]


def _check_level(arities: Sequence[int], level: int) -> None:
    if not 1 <= level <= len(arities):
        raise RoutingError(f"invalid fattree level {level} for {len(arities)} stages")
