"""Routing-policy layer: how a flow picks among its candidate routes.

The topologies expose *candidate sets* —
:meth:`repro.topology.base.Topology.route_candidates` returns every minimal
route of a pair, deterministic route first.  A policy reduces that set to
the one route a flow actually takes:

* ``"deterministic"`` — always candidate 0, bitwise-identical to the
  single-path routing the repository shipped with (and the paper's
  Section 4.2 rules).
* ``"ecmp"`` — a per-flow deterministic hash spreads flows uniformly over
  the candidates.  Stateless and oblivious: the same flow always takes the
  same route, so results stay reproducible and the allocator's warm path
  still sees interned route arrays.
* ``"adaptive"`` — congestion-aware minimal-adaptive selection: the
  candidate whose most-occupied link (by live flow count, maintained by the
  engine's :class:`~repro.engine.active.ActiveSet`) is least occupied wins.
  Ties — including the all-idle network — fall back to candidate 0, the
  deterministic route, which doubles as the deadlock-safe escape path:
  every selected route is minimal and the deterministic rule is always
  among the options (cf. the escape-channel argument of Duato-style
  adaptive routing).

All selection functions are pure and deterministic given their inputs, so
simulations remain exactly reproducible under every policy.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError

#: Selection policies, in documentation order; ``deterministic`` is the
#: default everywhere and index 0 of every candidate set is its route.
ROUTING_POLICIES = ("deterministic", "ecmp", "adaptive")

_MASK64 = (1 << 64) - 1


def validate_policy(policy: str) -> str:
    """Return ``policy`` or raise a typed error naming the valid set."""
    if policy not in ROUTING_POLICIES:
        raise ConfigError(
            f"unknown routing policy {policy!r}; "
            f"choose from: {', '.join(ROUTING_POLICIES)}")
    return policy


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a cheap, well-distributed 64-bit mix."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def ecmp_index(flow_id: int, src: int, dst: int, num_candidates: int) -> int:
    """Deterministic per-flow candidate index (ECMP-style hash spread).

    Mixes the flow id with the endpoint pair so parallel flows of one pair
    spread over the candidates while any single flow is stable.
    """
    if num_candidates <= 1:
        return 0
    h = _mix64(flow_id * 0x9E3779B97F4A7C15 + (src << 21) + dst + 1)
    return h % num_candidates


def adaptive_index(candidates: Sequence, occupancy) -> int:
    """Least-congested candidate index under the current link occupancy.

    ``occupancy`` is the per-link live-flow-count vector; a candidate's
    congestion score is the occupancy of its worst *network* link.  The
    NIC entries bracketing every route (``route[0]``/``route[-1]``) are
    shared by all candidates of a pair, so they are excluded — otherwise
    parallel flows of one pair would tie on their common injection link
    and never spread.  The first minimum wins, so an idle (or uniformly
    loaded) network always takes candidate 0 — the deterministic escape
    route.
    """
    best = 0
    best_score = None
    for i, route in enumerate(candidates):
        body = route[1:-1] if len(route) > 2 else route
        score = int(occupancy[body].max())
        if best_score is None or score < best_score:
            best, best_score = i, score
    return best
