"""Sharded, disk-spillable route caches for paper-scale sweeps.

A healthy 131,072-endpoint design point routes up to ``O(endpoints²)``
distinct pairs; holding every route of every topology in one flat dict is
what bounds how many design points a sweep process can visit before
exhausting memory.  :class:`ShardedRouteCache` is a drop-in
``MutableMapping`` replacement for that dict which

* partitions entries into per-source-range *shards* (every key shape the
  engines emit — ``(src, dst)``, ``(src, dst, token)`` and
  ``("cands", src, dst, token)``, see
  :func:`repro.engine.simulator._make_route_fn` — carries the source
  endpoint, so a flow's lookups always land in one shard);
* keeps only the most recently touched shards resident (LRU) and spills
  the rest to zlib-compressed pickle files, one file per shard, keyed by
  shard index;
* reloads a spilled shard transparently on the next access, and degrades
  to recomputation (empty shard plus a ``RouteCacheWarning``) when a
  spill file is corrupt or unreadable — a damaged cache can cost time,
  never correctness.

Spill directories are reusable across processes: :meth:`flush` writes
every dirty resident shard, and a fresh :class:`ShardedRouteCache`
pointed at the same directory serves the same entries byte-for-byte.

:func:`make_route_cache` is the factory the sweep runner calls: a plain
dict by default (exact historical behaviour), the sharded cache when
``REPRO_ROUTE_CACHE=sharded`` or when ``auto`` (the default) sees a
design point at or above ``REPRO_ROUTE_CACHE_AUTO`` endpoints.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import warnings
import zlib
from collections import OrderedDict
from collections.abc import MutableMapping
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.errors import ConfigError

__all__ = ["RouteCacheConfig", "RouteCacheWarning", "ShardedRouteCache",
           "make_route_cache"]

#: Default number of shards (source-endpoint ranges) per cache.
DEFAULT_SHARDS = 64
#: Default number of shards kept resident before spilling.
DEFAULT_RESIDENT = 16
#: ``auto`` switches to the sharded cache at this many endpoints.
DEFAULT_AUTO_ENDPOINTS = 65536

_MAGIC = b"repro-route-shard-v1\n"


class RouteCacheWarning(UserWarning):
    """A spilled route-cache shard could not be read back.

    The shard restarts empty — routes are recomputed, results are
    unaffected.
    """


def _shard_of(key: Any, shards: int) -> int:
    """Map a cache key to its shard by source endpoint.

    Knows the three key shapes ``_make_route_fn`` emits; anything else
    falls back to a stable digest of ``repr(key)`` so foreign keys are
    still accepted (and still land on the same shard every run).
    """
    if isinstance(key, tuple) and len(key) >= 2:
        src = key[1] if key[0] == "cands" else key[0]
        if isinstance(src, int):
            return src % shards
    return zlib.crc32(repr(key).encode()) % shards


class ShardedRouteCache(MutableMapping):
    """A route cache split into spillable per-source-range shards.

    Parameters
    ----------
    shards:
        Number of partitions.  More shards mean finer spill granularity
        (smaller files, less memory per resident shard) at the cost of
        more files.
    max_resident:
        Shards kept in memory at once; least-recently-used shards beyond
        this spill to disk.  ``None`` (or ``>= shards``) never spills —
        the cache is then just a sharded dict.
    spill_dir:
        Directory for shard files.  Created if missing; a directory with
        existing shard files warm-starts the cache from them.  ``None``
        creates a fresh temporary directory on first spill.
    """

    def __init__(self, shards: int = DEFAULT_SHARDS,
                 max_resident: int | None = DEFAULT_RESIDENT,
                 spill_dir: str | None = None) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if max_resident is not None and max_resident < 1:
            raise ConfigError(
                f"max_resident must be >= 1 or None, got {max_resident}")
        self.shards = shards
        self.max_resident = max_resident
        self._spill_dir = spill_dir
        #: shard id -> entry dict, most recently used last
        self._resident: OrderedDict[int, dict] = OrderedDict()
        self._dirty: set[int] = set()
        #: shard id -> live entry count (covers spilled shards too)
        self._sizes: dict[int, int] = {}
        self.stats = {"spills": 0, "loads": 0, "corrupt": 0}
        if spill_dir is not None and os.path.isdir(spill_dir):
            # warm start: adopt whatever shards a previous process left
            for name in os.listdir(spill_dir):
                if name.startswith("shard_") and name.endswith(".bin"):
                    try:
                        sid = int(name[len("shard_"):-len(".bin")])
                    except ValueError:
                        continue
                    if 0 <= sid < shards and sid not in self._sizes:
                        self._sizes[sid] = -1  # unknown until loaded

    # -- shard plumbing -------------------------------------------------

    @property
    def spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-route-cache-")
        os.makedirs(self._spill_dir, exist_ok=True)
        return self._spill_dir

    def _path(self, sid: int) -> str:
        return os.path.join(self.spill_dir, f"shard_{sid:05d}.bin")

    def _spill(self, sid: int, entries: dict) -> None:
        blob = _MAGIC + zlib.compress(
            pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))
        path = self._path(sid)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)  # readers never see a half-written shard
        self.stats["spills"] += 1

    def _load(self, sid: int) -> dict:
        path = self._path(sid) if self._spill_dir is not None else None
        if path is None or not os.path.exists(path):
            return {}
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            if not blob.startswith(_MAGIC):
                raise ValueError("bad shard magic")
            entries = pickle.loads(zlib.decompress(blob[len(_MAGIC):]))
            if not isinstance(entries, dict):
                raise ValueError(
                    f"shard payload is {type(entries).__name__}, not dict")
        except Exception as exc:  # corrupt/truncated/foreign file
            warnings.warn(
                f"route-cache shard {os.path.basename(path)} is unreadable "
                f"({exc}); routes in this shard will be recomputed",
                RouteCacheWarning, stacklevel=4)
            self.stats["corrupt"] += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return {}
        self.stats["loads"] += 1
        return entries

    def _shard(self, sid: int) -> dict:
        """Return shard ``sid`` resident, evicting LRU shards as needed."""
        entries = self._resident.get(sid)
        if entries is not None:
            self._resident.move_to_end(sid)
            return entries
        entries = self._load(sid)
        self._resident[sid] = entries
        self._sizes[sid] = len(entries)
        if self.max_resident is not None:
            while len(self._resident) > self.max_resident:
                old_sid, old = self._resident.popitem(last=False)
                if old_sid in self._dirty:
                    self._spill(old_sid, old)
                    self._dirty.discard(old_sid)
        return entries

    # -- MutableMapping -------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._shard(_shard_of(key, self.shards))[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        sid = _shard_of(key, self.shards)
        shard = self._shard(sid)
        if key not in shard:
            self._sizes[sid] = self._sizes.get(sid, 0) + 1
        shard[key] = value
        self._dirty.add(sid)

    def __delitem__(self, key: Any) -> None:
        sid = _shard_of(key, self.shards)
        shard = self._shard(sid)
        del shard[key]
        self._sizes[sid] -= 1
        self._dirty.add(sid)

    def __iter__(self) -> Iterator[Any]:
        for sid in range(self.shards):
            if sid in self._resident or sid in self._sizes:
                # iteration pins nothing: the shard becomes resident via
                # the normal LRU path and may spill again right after
                yield from list(self._shard(sid).keys())

    def __len__(self) -> int:
        total = 0
        for sid in list(self._sizes):
            if self._sizes[sid] < 0:  # adopted spill file, size unknown
                self._shard(sid)
            total += self._sizes[sid]
        return total

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Write every dirty resident shard to the spill directory.

        After a flush the directory is self-contained: a fresh cache
        constructed over it serves the same entries byte-for-byte.
        """
        for sid in sorted(self._dirty):
            entries = self._resident.get(sid)
            if entries is None:  # dirty but already evicted-and-spilled
                continue
            self._spill(sid, entries)
        self._dirty.clear()

    def resident_shards(self) -> int:
        return len(self._resident)


@dataclass(frozen=True)
class RouteCacheConfig:
    """Explicit route-cache policy, picklable across worker processes.

    The programmatic twin of the ``REPRO_ROUTE_CACHE*`` environment knobs:
    the sweep runner and the service broker pass one of these down to each
    worker so a *total* resident-set budget can be split across a pool
    (the env knobs, read independently by every worker, would multiply the
    budget by the worker count instead).  ``None`` fields defer to the
    environment, then to the library defaults, so a partially specified
    config composes with deployment-level tuning.

    ``resident`` is the resident-shard budget (``0`` = unbounded, never
    spill) — for a parallel sweep it is the budget of the *whole pool*;
    :meth:`for_worker` carves out one worker's slice.
    """

    mode: str = "auto"              # auto | dict | sharded
    shards: int | None = None
    resident: int | None = None     # total resident budget; 0 = unbounded
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "dict", "sharded"):
            raise ConfigError(
                f"route-cache mode must be 'auto', 'dict' or 'sharded', "
                f"got {self.mode!r}")
        if self.shards is not None and self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.resident is not None and self.resident < 0:
            raise ConfigError(
                f"resident must be >= 0 (0 = unbounded), "
                f"got {self.resident}")

    @classmethod
    def from_env(cls) -> RouteCacheConfig:
        """The config the ``REPRO_ROUTE_CACHE`` environment variable asks
        for; shard/resident/dir fields stay ``None`` (resolved lazily by
        :func:`make_route_cache` so explicit configs override them)."""
        mode = os.environ.get("REPRO_ROUTE_CACHE", "auto").strip().lower() \
            or "auto"
        if mode not in ("auto", "dict", "sharded"):
            raise ConfigError(
                f"REPRO_ROUTE_CACHE must be 'auto', 'dict' or 'sharded', "
                f"got {mode!r}")
        return cls(mode=mode)

    def for_worker(self, worker_id: int, jobs: int) -> RouteCacheConfig:
        """One pool worker's slice of this (pool-wide) budget.

        The resident budget is divided evenly across ``jobs`` workers
        (floor, minimum 1 shard each — a worker that cannot hold a single
        shard cannot run); an explicit spill directory gains a per-worker
        subdirectory so two workers never clobber each other's shard
        files.  Respawned workers get fresh ids and therefore fresh
        subdirectories, orphaning — never corrupting — a dead worker's
        spills.
        """
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        resident = self.resident
        if jobs > 1 and resident not in (None, 0):
            resident = max(1, resident // jobs)
        spill = self.spill_dir
        if spill is not None:
            spill = os.path.join(spill, f"worker{worker_id}")
        return replace(self, resident=resident, spill_dir=spill)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, str(default)))
    except ValueError as exc:
        raise ConfigError(f"{name} must be an integer: {exc}") from exc


def _namespace_slug(namespace: str) -> str:
    """A filesystem-safe, collision-resistant subdirectory name.

    Human-readable prefix for debugging, CRC suffix so two namespaces
    that sanitise or truncate to the same prefix still get distinct
    directories.
    """
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", namespace).strip("_.")[:40]
    tag = f"{zlib.crc32(namespace.encode()):08x}"
    return f"{slug}-{tag}" if slug else tag


def make_route_cache(endpoints: int | None = None,
                     config: RouteCacheConfig | None = None,
                     namespace: str | None = None) -> MutableMapping:
    """Build the route cache the config — or the environment — asks for.

    With ``config=None`` the ``REPRO_ROUTE_CACHE`` env knobs decide, as
    always; an explicit :class:`RouteCacheConfig` takes precedence field
    by field (its ``None`` fields still fall back to the env knobs, then
    the library defaults).

    * ``dict`` — a plain dict (the historical cache; everything
      resident);
    * ``sharded`` — :class:`ShardedRouteCache` for every design point;
    * ``auto`` (default, also "") — plain dict below
      ``REPRO_ROUTE_CACHE_AUTO`` endpoints (default 65536), sharded at or
      above it; with ``endpoints`` unknown, plain dict.

    ``REPRO_ROUTE_CACHE_SHARDS``, ``REPRO_ROUTE_CACHE_RESIDENT`` and
    ``REPRO_ROUTE_CACHE_DIR`` tune the sharded flavour (resident ``0``
    means unbounded — never spill).

    ``namespace`` partitions the resolved spill directory: callers that
    build *several* caches over one directory (the sweep runner keeps one
    cache per ``(topology, faults)`` partition) must pass each cache's
    partition key here.  Engine lookups use bare ``(src, dst)`` keys and
    rely on instance separation for topology isolation, so without the
    namespace a warm-started cache would happily serve another topology's
    spilled routes — silently wrong paths, not an error.
    """
    if config is None:
        config = RouteCacheConfig.from_env()
    mode = config.mode
    if mode == "auto":
        threshold = _env_int("REPRO_ROUTE_CACHE_AUTO",
                             DEFAULT_AUTO_ENDPOINTS)
        mode = "sharded" if endpoints is not None and endpoints >= threshold \
            else "dict"
    if mode == "dict":
        return {}
    shards = config.shards if config.shards is not None \
        else _env_int("REPRO_ROUTE_CACHE_SHARDS", DEFAULT_SHARDS)
    resident = config.resident if config.resident is not None \
        else _env_int("REPRO_ROUTE_CACHE_RESIDENT", DEFAULT_RESIDENT)
    spill_dir = config.spill_dir \
        or os.environ.get("REPRO_ROUTE_CACHE_DIR") or None
    if spill_dir is not None and namespace is not None:
        spill_dir = os.path.join(spill_dir, _namespace_slug(namespace))
    return ShardedRouteCache(
        shards=shards,
        max_resident=None if resident == 0 else resident,
        spill_dir=spill_dir)
