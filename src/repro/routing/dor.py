"""Dimension-order routing (DOR) for tori and meshes.

DOR corrects one dimension at a time, in ascending dimension order, which is
the deterministic, deadlock-avoidable routing the paper uses inside every
(sub)torus ("Routing within a subtorus is performed using dimensional order
routing", Section 4.2).

All functions are pure: they operate on coordinate tuples and per-dimension
radices and return coordinate sequences.  Mapping coordinates to link ids is
the topology's job.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.errors import RoutingError

Coord = tuple[int, ...]


def wrap_delta(src: int, dst: int, radix: int, *, torus: bool = True) -> int:
    """Return the signed number of hops from ``src`` to ``dst`` along one
    dimension of radix ``radix``.

    For a torus the shorter wrap-aware direction is chosen; exact ties are
    broken towards the positive direction.  For a mesh the delta is simply
    ``dst - src``.
    """
    if not 0 <= src < radix or not 0 <= dst < radix:
        raise RoutingError(f"coordinate out of range: {src}, {dst} for radix {radix}")
    if not torus:
        return dst - src
    forward = (dst - src) % radix
    backward = forward - radix  # negative
    if forward <= -backward:  # ties -> positive direction
        return forward
    return backward


def wrap_deltas(src: int, dst: int, radix: int, *, torus: bool = True) -> tuple[int, ...]:
    """All minimal signed deltas from ``src`` to ``dst`` along one dimension.

    Usually a single delta — the one :func:`wrap_delta` returns.  On a
    torus of even radix an exact tie (``|dst - src| == radix / 2``) has two
    minimal directions; both are returned, the positive one first so index 0
    always matches the deterministic tie-break.
    """
    if not 0 <= src < radix or not 0 <= dst < radix:
        raise RoutingError(f"coordinate out of range: {src}, {dst} for radix {radix}")
    if not torus:
        return (dst - src,)
    forward = (dst - src) % radix
    backward = forward - radix  # negative
    if forward < -backward:
        return (forward,)
    if forward > -backward:
        return (backward,)
    return (forward, backward)  # exact tie: both directions are minimal


def distance(src: Coord, dst: Coord, radices: Sequence[int], *, torus: bool = True) -> int:
    """Wrap-aware Manhattan distance between two coordinates."""
    if len(src) != len(radices) or len(dst) != len(radices):
        raise RoutingError("coordinate arity does not match radices")
    return sum(
        abs(wrap_delta(s, d, k, torus=torus)) for s, d, k in zip(src, dst, radices)
    )


def path(src: Coord, dst: Coord, radices: Sequence[int], *, torus: bool = True) -> list[Coord]:
    """Return the full coordinate sequence of the DOR path ``src -> dst``.

    The returned list starts with ``src`` and ends with ``dst``
    (``[src]`` when the endpoints coincide).  Dimensions are corrected in
    ascending order; within a dimension the wrap-aware shorter direction is
    used (ties positive).
    """
    if len(src) != len(dst) or len(src) != len(radices):
        raise RoutingError("coordinate arity does not match radices")
    cur = list(src)
    out: list[Coord] = [tuple(cur)]
    for dim, radix in enumerate(radices):
        delta = wrap_delta(cur[dim], dst[dim], radix, torus=torus)
        step = 1 if delta > 0 else -1
        for _ in range(abs(delta)):
            cur[dim] = (cur[dim] + step) % radix
            out.append(tuple(cur))
    return out


def _walk(src: Coord, dst: Coord, radices: Sequence[int],
          deltas: Sequence[int]) -> list[Coord]:
    """The DOR coordinate walk applying one signed delta per dimension."""
    cur = list(src)
    out: list[Coord] = [tuple(cur)]
    for dim, (radix, delta) in enumerate(zip(radices, deltas)):
        step = 1 if delta > 0 else -1
        for _ in range(abs(delta)):
            cur[dim] = (cur[dim] + step) % radix
            out.append(tuple(cur))
    if cur != list(dst):  # pragma: no cover - delta construction guarantees
        raise RoutingError(f"deltas {deltas} do not reach {dst} from {src}")
    return out


def paths(src: Coord, dst: Coord, radices: Sequence[int], *, torus: bool = True) -> list[list[Coord]]:
    """Every minimal DOR coordinate walk ``src -> dst``.

    The cross product of each dimension's minimal wrap directions
    (:func:`wrap_deltas`); dimensions without an exact wrap tie contribute a
    single choice, so the common case is one path.  The first entry is
    always the deterministic :func:`path` (positive tie-break everywhere).
    Radix-2 ties wrap to the same neighbour in either direction, so their
    duplicate walks are removed.
    """
    if len(src) != len(dst) or len(src) != len(radices):
        raise RoutingError("coordinate arity does not match radices")
    per_dim = [wrap_deltas(s, d, k, torus=torus)
               for s, d, k in zip(src, dst, radices)]
    out: list[list[Coord]] = []
    seen: set[tuple[Coord, ...]] = set()
    for combo in itertools.product(*per_dim):
        walk = _walk(src, dst, radices, combo)
        key = tuple(walk)
        if key not in seen:
            seen.add(key)
            out.append(walk)
    return out


def coord_to_index(coord: Coord, radices: Sequence[int]) -> int:
    """Linearise a coordinate: dimension 0 is the fastest-varying digit."""
    idx = 0
    for c, k in zip(reversed(coord), reversed(list(radices))):
        if not 0 <= c < k:
            raise RoutingError(f"coordinate {coord} out of range for radices {radices}")
        idx = idx * k + c
    return idx


def index_to_coord(index: int, radices: Sequence[int]) -> Coord:
    """Inverse of :func:`coord_to_index`."""
    if index < 0:
        raise RoutingError(f"negative index {index}")
    coord = []
    for k in radices:
        coord.append(index % k)
        index //= k
    if index:
        raise RoutingError("index out of range for radices")
    return tuple(coord)


def neighbors(coord: Coord, radices: Sequence[int], *, torus: bool = True) -> list[Coord]:
    """Distinct neighbouring coordinates of ``coord`` (wrap-aware).

    A radix-2 torus dimension contributes a single neighbour (the +1 and -1
    wraps coincide); a radix-1 dimension contributes none.
    """
    out: list[Coord] = []
    seen = set()
    for dim, k in enumerate(radices):
        if k <= 1:
            continue
        for step in (1, -1):
            n = list(coord)
            if torus:
                n[dim] = (n[dim] + step) % k
            else:
                n[dim] = n[dim] + step
                if not 0 <= n[dim] < k:
                    continue
            t = tuple(n)
            if t not in seen and t != coord:
                seen.add(t)
                out.append(t)
    return out
