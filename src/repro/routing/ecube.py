"""E-cube routing for generalised hypercubes.

A generalised hypercube (GHC) with radices ``(k_1, ..., k_d)`` places one
vertex at every mixed-radix coordinate and connects two vertices whenever
their coordinates differ in exactly one position (Bhuyan & Agrawal, 1984).
A single hop can therefore correct a whole coordinate, unlike a torus.

E-cube routing corrects coordinates in ascending dimension order, which is
minimal (path length equals the mixed-radix Hamming distance) and
deadlock-free with dimension-ordered virtual channels.  This is the routing
the paper uses in the GHC upper tier ("routing in a generalized hypercube
uses e-cube routing which traverses the generalized hypercube dimensions in
order", Section 4.2).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.errors import RoutingError

Coord = tuple[int, ...]


def hamming(src: Coord, dst: Coord, radices: Sequence[int]) -> int:
    """Number of coordinates in which ``src`` and ``dst`` differ."""
    _check(src, dst, radices)
    return sum(1 for s, d in zip(src, dst) if s != d)


def path(src: Coord, dst: Coord, radices: Sequence[int]) -> list[Coord]:
    """Coordinate sequence of the e-cube path ``src -> dst``.

    Starts with ``src``, ends with ``dst``; each hop replaces exactly one
    coordinate with the destination's value, in ascending dimension order.
    """
    _check(src, dst, radices)
    cur = list(src)
    out: list[Coord] = [tuple(cur)]
    for dim in range(len(radices)):
        if cur[dim] != dst[dim]:
            cur[dim] = dst[dim]
            out.append(tuple(cur))
    return out


def paths(src: Coord, dst: Coord, radices: Sequence[int]) -> list[list[Coord]]:
    """Every minimal GHC coordinate walk ``src -> dst``.

    One hop corrects a whole coordinate, so any order of the differing
    dimensions is minimal; all orders are enumerated.  The first entry is
    the deterministic ascending-order :func:`path` (``itertools.permutations``
    emits the sorted order first).
    """
    _check(src, dst, radices)
    diff = [dim for dim in range(len(radices)) if src[dim] != dst[dim]]
    out: list[list[Coord]] = []
    for order in itertools.permutations(diff):
        cur = list(src)
        walk: list[Coord] = [tuple(cur)]
        for dim in order:
            cur[dim] = dst[dim]
            walk.append(tuple(cur))
        out.append(walk)
    return out


def neighbors(coord: Coord, radices: Sequence[int]) -> list[Coord]:
    """All GHC neighbours of ``coord``: every other value in every dimension."""
    if len(coord) != len(radices):
        raise RoutingError("coordinate arity does not match radices")
    out: list[Coord] = []
    for dim, k in enumerate(radices):
        for v in range(k):
            if v != coord[dim]:
                n = list(coord)
                n[dim] = v
                out.append(tuple(n))
    return out


def degree(radices: Sequence[int]) -> int:
    """Vertex degree of the GHC: ``sum(k_i - 1)``."""
    return sum(k - 1 for k in radices)


def average_distance(radices: Sequence[int]) -> float:
    """Exact average e-cube distance over ordered distinct vertex pairs.

    Each dimension independently contributes one hop with probability
    ``(k_i - 1) / k_i`` for a uniformly random pair; conditioning on the pair
    being distinct rescales by ``N / (N - 1)``.
    """
    n = 1
    for k in radices:
        n *= k
    if n <= 1:
        return 0.0
    expected = sum((k - 1) / k for k in radices)
    return expected * n / (n - 1)


def _check(src: Coord, dst: Coord, radices: Sequence[int]) -> None:
    if len(src) != len(radices) or len(dst) != len(radices):
        raise RoutingError("coordinate arity does not match radices")
    for c in (src, dst):
        for v, k in zip(c, radices):
            if not 0 <= v < k:
                raise RoutingError(f"coordinate {c} out of range for radices {radices}")
