"""Physical units used throughout the library.

All internal quantities use a single, consistent unit system:

* data sizes are expressed in **bits**,
* link capacities in **bits per second**,
* times in **seconds**.

The constants below make workload and topology definitions read naturally
(``8 * MiB``, ``10 * GBPS``) while keeping the engine unit-agnostic: the
simulator only ever divides sizes by capacities.
"""

from __future__ import annotations

#: One kilobit / megabit / gigabit (decimal, as used for link rates).
KBIT = 1_000.0
MBIT = 1_000_000.0
GBIT = 1_000_000_000.0

#: One byte, in bits.
BYTE = 8.0

#: Binary byte multiples (as used for message/data sizes), in bits.
KiB = 1024.0 * BYTE
MiB = 1024.0 * KiB
GiB = 1024.0 * MiB

#: Link rates in bits per second.
GBPS = GBIT

#: The paper assumes every transceiver runs at 10 Gbps (Section 4.2).
DEFAULT_LINK_CAPACITY = 10.0 * GBPS


def bits_to_mib(bits: float) -> float:
    """Convert a size in bits to binary mebibytes."""
    return bits / MiB


def mib(n: float) -> float:
    """Return ``n`` mebibytes expressed in bits."""
    return n * MiB


def kib(n: float) -> float:
    """Return ``n`` kibibytes expressed in bits."""
    return n * KiB
