"""Compiled fill kernels behind a pure-NumPy fallback.

The progressive-filling water-level loop and the warm-fill replay are the
engine's two allocation hot spots.  This package isolates them behind a
tiny backend interface so they can be swapped for compiled (numba)
versions without touching :class:`~repro.engine.active.ActiveSet`:

* :mod:`repro.engine.kernels.numpy_fill` — the reference implementation.
  Pure NumPy, always available, and the semantics every other backend is
  differential-tested against (``pytest -m kernel_diff``).
* :mod:`repro.engine.kernels.numba_fill` — ``@njit`` mirrors of the same
  loops, available only when the optional ``[fast]`` extra
  (``pip install repro[fast]``) is installed.  Every float operation is
  ordered exactly as in the NumPy backend, so the two produce
  **bitwise-identical** rates, water levels and iteration counts.

Backend selection
-----------------
:func:`get` resolves a backend by name; ``None`` means the session
default, which is:

1. :func:`use`'s forced backend, when inside that context manager
   (tests use this to pin a backend without threading arguments through
   the engine);
2. the ``REPRO_KERNELS`` environment variable (``numpy`` / ``numba`` /
   ``auto``) otherwise;
3. ``auto`` — numba when importable, numpy fallback — when unset.

Requesting ``numba`` explicitly when the extra is missing raises a typed
:class:`~repro.errors.SimulationError` naming the install hint; ``auto``
silently falls back, so ``pip install repro`` stays dependency-light and
every kernel always has a pure-NumPy fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import SimulationError

_BACKENDS = ("numpy", "numba")

#: Forced backend installed by :func:`use` (tests); ``None`` = not forced.
_forced: str | None = None


def _numba_module():
    """The numba backend module, or ``None`` when the extra is missing."""
    try:
        from repro.engine.kernels import numba_fill
    except ImportError:
        return None
    return numba_fill if numba_fill.AVAILABLE else None


def available() -> tuple[str, ...]:
    """Names of the backends importable in this environment."""
    return _BACKENDS if _numba_module() is not None else ("numpy",)


def default_name() -> str:
    """The backend name ``get(None)`` resolves to right now."""
    if _forced is not None:
        return _forced
    env = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if env in ("", "auto"):
        return "numba" if _numba_module() is not None else "numpy"
    if env not in _BACKENDS:
        raise SimulationError(
            f"REPRO_KERNELS={env!r} is not a kernel backend; expected "
            f"'auto', 'numpy' or 'numba'")
    return env


def get(name: str | None = None):
    """Resolve a kernel backend module by name (``None`` = default).

    The returned module exposes ``full_fill``, ``warm_fill`` and
    ``relevel_fill`` (see :mod:`repro.engine.kernels.numpy_fill` for the
    contract) plus a ``NAME`` attribute.
    """
    if name is None:
        name = default_name()
    if name == "numpy":
        from repro.engine.kernels import numpy_fill
        return numpy_fill
    if name == "numba":
        mod = _numba_module()
        if mod is None:
            raise SimulationError(
                "kernel backend 'numba' requested but numba is not "
                "installed; pip install 'repro[fast]' or use "
                "REPRO_KERNELS=numpy")
        return mod
    raise SimulationError(
        f"unknown kernel backend {name!r}; expected one of {_BACKENDS}")


@contextmanager
def use(name: str):
    """Force every default-constructed ActiveSet onto one backend.

    The differential-test harness runs the same simulation under
    ``use("numpy")`` and ``use("numba")`` and asserts bitwise-identical
    results; see ``tests/difftest.py``.
    """
    global _forced
    get(name)  # validate (and fail fast on a missing extra)
    prev = _forced
    _forced = name
    try:
        yield
    finally:
        _forced = prev
