"""Pure-NumPy fill kernels — the reference backend.

These two functions are the allocation hot spots of
:class:`~repro.engine.active.ActiveSet`, extracted behind a narrow array
contract so a compiled backend (:mod:`repro.engine.kernels.numba_fill`)
can replace them kernel-for-kernel.  The bodies are the PR 5 loops moved
verbatim; every other backend is differential-tested against this one for
bitwise-identical rates, water levels, iteration counts and saturated-link
sequences (``pytest -m kernel_diff``).

Contract
--------
``full_fill`` runs the progressive-filling water-level loop over the
caller-prepared link→flows CSR.  The caller has already:

* rebuilt or patched the CSR (``csr_start``/``csr_len``/``csr_flows``,
  where a ``-1`` flow id marks a tombstoned entry),
* loaded per-link occupancy into ``counts`` and reset
  ``cap_rem[act] = capacities[act]`` for the active links ``act``
  (``counts > 0``, ascending),
* reset ``levels`` to ``+inf`` on the previously saturated links,
* zeroed the first ``m`` entries of the ``frozen`` scratch (the caller
  also re-zeroes them afterwards, error or not).

The kernel mutates ``cap_rem``, ``counts``, ``levels``, ``rates`` and
``frozen`` in place, appends each saturated link id to
``level_links_out`` (caller-sized to at least ``act.shape[0]``), records
the per-iteration water-level increments and cumulative levels into
``delta_seq_out``/``level_seq_out`` (caller-sized to at least
``act.shape[0] + 1``; the raw increments are recorded separately because
differencing the cumulative levels would not reproduce them bitwise),
and returns ``(status, iterations, nsat)`` where status ``0`` is
success, ``1`` means flows were left without a bottleneck and ``2``
means the loop failed to converge — raising stays with the caller so
compiled backends never need exception objects.

``warm_fill`` replays recorded water levels over the flows added since
the last allocation (``pending`` flow ids; ids whose slot is ``-1`` were
retired again before this allocation and are skipped).  It writes each
flow's rate — the minimum recorded level along its pooled route — and
returns ``False`` (caller falls back to a full pass) if any level is
non-finite or non-positive.

``relevel_fill`` resumes a recorded fill above a churn threshold — the
near-identical warm path for unweighted flow sets whose membership
changed by removals only (every admission since the last allocation was
matched by a removal with the identical route).  The caller has chosen
a threshold ``tmin`` (the lowest recorded level on any link of a
net-removed route), proved every fill iteration below it is unaffected
by the churn, and prepared:

* ``act`` — the ascending link ids that carry at least one *participant*
  (a flow whose rate — final for survivors, the recorded-level minimum
  for matched admissions — is ``>= tmin``),
* ``counts[act]`` — the per-link participant occupancy,
* ``rates`` — final rates for all non-participants (they froze below
  ``tmin`` and are left untouched),
* ``delta_seq``/``level_seq`` — the recorded sequences, of which the
  first ``k`` iterations lie strictly below ``tmin``,
* ``levels[...]`` — reset to ``+inf`` on every link the suffix may
  re-saturate, and ``frozen`` zeroed for the participant slots.

The kernel first *replays* the ``k`` prefix iterations over the ``act``
links — each link's residual capacity is reduced through the recorded
increments with occupancies reconstructed from its CSR row's flow rates
(a flow contributes to iteration ``i`` while its rate is
``>= level_seq[i]``), reproducing the exact float chain of a full pass
— then resumes the water-level loop from ``level0 = level_seq[k - 1]``
with ``remaining`` unfrozen participants.  Status ``3`` reports a
replayed link at or below its saturation floor (the caller's
eligibility proof was violated; fall back to a full pass).  Outputs
mirror ``full_fill``: the *suffix* iterations land in
``delta_seq_out``/``level_seq_out`` and the re-saturated links in
``level_links_out``, so the caller can splice the sequences and keep
resuming event after event.
"""

from __future__ import annotations

import numpy as np

from repro.engine.maxmin import _COUNT_TOL, _slices_concat

NAME = "numpy"


def full_fill(capacities: np.ndarray, sat_floor: np.ndarray,
              cap_rem: np.ndarray, counts: np.ndarray, levels: np.ndarray,
              csr_start: np.ndarray, csr_len: np.ndarray,
              csr_flows: np.ndarray,
              entries: np.ndarray, starts: np.ndarray, lens: np.ndarray,
              slot_arr: np.ndarray,
              rates: np.ndarray, frozen: np.ndarray, weights: np.ndarray,
              weighted: bool, m: int, act: np.ndarray,
              level_links_out: np.ndarray, delta_seq_out: np.ndarray,
              level_seq_out: np.ndarray) -> tuple[int, int, int]:
    """Progressive filling over a prepared CSR (see module docstring)."""
    level = 0.0
    remaining = m
    iterations = 0
    nsat = 0
    for _ in range(act.shape[0] + 1):
        if remaining == 0:
            return 0, iterations, nsat
        if act.shape[0] == 0:
            return 1, iterations, nsat
        iterations += 1
        cr = cap_rem[act]
        cn = counts[act]
        delta = float((cr / cn).min())
        level += delta
        delta_seq_out[iterations - 1] = delta
        level_seq_out[iterations - 1] = level
        cr = cr - delta * cn
        cap_rem[act] = cr
        sf = sat_floor[act]
        sat_local = cr <= sf
        if not sat_local.any():
            # numerically the minimum itself must have saturated
            sat_local = cr <= cr.min() + sf
        sat_links = act[sat_local]
        levels[sat_links] = level
        level_links_out[nsat:nsat + sat_links.shape[0]] = sat_links
        nsat += sat_links.shape[0]

        # freeze every unfrozen flow crossing a saturated link: the CSR
        # rows of the saturated links name exactly the candidates (as
        # flow ids; -1 marks a tombstoned entry), so no scan over the
        # live entries is needed
        if sat_links.shape[0] == 1:
            link = sat_links[0]
            cand = csr_flows[csr_start[link]:csr_start[link]
                             + csr_len[link]]
        else:
            cand = csr_flows[_slices_concat(
                csr_start[sat_links],
                csr_start[sat_links] + csr_len[sat_links])]
        cand = np.unique(cand)
        if cand.shape[0] and cand[0] < 0:
            cand = cand[1:]
        cslots = slot_arr[cand]
        new = cslots[~frozen[cslots]]
        if new.shape[0]:
            frozen[new] = True
            if not weighted:
                rates[new] = level
            else:
                rates[new] = weights[new] * level
            remaining -= new.shape[0]
            # drop the frozen flows' presence from link occupancy
            if new.shape[0] == 1:
                s = starts[new[0]]
                touched = entries[s:s + lens[new[0]]]
            else:
                touched = entries[_slices_concat(
                    starts[new], starts[new] + lens[new])]
            if not weighted:
                np.subtract.at(counts, touched, 1.0)
            else:
                np.subtract.at(counts, touched,
                               np.repeat(weights[new], lens[new]))
        keep = ~sat_local
        keep &= counts[act] > _COUNT_TOL
        act = act[keep]
    if remaining == 0:  # pragma: no cover - loop always breaks earlier
        return 0, iterations, nsat
    return 2, iterations, nsat  # pragma: no cover - filling terminates


def warm_fill(levels: np.ndarray, entries: np.ndarray, starts: np.ndarray,
              lens: np.ndarray, slot_arr: np.ndarray, pending: np.ndarray,
              rates: np.ndarray) -> bool:
    """Rate the pending flows from recorded per-link water levels.

    Vectorised over all pending flows at once (one gather plus a
    segmented minimum); a segment minimum is an exact operation, so the
    written rates are bitwise those of a per-flow ``levels[route].min()``
    loop.
    """
    slots = slot_arr[pending]
    slots = slots[slots >= 0]  # added and already retired (zero-length life)
    if slots.shape[0] == 0:
        return True
    seg_starts = starts[slots]
    seg_lens = lens[slots]
    vals = levels[entries[_slices_concat(seg_starts,
                                         seg_starts + seg_lens)]]
    offsets = np.zeros(slots.shape[0], dtype=np.int64)
    np.cumsum(seg_lens[:-1], out=offsets[1:])
    mins = np.minimum.reduceat(vals, offsets)
    if not np.isfinite(mins).all() or bool((mins <= 0.0).any()):
        return False
    rates[slots] = mins
    return True


def relevel_fill(capacities: np.ndarray, sat_floor: np.ndarray,
                 cap_rem: np.ndarray, counts: np.ndarray,
                 levels: np.ndarray,
                 csr_start: np.ndarray, csr_len: np.ndarray,
                 csr_flows: np.ndarray,
                 entries: np.ndarray, starts: np.ndarray, lens: np.ndarray,
                 slot_arr: np.ndarray,
                 rates: np.ndarray, frozen: np.ndarray,
                 act: np.ndarray, delta_seq: np.ndarray,
                 level_seq: np.ndarray, k: int, level0: float, tmin: float,
                 remaining: int, level_links_out: np.ndarray,
                 delta_seq_out: np.ndarray,
                 level_seq_out: np.ndarray) -> tuple[int, int, int]:
    """Resume a recorded fill above ``tmin`` (see module docstring)."""
    n_act = act.shape[0]
    if n_act:
        # replay the k prefix iterations over the participant-carrying
        # links: reconstruct each link's per-iteration occupancy from the
        # rates of the flows in its CSR row (a flow contributes while its
        # rate is >= the iteration's cumulative level) and push the
        # residual capacity through the recorded increments in iteration
        # order — the same float chain a full pass would produce, because
        # occupancies are integer-valued and the increments are the
        # recorded ones, not level differences
        row_len = csr_len[act]
        rows = csr_flows[_slices_concat(csr_start[act],
                                        csr_start[act] + row_len)]
        seg = np.repeat(np.arange(n_act, dtype=np.int64), row_len)
        valid = rows >= 0
        rvals = rates[slot_arr[rows[valid]]]
        segv = seg[valid]
        # difference-array build of the (link, iteration) occupancy: a
        # rate r spans iterations [0, searchsorted_right(level_seq, r))
        width = k + 1
        hi = np.searchsorted(level_seq[:k], rvals, side="right")
        occ = np.zeros(n_act * width, dtype=np.float64)
        np.add.at(occ, segv * width, 1.0)
        np.subtract.at(occ, segv * width + hi, 1.0)
        cn_mat = np.cumsum(occ.reshape(n_act, width), axis=1)
        cr = capacities[act]
        for i in range(k):
            cr = cr - delta_seq[i] * cn_mat[:, i]
        if bool((cr <= sat_floor[act]).any()):
            # a replayed link saturated inside the prefix: the caller's
            # invariance proof does not hold, take the full pass
            return 3, 0, 0
        cap_rem[act] = cr

    # resume the water-level loop on the suffix; identical arithmetic to
    # full_fill's unweighted loop, starting from the prefix's level with
    # only the participants unfrozen
    level = level0
    iterations = 0
    nsat = 0
    for _ in range(n_act + 1):
        if remaining == 0:
            return 0, iterations, nsat
        if act.shape[0] == 0:
            return 1, iterations, nsat
        iterations += 1
        cr = cap_rem[act]
        cn = counts[act]
        delta = float((cr / cn).min())
        level += delta
        delta_seq_out[iterations - 1] = delta
        level_seq_out[iterations - 1] = level
        cr = cr - delta * cn
        cap_rem[act] = cr
        sf = sat_floor[act]
        sat_local = cr <= sf
        if not sat_local.any():
            # numerically the minimum itself must have saturated
            sat_local = cr <= cr.min() + sf
        sat_links = act[sat_local]
        levels[sat_links] = level
        level_links_out[nsat:nsat + sat_links.shape[0]] = sat_links
        nsat += sat_links.shape[0]

        if sat_links.shape[0] == 1:
            link = sat_links[0]
            cand = csr_flows[csr_start[link]:csr_start[link]
                             + csr_len[link]]
        else:
            cand = csr_flows[_slices_concat(
                csr_start[sat_links],
                csr_start[sat_links] + csr_len[sat_links])]
        cand = np.unique(cand)
        if cand.shape[0] and cand[0] < 0:
            cand = cand[1:]
        cslots = slot_arr[cand]
        # flows rated below the threshold froze inside the (replayed)
        # prefix and keep those rates; the rest are this fill's
        # participants, frozen in the same ascending-id order as a full
        # pass would freeze them
        cslots = cslots[rates[cslots] >= tmin]
        new = cslots[~frozen[cslots]]
        if new.shape[0]:
            frozen[new] = True
            rates[new] = level
            remaining -= new.shape[0]
            if new.shape[0] == 1:
                s = starts[new[0]]
                touched = entries[s:s + lens[new[0]]]
            else:
                touched = entries[_slices_concat(
                    starts[new], starts[new] + lens[new])]
            np.subtract.at(counts, touched, 1.0)
        keep = ~sat_local
        keep &= counts[act] > _COUNT_TOL
        act = act[keep]
    if remaining == 0:  # pragma: no cover - loop always breaks earlier
        return 0, iterations, nsat
    return 2, iterations, nsat  # pragma: no cover - filling terminates
