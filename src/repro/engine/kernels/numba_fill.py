"""Numba-compiled fill kernels (the optional ``[fast]`` extra).

Importable only when ``numba`` is installed (``pip install repro[fast]``);
:data:`AVAILABLE` is ``False`` otherwise and the dispatcher falls back to
:mod:`repro.engine.kernels.numpy_fill`.  The kernels follow the numpy
backend's contract exactly — see that module's docstring — and mirror its
floating-point operation *order* op for op:

* the water-level ``delta`` is a plain minimum over ``cap_rem/counts``
  (minimum is exact, so reduction order is irrelevant);
* residual capacity updates round twice (``delta * counts`` then the
  subtraction), like the two NumPy ufunc calls they replace;
* candidate flows freeze in ascending-flow-id order (the numpy backend's
  ``np.unique``) and their occupancy decrements apply in that same order
  (its ``np.subtract.at``), so weighted float accumulation in ``counts``
  is bitwise-reproducible too.

The differential-test suite (``pytest -m kernel_diff``) asserts bitwise
identity against the numpy backend whenever this module is available.
"""

from __future__ import annotations

import numpy as np

from repro.engine.maxmin import _COUNT_TOL

NAME = "numba"

try:
    from numba import njit
    AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only without [fast]
    AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        raise ImportError("numba is not installed")


if AVAILABLE:
    @njit(cache=True)
    def _full_fill(capacities, sat_floor, cap_rem, counts, levels,
                   csr_start, csr_len, csr_flows,
                   entries, starts, lens, slot_arr,
                   rates, frozen, weights, weighted, m, act,
                   level_links_out, delta_seq_out,
                   level_seq_out):  # pragma: no cover - needs [fast]
        inf = np.inf
        n_act = act.shape[0]
        act_w = act.copy()
        sat_flags = np.empty(n_act, dtype=np.bool_)
        level = 0.0
        remaining = m
        iterations = 0
        nsat = 0
        for _ in range(n_act + 1):
            if remaining == 0:
                return 0, iterations, nsat
            if n_act == 0:
                return 1, iterations, nsat
            iterations += 1
            delta = inf
            for i in range(n_act):
                v = cap_rem[act_w[i]] / counts[act_w[i]]
                if v < delta:
                    delta = v
            level += delta
            delta_seq_out[iterations - 1] = delta
            level_seq_out[iterations - 1] = level
            for i in range(n_act):
                link = act_w[i]
                cap_rem[link] = cap_rem[link] - delta * counts[link]
            any_sat = False
            for i in range(n_act):
                link = act_w[i]
                if cap_rem[link] <= sat_floor[link]:
                    any_sat = True
                    break
            floor_add = 0.0
            if not any_sat:
                # numerically the minimum itself must have saturated
                crmin = inf
                for i in range(n_act):
                    if cap_rem[act_w[i]] < crmin:
                        crmin = cap_rem[act_w[i]]
                floor_add = crmin
            cand_total = 0
            for i in range(n_act):
                link = act_w[i]
                sat = cap_rem[link] <= floor_add + sat_floor[link] \
                    if not any_sat else cap_rem[link] <= sat_floor[link]
                sat_flags[i] = sat
                if sat:
                    levels[link] = level
                    level_links_out[nsat] = link
                    nsat += 1
                    cand_total += csr_len[link]

            # gather the saturated links' CSR rows, sort, and freeze each
            # distinct flow id in ascending order (== np.unique order)
            cand = np.empty(cand_total, dtype=np.int64)
            pos = 0
            for i in range(n_act):
                if not sat_flags[i]:
                    continue
                link = act_w[i]
                row_start = csr_start[link]
                for j in range(csr_len[link]):
                    cand[pos] = csr_flows[row_start + j]
                    pos += 1
            cand.sort()
            prev = np.int64(-1)
            first = True
            for i in range(cand_total):
                fid = cand[i]
                if fid < 0 or (not first and fid == prev):
                    continue
                prev = fid
                first = False
                slot = slot_arr[fid]
                if frozen[slot]:
                    continue
                frozen[slot] = True
                if not weighted:
                    rates[slot] = level
                else:
                    rates[slot] = weights[slot] * level
                remaining -= 1
                s = starts[slot]
                if not weighted:
                    for j in range(lens[slot]):
                        counts[entries[s + j]] -= 1.0
                else:
                    w = weights[slot]
                    for j in range(lens[slot]):
                        counts[entries[s + j]] -= w

            keep_n = 0
            for i in range(n_act):
                link = act_w[i]
                if (not sat_flags[i]) and counts[link] > _COUNT_TOL:
                    act_w[keep_n] = link
                    keep_n += 1
            n_act = keep_n
        if remaining == 0:
            return 0, iterations, nsat
        return 2, iterations, nsat

    @njit(cache=True)
    def _warm_fill(levels, entries, starts, lens, slot_arr, pending,
                   rates):  # pragma: no cover - needs [fast]
        inf = np.inf
        for k in range(pending.shape[0]):
            slot = slot_arr[pending[k]]
            if slot < 0:
                continue  # added and already retired (zero-length life)
            s = starts[slot]
            r = inf
            for j in range(lens[slot]):
                v = levels[entries[s + j]]
                if v < r:
                    r = v
            # rejects +inf (never-saturated link), NaN and non-positive
            # levels, matching the numpy backend's isfinite/<=0 gate
            if not (0.0 < r < inf):
                return False
            rates[slot] = r
        return True

    @njit(cache=True)
    def _relevel_fill(capacities, sat_floor, cap_rem, counts, levels,
                      csr_start, csr_len, csr_flows,
                      entries, starts, lens, slot_arr,
                      rates, frozen, act, delta_seq, level_seq, k,
                      level0, tmin, remaining, level_links_out,
                      delta_seq_out,
                      level_seq_out):  # pragma: no cover - needs [fast]
        inf = np.inf
        n_act = act.shape[0]
        # replay the k prefix iterations per participant-carrying link:
        # sorted row rates + a two-pointer over the (strictly increasing)
        # recorded levels give each iteration's occupancy, and the
        # residual capacity rounds twice per iteration exactly like the
        # numpy backend's vectorised chain
        for i in range(n_act):
            link = act[i]
            rs = csr_start[link]
            rl = csr_len[link]
            row = np.empty(rl, dtype=np.float64)
            nrow = 0
            for j in range(rl):
                fid = csr_flows[rs + j]
                if fid < 0:
                    continue
                row[nrow] = rates[slot_arr[fid]]
                nrow += 1
            rowv = row[:nrow]
            rowv.sort()
            cr = capacities[link]
            ptr = 0
            for it in range(k):
                while ptr < nrow and rowv[ptr] < level_seq[it]:
                    ptr += 1
                cr = cr - delta_seq[it] * np.float64(nrow - ptr)
            if cr <= sat_floor[link]:
                return 3, 0, 0
            cap_rem[link] = cr

        act_w = act.copy()
        sat_flags = np.empty(n_act, dtype=np.bool_)
        level = level0
        iterations = 0
        nsat = 0
        for _ in range(n_act + 1):
            if remaining == 0:
                return 0, iterations, nsat
            if n_act == 0:
                return 1, iterations, nsat
            iterations += 1
            delta = inf
            for i in range(n_act):
                v = cap_rem[act_w[i]] / counts[act_w[i]]
                if v < delta:
                    delta = v
            level += delta
            delta_seq_out[iterations - 1] = delta
            level_seq_out[iterations - 1] = level
            for i in range(n_act):
                link = act_w[i]
                cap_rem[link] = cap_rem[link] - delta * counts[link]
            any_sat = False
            for i in range(n_act):
                link = act_w[i]
                if cap_rem[link] <= sat_floor[link]:
                    any_sat = True
                    break
            floor_add = 0.0
            if not any_sat:
                # numerically the minimum itself must have saturated
                crmin = inf
                for i in range(n_act):
                    if cap_rem[act_w[i]] < crmin:
                        crmin = cap_rem[act_w[i]]
                floor_add = crmin
            cand_total = 0
            for i in range(n_act):
                link = act_w[i]
                sat = cap_rem[link] <= floor_add + sat_floor[link] \
                    if not any_sat else cap_rem[link] <= sat_floor[link]
                sat_flags[i] = sat
                if sat:
                    levels[link] = level
                    level_links_out[nsat] = link
                    nsat += 1
                    cand_total += csr_len[link]

            cand = np.empty(cand_total, dtype=np.int64)
            pos = 0
            for i in range(n_act):
                if not sat_flags[i]:
                    continue
                link = act_w[i]
                row_start = csr_start[link]
                for j in range(csr_len[link]):
                    cand[pos] = csr_flows[row_start + j]
                    pos += 1
            cand.sort()
            prev = np.int64(-1)
            first = True
            for i in range(cand_total):
                fid = cand[i]
                if fid < 0 or (not first and fid == prev):
                    continue
                prev = fid
                first = False
                slot = slot_arr[fid]
                if frozen[slot]:
                    continue
                if rates[slot] < tmin:
                    # froze inside the replayed prefix; rate is final
                    continue
                frozen[slot] = True
                rates[slot] = level
                remaining -= 1
                s = starts[slot]
                for j in range(lens[slot]):
                    counts[entries[s + j]] -= 1.0

            keep_n = 0
            for i in range(n_act):
                link = act_w[i]
                if (not sat_flags[i]) and counts[link] > _COUNT_TOL:
                    act_w[keep_n] = link
                    keep_n += 1
            n_act = keep_n
        if remaining == 0:
            return 0, iterations, nsat
        return 2, iterations, nsat

    def full_fill(capacities, sat_floor, cap_rem, counts, levels,
                  csr_start, csr_len, csr_flows,
                  entries, starts, lens, slot_arr,
                  rates, frozen, weights, weighted, m, act,
                  level_links_out, delta_seq_out,
                  level_seq_out):  # pragma: no cover - needs [fast]
        return _full_fill(capacities, sat_floor, cap_rem, counts, levels,
                          csr_start, csr_len, csr_flows,
                          entries, starts, lens, slot_arr,
                          rates, frozen, weights, bool(weighted),
                          np.int64(m), act, level_links_out,
                          delta_seq_out, level_seq_out)

    def warm_fill(levels, entries, starts, lens, slot_arr, pending,
                  rates):  # pragma: no cover - needs [fast]
        return _warm_fill(levels, entries, starts, lens, slot_arr,
                          pending, rates)

    def relevel_fill(capacities, sat_floor, cap_rem, counts, levels,
                     csr_start, csr_len, csr_flows,
                     entries, starts, lens, slot_arr,
                     rates, frozen, act, delta_seq, level_seq, k,
                     level0, tmin, remaining, level_links_out,
                     delta_seq_out,
                     level_seq_out):  # pragma: no cover - needs [fast]
        return _relevel_fill(capacities, sat_floor, cap_rem, counts,
                             levels, csr_start, csr_len, csr_flows,
                             entries, starts, lens, slot_arr,
                             rates, frozen, act, delta_seq, level_seq,
                             np.int64(k), np.float64(level0),
                             np.float64(tmin), np.int64(remaining),
                             level_links_out, delta_seq_out,
                             level_seq_out)
