"""Event-driven flow-level simulation.

The simulator advances a set of *active* flows under max-min fair bandwidth
sharing, completing the earliest-finishing batch, releasing dependent flows,
and re-allocating rates.  Two fidelities are offered:

* ``"exact"`` — rates are re-allocated after every completion batch.  This
  is the reference semantics (matching INRFlow's dynamic mode) and the one
  the test-suite invariants are written against.
* ``"approx"`` — bounded-churn reallocation: full max-min allocations are
  only recomputed once the active set has churned (completions plus
  releases) by :data:`CHURN_FRACTION` since the last allocation.  In
  between, a finished flow's bandwidth is simply retired and a newly
  released flow *inherits the rate of the flow whose completion released
  it* (its predecessor on the same dependency chain, which usually has a
  nearly identical route).  Links can be transiently over- or
  under-subscribed by at most the churn bound, so makespans track the
  exact mode closely (validated in the test suite) at a fraction of the
  allocations — the figure sweeps use this mode.

Completion ties within a relative window are batched, which keeps the event
count low for the highly symmetric collectives the paper uses.

Bandwidth allocations run through a persistent
:class:`~repro.engine.active.ActiveSet` that maintains the flow→link
incidence across events (O(changed routes) membership updates, pooled CSR
buffers, warm-started progressive filling); ``allocator="rebuild"`` selects
the historical rebuild-from-scratch path — the reference baseline the
engine benchmark compares against.  Both produce identical rates (the
incremental allocator is exact, see ``docs/simulation-model.md``).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.active import ActiveSet
from repro.engine.flows import FlowSet
from repro.engine.maxmin import _slices_concat, allocate
from repro.engine.results import SimulationResult
from repro.errors import SimulationError
from repro.routing import policy as routing_policy
from repro.routing.policy import validate_policy
from repro.topology.base import Topology
from repro.topology.degraded import FaultSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsCollector
    from repro.topology.timeline import FaultTimeline

#: Relative tie window for batching completions.
_TIE_EPS = 1e-9

#: Active-set churn fraction that forces a re-allocation in approx mode.
CHURN_FRACTION = 0.05


def _batching_enabled() -> bool:
    """Whether completion batches process through the vectorised path.

    ``REPRO_EVENT_BATCH=0`` forces the historical per-flow completion
    walk (release one flow at a time, per-flow ActiveSet calls) in both
    the healthy and the transient engines.  The batched path is bitwise-
    equivalent — the equivalence regression suite
    (``tests/test_batched_loop.py``) runs every workload under both
    settings and asserts identical results — so the knob exists for that
    suite and for bisecting, not for tuning.
    """
    return os.environ.get("REPRO_EVENT_BATCH", "1").strip().lower() \
        not in ("0", "off", "false")

_FIDELITIES = ("exact", "approx")

_ALLOCATORS = ("incremental", "rebuild")

#: Shared route for flows whose tasks are placed on the same endpoint.
_EMPTY_ROUTE = np.empty(0, dtype=np.int64)


def _make_route_fn(topology: Topology, src_ep: np.ndarray, dst_ep: np.ndarray,
                   route_cache: dict, collector, routing: str,
                   occupancy=None):
    """Build the per-flow ``route_of(fid)`` closure both engines share.

    Historically each engine carried its own copy of the cache-fill logic
    with bare ``(src, dst)`` keys, which silently poisoned caches shared
    across :class:`~repro.topology.degraded.DegradedTopology` wrappers (two
    different fault sets hash to the same key) and across routing policies.
    The single helper keys the cache by route identity instead:

    * deterministic routes on a *healthy* topology keep the bare
      ``(src, dst)`` key — bitwise-compatible with caches shared with the
      static analyzer and pre-existing checkpoints;
    * a degraded wrapper appends its fault set's
      :meth:`~repro.topology.degraded.FaultSet.cache_token`;
    * the multi-path policies cache the whole interned candidate list
      under ``("cands", src, dst, token)`` and select per flow.

    ``occupancy`` (adaptive only) is a zero-argument callable returning
    the current per-link live-flow-count vector.
    """
    faults = getattr(topology, "faults", None)
    token = faults.cache_token() if isinstance(faults, FaultSet) else None

    def _timed(fn, s: int, d: int):
        if collector is None:
            return fn(s, d)
        t0 = time.perf_counter()
        out = fn(s, d)
        collector.add_time("route_construction", time.perf_counter() - t0)
        return out

    if routing == "deterministic":
        def route_of(fid: int) -> np.ndarray:
            s, d = int(src_ep[fid]), int(dst_ep[fid])
            if s == d:
                return _EMPTY_ROUTE  # co-located tasks: intra-endpoint
            key = (s, d) if token is None else (s, d, token)
            cached = route_cache.get(key)
            if cached is None:
                cached = np.asarray(_timed(topology.route, s, d),
                                    dtype=np.int64)
                route_cache[key] = cached
            return cached
        return route_of

    def candidates_of(s: int, d: int) -> list[np.ndarray]:
        key = ("cands", s, d, token)
        cands = route_cache.get(key)
        if cands is None:
            cands = [np.asarray(r, dtype=np.int64)
                     for r in _timed(topology.route_candidates, s, d)]
            route_cache[key] = cands
        return cands

    if routing == "ecmp":
        def route_of(fid: int) -> np.ndarray:
            s, d = int(src_ep[fid]), int(dst_ep[fid])
            if s == d:
                return _EMPTY_ROUTE
            cands = candidates_of(s, d)
            return cands[routing_policy.ecmp_index(fid, s, d, len(cands))]
        return route_of

    assert routing == "adaptive" and occupancy is not None

    def route_of(fid: int) -> np.ndarray:
        s, d = int(src_ep[fid]), int(dst_ep[fid])
        if s == d:
            return _EMPTY_ROUTE
        cands = candidates_of(s, d)
        if len(cands) == 1:
            return cands[0]
        return cands[routing_policy.adaptive_index(cands, occupancy())]
    return route_of


def simulate(topology: Topology, flows: FlowSet, *,
             placement: np.ndarray | None = None,
             fidelity: str = "exact",
             max_events: int = 50_000_000,
             route_cache: dict | None = None,
             metrics: MetricsCollector | None = None,
             allocator: str = "incremental",
             routing: str = "deterministic",
             fault_timeline: FaultTimeline | None = None
             ) -> SimulationResult:
    """Run a workload on a topology and return completion statistics.

    Parameters
    ----------
    topology:
        Routed network; supplies routes and link capacities.
    flows:
        The workload's flow DAG (task-id space).
    placement:
        Optional task -> endpoint map.  Defaults to identity, which
        requires ``flows.num_tasks <= topology.num_endpoints``.  Two tasks
        may share an endpoint (oversubscribed placement); flows between
        co-located tasks are *zero-hop* — they never enter the network and
        complete the instant they are released.
    fidelity:
        ``"exact"`` or ``"approx"`` (see module docstring).
    max_events:
        Safety valve against runaway event loops.
    route_cache:
        Optional route dict shared between calls; one cache per topology
        amortises route computation when many workloads replay on the
        same machine (the sweep runner does this).  Keys are policy- and
        fault-aware (see :func:`_make_route_fn`), so a single cache can
        safely serve several policies and degraded views of one machine.
    metrics:
        Optional :class:`repro.obs.MetricsCollector` (sized to this
        topology's link table).  When supplied, the engine feeds it
        per-link delivered bits and busy time, allocator statistics, and
        span timers, and attaches its snapshot as ``result.metrics``.
        The default (``None``) adds no work to the event loop.
    allocator:
        ``"incremental"`` (default) keeps the flow→link incidence alive
        across events and warm-starts allocations; ``"rebuild"`` runs the
        historical engine — per-event Python active-list maintenance, CSR
        reconstruction and a from-scratch reference allocation — kept
        verbatim for verification and as the engine benchmark's baseline.
        Both are exact — rates and makespans agree.
    routing:
        Candidate-selection policy: ``"deterministic"`` (default; routes
        and results bitwise-identical to the single-path engine),
        ``"ecmp"`` (per-flow deterministic hash over the minimal
        candidates) or ``"adaptive"`` (per-flow least-congested candidate
        by live link occupancy, deterministic route as escape).  See
        :mod:`repro.routing.policy` and ``docs/routing.md``.
    fault_timeline:
        Optional :class:`~repro.topology.timeline.FaultTimeline`.  A
        non-empty timeline dispatches to the transient engine
        (:mod:`repro.engine.transient`): the network degrades and heals
        mid-run, in-flight flows are recovered across fault events, and
        ``result.transient`` carries the recovery counters.  Requires the
        incremental allocator and the *healthy* base topology (static
        faults belong in the timeline as events at ``t <= 0``).  ``None``
        or an empty timeline leaves this code path untouched — results
        are bitwise-identical to a call without the argument.
    """
    if fidelity not in _FIDELITIES:
        raise SimulationError(f"fidelity must be one of {_FIDELITIES}")
    if allocator not in _ALLOCATORS:
        raise SimulationError(f"allocator must be one of {_ALLOCATORS}")
    routing = validate_policy(routing)
    placement = _check_placement(topology, flows, placement)
    collector = metrics
    if collector is not None:
        collector.set_routing(routing)

    n = flows.num_flows
    if n == 0:
        snap = collector.snapshot(topology, 0.0) if collector is not None \
            else None
        return SimulationResult(makespan=0.0, completion_times=np.empty(0),
                                start_times=np.empty(0),
                                fidelity=fidelity, num_flows=0,
                                reallocations=0, events=0, total_bits=0.0,
                                metrics=snap)

    if fault_timeline is not None and not fault_timeline.empty:
        if allocator != "incremental":
            raise SimulationError(
                "fault timelines require allocator='incremental' (the "
                "rebuild baseline predates in-flight recovery)")
        from repro.engine.transient import simulate_transient
        return simulate_transient(topology, flows, placement, fidelity,
                                  max_events, route_cache, collector,
                                  routing, fault_timeline)

    if allocator == "rebuild":
        return _simulate_rebuild(topology, flows, placement, fidelity,
                                 max_events, route_cache, collector, routing)

    capacities = topology.links.capacities
    remaining = flows.size.copy()
    indegree = flows.indegree.copy()
    completion = np.full(n, np.nan)
    start = np.full(n, np.nan)
    weighted = flows.is_weighted
    weight_arr = flows.weight

    adaptive = routing == "adaptive"
    # per-flow completion walk: required for adaptive (each release must
    # see the occupancy its predecessors left), forced by the equivalence
    # suite via REPRO_EVENT_BATCH=0 otherwise
    per_flow = adaptive or not _batching_enabled()
    active = ActiveSet(capacities, weighted=weighted,
                       track_occupancy=adaptive)

    if route_cache is None:
        route_cache = {}
    src_ep = placement[flows.src]
    dst_ep = placement[flows.dst]
    route_of = _make_route_fn(
        topology, src_ep, dst_ep, route_cache, collector, routing,
        (lambda: active.occupancy) if adaptive else None)

    completed_count = 0

    def inject(fid: int, t: float, rate: float) -> int:
        """Mark a flow ready at ``t``; zero-hop flows complete instantly.

        A flow whose route is empty (its tasks share an endpoint) never
        reaches the allocator — an empty route has no bottleneck link, so
        max-min allocation is undefined for it.  It completes at its
        release time, which can cascade through chains of co-located
        dependents; the cascade is iterative to keep deep chains safe.
        Returns the number of flows that entered the network.
        """
        nonlocal completed_count
        admitted = 0
        stack = [(fid, rate)]
        while stack:
            f, r = stack.pop()
            start[f] = t
            route = route_of(f)
            if collector is not None:
                collector.flow_injected(float(flows.size[f]), route.shape[0])
            if route.shape[0]:
                active.add(f, route, rate=r,
                           weight=float(weight_arr[f]) if weighted else 1.0)
                admitted += 1
                continue
            completion[f] = t
            remaining[f] = 0.0
            completed_count += 1
            for succ in flows.successors(f).tolist():
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    stack.append((succ, r))
        return admitted

    succ_indptr = flows.succ_indptr
    succ_indices = flows.succ_indices

    def admit_batch(ready: np.ndarray, t: float) -> int:
        """Admit a batch of ready flows at ``t`` in one vectorised pass.

        All admitted flows start at ``t`` with a zero seeded rate (every
        caller reallocates before any rate is read).  Zero-hop flows fall
        back to the per-flow cascade.  Returns the number of flows that
        entered the network.
        """
        admitted = 0
        if adaptive:
            # per-flow admission: each selection must see the occupancy
            # left by the flows admitted just before it, which the
            # vectorised path below (route everything, then add_many)
            # would hide — an entire batch would pile onto one candidate
            for f in ready.tolist():
                admitted += inject(f, t, 0.0)
            return admitted
        zero_hop = src_ep[ready] == dst_ep[ready]
        routed = ready[~zero_hop]
        if routed.shape[0]:
            start[routed] = t
            route_list = [route_of(f) for f in routed.tolist()]
            active.add_many(routed, route_list,
                            weights=weight_arr[routed] if weighted else None)
            if collector is not None:
                for f, r in zip(routed.tolist(), route_list):
                    collector.flow_injected(float(flows.size[f]),
                                            r.shape[0])
            admitted += routed.shape[0]
        for f in ready[zero_hop].tolist():
            admitted += inject(f, t, 0.0)
        return admitted

    def release_batch(done_ids: np.ndarray, t: float) -> int:
        """Release every successor of a completed batch (vectorised).

        Equivalent to the per-flow successor walk (all released flows
        start at ``t`` and exact mode reallocates before any rate is
        read), but the indegree updates and admissions are batched.
        Returns the number of flows admitted to the network.
        """
        succs = succ_indices[_slices_concat(succ_indptr[done_ids],
                                            succ_indptr[done_ids + 1])]
        if succs.shape[0] == 0:
            return 0
        uniq, cnt = np.unique(succs, return_counts=True)
        indegree[uniq] -= cnt
        ready = uniq[indegree[uniq] == 0]
        if ready.shape[0] == 0:
            return 0
        return admit_batch(ready, t)

    def release_inherit(done_ids: np.ndarray, done_rates: np.ndarray,
                        t: float) -> int:
        """Retire an approx-mode completion batch and release successors.

        Approx mode seeds each released flow with the rate of the
        predecessor whose decrement drove its indegree to zero — in the
        per-flow walk, the *last* occurrence of that successor across the
        batch's concatenated successor lists.  This vectorised path
        reproduces that pairing (stable sort, last occurrence per unique
        successor) and admits the released flows in the same trigger
        order, so the inherited rates are bitwise those of the walk.
        Zero-hop successors complete instantly and cascade decrements
        that interleave with the batch's own, so their presence falls
        back to the sequential walk.  Returns the number of flows
        admitted to the network.
        """
        completion[done_ids] = t
        active.remove_many(done_ids)
        succs = succ_indices[_slices_concat(succ_indptr[done_ids],
                                            succ_indptr[done_ids + 1])]
        if succs.shape[0] == 0:
            return 0
        rep_rates = np.repeat(done_rates,
                              succ_indptr[done_ids + 1]
                              - succ_indptr[done_ids])
        if bool((src_ep[succs] == dst_ep[succs]).any()):
            released = 0
            for f, r in zip(succs.tolist(), rep_rates.tolist()):
                indegree[f] -= 1
                if indegree[f] == 0:
                    released += inject(f, t, r)
            return released
        uniq, cnt = np.unique(succs, return_counts=True)
        indegree[uniq] -= cnt
        ready_mask = indegree[uniq] == 0
        if not ready_mask.any():
            return 0
        order = np.argsort(succs, kind="stable")
        last_pos = order[np.cumsum(cnt) - 1]   # per unique: last occurrence
        trig = last_pos[ready_mask]
        seq = np.argsort(trig, kind="stable")  # back to trigger order
        ready = uniq[ready_mask][seq]
        inherit = rep_rates[trig[seq]]
        start[ready] = t
        route_list = [route_of(f) for f in ready.tolist()]
        active.add_many(ready, route_list, rates=inherit,
                        weights=weight_arr[ready] if weighted else None)
        if collector is not None:
            for f, r in zip(ready.tolist(), route_list):
                collector.flow_injected(float(flows.size[f]), r.shape[0])
        return ready.shape[0]

    roots = flows.roots()
    if roots.shape[0] == 0:
        raise SimulationError("no injectable flows: dependency graph has no roots")
    admit_batch(roots, 0.0)

    now = 0.0
    events = 0
    reallocations = 0
    churn = active.size   # everything new -> allocate on first iteration
    alloc_size = 0
    loop_t0 = time.perf_counter() if collector is not None else 0.0

    while completed_count < n:
        if active.size == 0:
            raise SimulationError(
                f"simulation stalled with {n - completed_count} flows blocked "
                "(cyclic or unsatisfiable dependencies)")
        if fidelity == "exact" or churn >= max(1.0, CHURN_FRACTION * alloc_size):
            stats: dict | None = {} if collector is not None else None
            t0 = time.perf_counter() if collector is not None else 0.0
            active.allocate(stats=stats)
            if collector is not None:
                assert stats is not None
                if stats.get("warm"):
                    reason = "warm"
                elif fidelity == "exact":
                    reason = "forced"
                else:
                    reason = "initial" if reallocations == 0 else "churn"
                collector.record_allocation(active.size, stats["iterations"],
                                            reason,
                                            time.perf_counter() - t0)
            reallocations += 1
            churn = 0
            alloc_size = active.size

        ids = active.flow_ids
        rates = active.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            # a zero or NaN rate yields a non-finite deadline, reported as
            # a typed error below — never as a numpy RuntimeWarning
            deadlines = remaining[ids] / rates
        dt = float(deadlines.min())
        if not np.isfinite(dt):
            # a rate the allocator froze at a numerically-zero level (or a
            # 0/0 with an already-drained flow) has no defined deadline
            bad = ids[~np.isfinite(deadlines)]
            raise SimulationError(
                f"flow(s) {bad.tolist()[:8]} have a non-finite completion "
                f"deadline: the allocator froze them at zero rate "
                f"(fidelity={fidelity!r}, event {events})")
        # absolute+relative tie window: a pure relative one collapses to a
        # no-op when dt == 0 (simultaneous zero-size flows would then churn
        # one event each instead of batching)
        done_mask = deadlines <= dt + max(dt, 1.0) * _TIE_EPS
        if collector is not None:
            collector.account_event(active.route_list(), rates, dt)
        now += dt
        remaining[ids] -= rates * dt

        done_ids = ids[done_mask]        # materialised: removal moves slots
        done_rates = rates[done_mask]
        remaining[done_ids] = 0.0
        released = 0
        if fidelity == "exact":
            completion[done_ids] = now
            if per_flow and not adaptive:
                # the historical per-event walk (REPRO_EVENT_BATCH=0):
                # retire and release flow by flow.  Rates are identical
                # to the batched path — exact mode reallocates from the
                # membership alone before any rate is read — which the
                # equivalence suite asserts bitwise.  Adaptive routing
                # keeps the batched-release admission order either way:
                # its route choices feed on occupancy, and release_batch
                # already admits adaptively per flow.
                for fid in done_ids.tolist():
                    active.remove(fid)
                    for succ in flows.successors(fid).tolist():
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            released += inject(succ, now, 0.0)
            else:
                # rates are reallocated before any released flow's rate
                # is read, so the completion batch processes vectorised
                active.remove_many(done_ids)
                released = release_batch(done_ids, now)
        elif per_flow:
            for fid, rate in zip(done_ids.tolist(), done_rates.tolist()):
                completion[fid] = now
                active.remove(fid)
                for succ in flows.successors(fid).tolist():
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        # rate is inherited by the release (approx mode)
                        released += inject(succ, now, rate)
        else:
            released = release_inherit(done_ids, done_rates, now)
        completed_count += int(done_mask.sum())
        events += 1
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        churn += done_ids.shape[0] + released

    snap = None
    if collector is not None:
        collector.add_time("event_loop", time.perf_counter() - loop_t0)
        snap = collector.snapshot(topology, now)
    return SimulationResult(
        makespan=now,
        completion_times=completion,
        start_times=start,
        fidelity=fidelity,
        num_flows=n,
        reallocations=reallocations,
        events=events,
        total_bits=flows.total_bits,
        metrics=snap,
        allocator_stats={"allocator": allocator,
                         "full_passes": active.full_passes,
                         "warm_fills": active.warm_fills,
                         "relevel_fills": active.relevel_fills},
    )


def _simulate_rebuild(topology: Topology, flows: FlowSet,
                      placement: np.ndarray, fidelity: str,
                      max_events: int,
                      route_cache: dict | None,
                      collector: MetricsCollector | None,
                      routing: str = "deterministic"
                      ) -> SimulationResult:
    """The historical rebuild-per-event engine, kept verbatim.

    Every event re-materialises the active list (Python list filtering),
    re-concatenates all active routes into a fresh CSR, and hands it to
    the reference :func:`repro.engine.maxmin.allocate` to recompute
    progressive filling from zero state.  This is the baseline the
    incremental engine is benchmarked and verified against — both
    produce identical rates, makespans and event counts.
    """
    n = flows.num_flows
    capacities = topology.links.capacities
    remaining = flows.size.copy()
    indegree = flows.indegree.copy()
    completion = np.full(n, np.nan)
    start = np.full(n, np.nan)
    weighted = flows.is_weighted
    routes: list[np.ndarray | None] = [None] * n

    if route_cache is None:
        route_cache = {}
    src_ep = placement[flows.src]
    dst_ep = placement[flows.dst]
    # local occupancy mirror for adaptive selection (this engine has no
    # persistent ActiveSet to maintain one)
    occ = np.zeros(capacities.shape[0], dtype=np.int64) \
        if routing == "adaptive" else None
    route_of = _make_route_fn(
        topology, src_ep, dst_ep, route_cache, collector, routing,
        (lambda: occ) if occ is not None else None)

    completed_count = 0

    def inject(fid: int, t: float, rate: float,
               out_ids: list[int], out_rates: list[float]) -> None:
        nonlocal completed_count
        stack = [(fid, rate)]
        while stack:
            f, r = stack.pop()
            start[f] = t
            route = route_of(f)
            if collector is not None:
                collector.flow_injected(float(flows.size[f]), route.shape[0])
            if route.shape[0]:
                routes[f] = route
                if occ is not None:
                    occ[route] += 1
                out_ids.append(f)
                out_rates.append(r)
                continue
            completion[f] = t
            remaining[f] = 0.0
            completed_count += 1
            for succ in flows.successors(f).tolist():
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    stack.append((succ, r))

    roots = flows.roots().tolist()
    if not roots:
        raise SimulationError("no injectable flows: dependency graph has no roots")
    active: list[int] = []
    for fid in roots:
        inject(fid, 0.0, 0.0, active, [])
    rates = np.zeros(len(active), dtype=np.float64)  # aligned with `active`

    now = 0.0
    events = 0
    reallocations = 0
    churn = len(active)   # everything new -> allocate on first iteration
    alloc_size = 0
    loop_t0 = time.perf_counter() if collector is not None else 0.0

    while completed_count < n:
        if not active:
            raise SimulationError(
                f"simulation stalled with {n - completed_count} flows blocked "
                "(cyclic or unsatisfiable dependencies)")
        if fidelity == "exact" or churn >= max(1.0, CHURN_FRACTION * alloc_size):
            route_list = [routes[f] for f in active]
            entries = np.concatenate(route_list)
            ptr = np.zeros(len(active) + 1, dtype=np.int64)
            np.cumsum([r.shape[0] for r in route_list], out=ptr[1:])
            weights = flows.weight[np.asarray(active)] if weighted else None
            if collector is None:
                rates = allocate(entries, ptr, capacities, weights)
            else:
                stats: dict = {}
                t0 = time.perf_counter()
                rates = allocate(entries, ptr, capacities, weights,
                                 stats=stats)
                reason = "forced" if fidelity == "exact" else \
                    ("initial" if reallocations == 0 else "churn")
                collector.record_allocation(len(active), stats["iterations"],
                                            reason,
                                            time.perf_counter() - t0)
            reallocations += 1
            churn = 0
            alloc_size = len(active)

        ids = np.asarray(active, dtype=np.int64)
        with np.errstate(divide="ignore", invalid="ignore"):
            # a zero or NaN rate yields a non-finite deadline, reported as
            # a typed error below — never as a numpy RuntimeWarning
            deadlines = remaining[ids] / rates
        dt = float(deadlines.min())
        if not np.isfinite(dt):
            bad = ids[~np.isfinite(deadlines)]
            raise SimulationError(
                f"flow(s) {bad.tolist()[:8]} have a non-finite completion "
                f"deadline: the allocator froze them at zero rate "
                f"(fidelity={fidelity!r}, event {events})")
        done_mask = deadlines <= dt + max(dt, 1.0) * _TIE_EPS
        if collector is not None:
            collector.account_event([routes[f] for f in active], rates, dt)
        now += dt
        remaining[ids] -= rates * dt
        remaining[ids[done_mask]] = 0.0

        done_ids = ids[done_mask]
        done_rates = rates[done_mask]
        released: list[int] = []
        released_rates: list[float] = []
        for fid, rate in zip(done_ids.tolist(), done_rates.tolist()):
            completion[fid] = now
            if occ is not None:
                occ[routes[fid]] -= 1
            routes[fid] = None  # release the route reference
            for succ in flows.successors(fid).tolist():
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    # rate is inherited by the release (approx mode)
                    inject(succ, now, rate, released, released_rates)
        completed_count += int(done_mask.sum())
        events += 1
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")

        keep = ~done_mask
        active = [f for f, k in zip(active, keep.tolist()) if k] + released
        rates = np.concatenate([rates[keep], np.asarray(released_rates)]) \
            if released else rates[keep]
        churn += len(done_ids) + len(released)

    snap = None
    if collector is not None:
        collector.add_time("event_loop", time.perf_counter() - loop_t0)
        snap = collector.snapshot(topology, now)
    return SimulationResult(
        makespan=now,
        completion_times=completion,
        start_times=start,
        fidelity=fidelity,
        num_flows=n,
        reallocations=reallocations,
        events=events,
        total_bits=flows.total_bits,
        metrics=snap,
        allocator_stats={"allocator": "rebuild",
                         "full_passes": reallocations,
                         "warm_fills": 0,
                         "relevel_fills": 0},
    )


def _check_placement(topology: Topology, flows: FlowSet,
                     placement: np.ndarray | None) -> np.ndarray:
    if placement is None:
        if flows.num_tasks > topology.num_endpoints:
            raise SimulationError(
                f"workload has {flows.num_tasks} tasks but topology only "
                f"{topology.num_endpoints} endpoints; supply a placement")
        return np.arange(flows.num_tasks, dtype=np.int64)
    placement = np.asarray(placement, dtype=np.int64)
    if placement.shape != (flows.num_tasks,):
        raise SimulationError(f"placement must map all {flows.num_tasks} tasks")
    if placement.size == 0:
        # a zero-task workload's placement is vacuously valid; numpy's
        # min()/max() on a zero-size array would raise an opaque ValueError
        return placement
    if placement.min() < 0 or placement.max() >= topology.num_endpoints:
        raise SimulationError("placement maps tasks outside the topology")
    return placement
