"""Vectorised max-min fair bandwidth allocation (progressive filling).

Given the set of currently active flows and the links each traverses, the
classic progressive-filling algorithm raises a global "water level" — every
unfrozen flow's rate — until some link saturates; flows crossing a saturated
link freeze at the current level, and the process repeats on the residual
network.  The result is the unique max-min fair allocation with equal flow
weights, which is the bandwidth-sharing model of flow-level simulators such
as INRFlow.

Implementation notes (this routine dominates simulation time, so it is
written for numpy throughput):

* link ids are compacted to the links actually used by the batch;
* a link -> entries CSR is built once so each saturated link's flows are
  gathered exactly once over the whole run (O(nnz) total, not per
  iteration);
* per-iteration work is just a masked minimum over the active links.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

#: Relative capacity slack below which a link counts as saturated.
_SAT_TOL = 1e-12

#: Weight-sum residue below which a link counts as empty (float subtraction
#: of weights can leave ~1e-16 residues where integer counts left exact 0).
_COUNT_TOL = 1e-9


def allocate(link_entries: np.ndarray, flow_ptr: np.ndarray,
             capacities: np.ndarray,
             weights: np.ndarray | None = None, *,
             stats: dict | None = None) -> np.ndarray:
    """(Weighted) max-min fair rates for a batch of flows.

    Parameters
    ----------
    link_entries:
        Concatenated link ids of every flow's route (flow ``i`` owns
        ``link_entries[flow_ptr[i]:flow_ptr[i+1]]``).  A flow may not list
        the same link twice (routes are loop-free walks).
    flow_ptr:
        Route offsets, ``len == num_flows + 1``.
    capacities:
        Global per-link capacity vector (bits/s), indexed by link id.
    weights:
        Optional strictly-positive per-flow weights.  An unfrozen flow's
        rate is ``weight * level``: a weight-2 flow receives twice the
        bandwidth of a weight-1 competitor on a shared bottleneck.  This is
        the "low-level bandwidth scheduling to give priority to critical
        flows" the paper lists as future work.  ``None`` means equal
        weights (classic max-min).
    stats:
        Optional out-parameter: when a dict is supplied, the number of
        progressive-filling iterations (water-level raises) is written to
        ``stats["iterations"]``.  Used by the observability layer; the
        default (``None``) adds no work to the loop.

    Returns
    -------
    numpy.ndarray
        Per-flow rate in bits/s; every rate is strictly positive.
    """
    num_flows = flow_ptr.shape[0] - 1
    if num_flows == 0:
        if stats is not None:
            stats["iterations"] = 0
        return np.empty(0, dtype=np.float64)
    if link_entries.shape[0] != flow_ptr[-1]:
        raise SimulationError("flow_ptr does not cover link_entries")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (num_flows,):
            raise SimulationError("weights must have one entry per flow")
        if np.any(weights <= 0):
            raise SimulationError("flow weights must be strictly positive")

    # compact to the links actually used by this batch
    used, local = np.unique(link_entries, return_inverse=True)
    cap_rem = capacities[used].astype(np.float64, copy=True)
    if np.any(cap_rem <= 0):
        raise SimulationError("active flow crosses a zero-capacity link")
    sat_floor = cap_rem * _SAT_TOL
    num_local = used.shape[0]

    flow_of_entry = np.repeat(np.arange(num_flows, dtype=np.int64),
                              np.diff(flow_ptr))

    # link -> entries CSR (so saturated links locate their flows in O(deg))
    entry_order = np.argsort(local, kind="stable")
    link_indptr = np.zeros(num_local + 1, dtype=np.int64)
    np.cumsum(np.bincount(local, minlength=num_local), out=link_indptr[1:])
    flows_by_link = flow_of_entry[entry_order]

    if weights is None:
        counts = np.bincount(local, minlength=num_local).astype(np.float64)
    else:
        counts = np.bincount(local, weights=weights[flow_of_entry],
                             minlength=num_local)
    active_link = counts > 0
    unfrozen = np.ones(num_flows, dtype=bool)
    rates = np.zeros(num_flows, dtype=np.float64)
    level = 0.0
    remaining_flows = num_flows
    iterations = 0

    for _ in range(num_local + 1):
        if remaining_flows == 0:
            break
        if not active_link.any():
            raise SimulationError("allocation left flows without a bottleneck")
        iterations += 1
        # raise the water level until the tightest active link saturates
        shares = cap_rem[active_link] / counts[active_link]
        delta = float(shares.min())
        level += delta
        cap_rem[active_link] -= delta * counts[active_link]
        saturated = np.nonzero(active_link & (cap_rem <= sat_floor))[0]
        if saturated.size == 0:
            # numerically the minimum itself must have saturated
            act = np.nonzero(active_link)[0]
            saturated = act[cap_rem[act] <= cap_rem[act].min() + sat_floor[act]]
        # freeze every unfrozen flow crossing a saturated link
        frozen_entries = np.concatenate(
            [flows_by_link[link_indptr[l]:link_indptr[l + 1]] for l in saturated])
        frozen_now = np.unique(frozen_entries)
        frozen_now = frozen_now[unfrozen[frozen_now]]
        active_link[saturated] = False
        if frozen_now.size:
            rates[frozen_now] = level if weights is None \
                else weights[frozen_now] * level
            unfrozen[frozen_now] = False
            remaining_flows -= frozen_now.size
            # remove the frozen flows' presence from link occupancy
            starts = flow_ptr[frozen_now]
            stops = flow_ptr[frozen_now + 1]
            idx = _slices_concat(starts, stops)
            touched = local[idx]
            if weights is None:
                np.subtract.at(counts, touched, 1.0)
            else:
                np.subtract.at(counts, touched, weights[flow_of_entry[idx]])
            emptied = counts <= _COUNT_TOL
            active_link &= ~emptied
    else:  # pragma: no cover - progressive filling always terminates
        raise SimulationError("progressive filling failed to converge")

    if remaining_flows:
        raise SimulationError("allocation left flows without a bottleneck")
    if stats is not None:
        stats["iterations"] = iterations
    return rates


def _slices_concat(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate index ranges [starts[i], stops[i]) into one index array."""
    lengths = stops - starts
    nonzero = lengths > 0
    if not nonzero.all():
        # a zero-length range contributes nothing, but below it would share
        # its cumsum offset with a neighbour and corrupt that range's start
        starts, stops, lengths = starts[nonzero], stops[nonzero], lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    offsets = np.zeros(len(starts) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    out[offsets[:-1]] = starts
    out[offsets[1:-1]] -= stops[:-1] - 1
    return np.cumsum(out)


def bottleneck_lower_bound(link_entries: np.ndarray, flow_ptr: np.ndarray,
                           capacities: np.ndarray,
                           sizes: np.ndarray) -> float:
    """Completion-time lower bound if all flows were concurrently active.

    For each link, the time to drain the total bytes crossing it at full
    capacity; the max over links bounds any schedule from below.  Used by
    the static analysis mode.
    """
    if flow_ptr.shape[0] <= 1:
        return 0.0
    flow_of_entry = np.repeat(np.arange(flow_ptr.shape[0] - 1, dtype=np.int64),
                              np.diff(flow_ptr))
    load = np.bincount(link_entries, weights=sizes[flow_of_entry],
                       minlength=capacities.shape[0])
    return float(np.max(load / capacities))
