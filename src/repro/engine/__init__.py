"""Flow-level network simulation engine (the INRFlow substitute).

Pipeline: a workload builds a :class:`~repro.engine.flows.FlowSet` (a DAG of
sized point-to-point flows), :func:`~repro.engine.simulator.simulate` runs
it on a topology under max-min fair bandwidth sharing, and
:func:`~repro.engine.static.analyze` provides the application-independent
link-load view.
"""

from repro.engine.active import ActiveSet
from repro.engine.flows import FlowBuilder, FlowSet
from repro.engine.maxmin import allocate, bottleneck_lower_bound
from repro.engine.results import LinkLoadReport, SimulationResult
from repro.engine.simulator import simulate
from repro.engine.static import analyze
from repro.engine.trace import per_task_stats, timeline_rows, to_csv

__all__ = [
    "ActiveSet",
    "FlowBuilder",
    "FlowSet",
    "LinkLoadReport",
    "SimulationResult",
    "allocate",
    "analyze",
    "bottleneck_lower_bound",
    "per_task_stats",
    "simulate",
    "timeline_rows",
    "to_csv",
]
