"""Result records returned by the simulation and analysis modes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one dynamic flow-level simulation.

    ``makespan`` — the workload's completion time in seconds — is the
    quantity behind the paper's Figures 4 and 5 (there reported normalised
    per workload).
    """

    makespan: float
    completion_times: np.ndarray   # per-flow, seconds
    start_times: np.ndarray        # per-flow injection times, seconds
    fidelity: str
    num_flows: int
    reallocations: int
    events: int
    total_bits: float
    #: Schema-versioned observability snapshot (tier link accounting,
    #: allocator statistics, span timers) when the run was instrumented
    #: with a :class:`repro.obs.MetricsCollector`; ``None`` otherwise.
    metrics: dict | None = None
    #: Which bandwidth allocator ran and how its work split
    #: (``{"allocator", "full_passes", "warm_fills", "relevel_fills"}``);
    #: ``None`` for a run that never allocated (empty flow set).
    allocator_stats: dict | None = None
    #: Transient-fault recovery counters (``fault_events``,
    #: ``flows_rerouted``, ``flows_parked``, ``flows_recovered``,
    #: ``rerouted_bits``, ``recovery_seconds``) when the run carried a
    #: non-empty :class:`~repro.topology.timeline.FaultTimeline`;
    #: ``None`` for every other run.
    transient: dict | None = None

    @property
    def aggregate_throughput(self) -> float:
        """Delivered bits per second over the whole run."""
        return self.total_bits / self.makespan if self.makespan > 0 else 0.0

    @property
    def flow_durations(self) -> np.ndarray:
        """Per-flow transfer times (completion minus injection)."""
        return self.completion_times - self.start_times

    def concurrency_profile(self, samples: int = 100) -> np.ndarray:
        """Number of in-flight flows at ``samples`` evenly spaced instants.

        Distinguishes the paper's heavy workloads (large fraction of
        endpoints injecting at once) from the causality-limited light ones.
        """
        if self.num_flows == 0 or self.makespan <= 0:
            return np.zeros(samples, dtype=np.int64)
        ts = np.linspace(0.0, self.makespan, samples, endpoint=False)
        starts = np.sort(self.start_times)
        ends = np.sort(self.completion_times)
        return (np.searchsorted(starts, ts, side="right")
                - np.searchsorted(ends, ts, side="right"))

    def summary(self) -> str:
        return (f"makespan={self.makespan:.6g}s flows={self.num_flows} "
                f"events={self.events} reallocs={self.reallocations} "
                f"fidelity={self.fidelity}")


@dataclass(frozen=True)
class LinkLoadReport:
    """Outcome of the static analysis mode (application-independent).

    Loads are in bits routed over each directed link if the whole workload
    were injected at once; ``bottleneck_time`` is the resulting
    completion-time lower bound.
    """

    loads: np.ndarray              # bits per directed link
    capacities: np.ndarray         # bits/s per directed link
    bottleneck_time: float
    flows_routed: int
    tier_loads: dict[str, float] = field(default_factory=dict)

    @property
    def max_load(self) -> float:
        return float(self.loads.max()) if self.loads.size else 0.0

    @property
    def mean_load(self) -> float:
        return float(self.loads.mean()) if self.loads.size else 0.0

    def utilisation_percentiles(self, qs=(50, 90, 99, 100)) -> dict[int, float]:
        """Drain-time percentiles (load/capacity) across links."""
        drain = self.loads / self.capacities
        return {int(q): float(np.percentile(drain, q)) for q in qs}

    def summary(self) -> str:
        parts = [f"bottleneck={self.bottleneck_time:.6g}s",
                 f"flows={self.flows_routed}"]
        parts += [f"{k}={v:.3g}b" for k, v in self.tier_loads.items()]
        return " ".join(parts)
