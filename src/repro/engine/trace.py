"""Timeline export: per-flow trace of a simulation run.

INRFlow-style post-mortem data: one record per flow with its endpoints,
size, injection and completion times.  Useful for plotting Gantt-style
timelines, computing per-task statistics, or feeding external analysis
tools; the CSV schema is stable and covered by tests.
"""

from __future__ import annotations

import io
import math

import numpy as np

from repro.engine.flows import FlowSet
from repro.engine.results import SimulationResult
from repro.errors import SimulationError

CSV_HEADER = "flow,src_task,dst_task,bits,start_s,end_s,duration_s,rate_bps"


def timeline_rows(result: SimulationResult, flows: FlowSet
                  ) -> list[tuple[int, int, int, float, float, float, float, float]]:
    """Structured per-flow records, ordered by completion time.

    Zero-duration flows (e.g. zero-hop transfers between co-located tasks)
    have no meaningful rate; their ``rate`` field is NaN so downstream
    statistics can skip it, and :func:`to_csv` renders it as an empty field.
    """
    if result.num_flows != flows.num_flows:
        raise SimulationError(
            "result and flow set disagree on the number of flows")
    order = np.argsort(result.completion_times, kind="stable")
    rows = []
    for fid in order.tolist():
        start = float(result.start_times[fid])
        end = float(result.completion_times[fid])
        duration = end - start
        bits = float(flows.size[fid])
        rate = bits / duration if duration > 0 else float("nan")
        rows.append((fid, int(flows.src[fid]), int(flows.dst[fid]),
                     bits, start, end, duration, rate))
    return rows


def to_csv(result: SimulationResult, flows: FlowSet) -> str:
    """Render the timeline as CSV text (header + one line per flow)."""
    out = io.StringIO()
    out.write(CSV_HEADER + "\n")
    for fid, src, dst, bits, start, end, duration, rate in \
            timeline_rows(result, flows):
        rate_field = "" if math.isnan(rate) else repr(rate)
        out.write(f"{fid},{src},{dst},{bits!r},{start!r},{end!r},"
                  f"{duration!r},{rate_field}\n")
    return out.getvalue()


def per_task_stats(result: SimulationResult, flows: FlowSet
                   ) -> dict[int, dict[str, float]]:
    """Per-source-task aggregates: flows sent, bytes, busy span.

    ``busy_span`` is the time from the task's first injection to its last
    completion — a proxy for how long the rank stayed communication-bound.
    """
    if result.num_flows != flows.num_flows:
        raise SimulationError(
            "result and flow set disagree on the number of flows")
    stats: dict[int, dict[str, float]] = {}
    for fid in range(flows.num_flows):
        task = int(flows.src[fid])
        entry = stats.setdefault(task, {
            "flows": 0.0, "bits": 0.0,
            "first_start": float("inf"), "last_end": 0.0})
        entry["flows"] += 1
        entry["bits"] += float(flows.size[fid])
        entry["first_start"] = min(entry["first_start"],
                                   float(result.start_times[fid]))
        entry["last_end"] = max(entry["last_end"],
                                float(result.completion_times[fid]))
    for entry in stats.values():
        entry["busy_span"] = entry["last_end"] - entry["first_start"]
    return stats
