"""Static (application-independent) analysis mode.

INRFlow "measures several static (application-independent) and dynamic
(with applications) properties" (paper Section 4.1).  The static mode here
routes every flow of a workload at once — ignoring causality — and
accumulates per-link byte loads.  It yields:

* a completion-time lower bound (the most loaded link's drain time),
* link-load distributions, overall and split by tier (NIC / lower-tier
  torus / uplinks / upper-tier fabric), which expose *where* a topology
  concentrates congestion long before a dynamic run finishes.
"""

from __future__ import annotations

import numpy as np

from repro.engine.flows import FlowSet
from repro.engine.results import LinkLoadReport
from repro.engine.simulator import _check_placement
from repro.topology.base import Topology


def analyze(topology: Topology, flows: FlowSet, *,
            placement: np.ndarray | None = None,
            route_cache: dict[tuple[int, int], np.ndarray] | None = None
            ) -> LinkLoadReport:
    """Route all flows and report per-link loads and the bottleneck bound.

    ``route_cache`` is the same ``(src endpoint, dst endpoint) -> link-id
    array`` dict :func:`repro.engine.simulate` takes, so one cache per
    topology serves both modes (the search rank-0 proxies and the sweep
    runner share theirs this way).  Repeated ``(src, dst)`` pairs are
    deduplicated before routing: each distinct pair is routed exactly
    once with its sizes pre-summed, instead of re-routing per flow.
    """
    placement = _check_placement(topology, flows, placement)
    capacities = topology.links.capacities
    loads = np.zeros(capacities.shape[0], dtype=np.float64)
    if route_cache is None:
        route_cache = {}

    src_ep = placement[flows.src]
    dst_ep = placement[flows.dst]
    network = src_ep != dst_ep  # zero-hop: co-located tasks load no link
    if network.any():
        # dedupe (src, dst) pairs and accumulate their total bytes first
        pair_key = (src_ep[network].astype(np.int64)
                    * np.int64(topology.num_endpoints)
                    + dst_ep[network])
        unique_keys, inverse = np.unique(pair_key, return_inverse=True)
        totals = np.bincount(inverse, weights=flows.size[network],
                             minlength=unique_keys.shape[0])
        num_ep = topology.num_endpoints
        for key, total in zip(unique_keys.tolist(), totals.tolist()):
            s, d = divmod(key, num_ep)
            route = route_cache.get((s, d))
            if route is None:
                route = np.asarray(topology.route(s, d), dtype=np.int64)
                route_cache[(s, d)] = route
            loads[route] += total

    bottleneck = float(np.max(loads / capacities)) if loads.size else 0.0
    return LinkLoadReport(
        loads=loads,
        capacities=capacities,
        bottleneck_time=bottleneck,
        flows_routed=flows.num_flows,
        tier_loads=_tier_breakdown(topology, loads),
    )


def load_imbalance(topology: Topology, report: LinkLoadReport) -> float:
    """Max-over-mean drain time across the *loaded network* links.

    NIC links are excluded (they saturate identically on every topology
    for endpoint-bound workloads) and so are idle links (a sparse uplink
    tier would otherwise look imbalanced just for having spare cables).
    ``1.0`` is a perfectly balanced network; larger values mean the
    topology concentrates the workload's bytes on few links — the rank-0
    congestion proxy of the design search.
    """
    names, index = topology.link_tiers()
    network = np.ones(report.loads.shape[0], dtype=bool)
    for i, name in enumerate(names):
        if name == "nic":
            network &= index != i
    drain = report.loads[network] / report.capacities[network]
    loaded = drain[drain > 0]
    if loaded.size == 0:
        return 1.0
    return float(loaded.max() / loaded.mean())


def _tier_breakdown(topology: Topology, loads: np.ndarray) -> dict[str, float]:
    """Total bits carried per architectural tier.

    Delegates the link classification to the topology's own
    :meth:`~repro.topology.base.Topology.link_tiers` metadata (a degraded
    wrapper returns its base machine's, since they share one link table).
    """
    names, index = topology.link_tiers()
    return {name: float(loads[index == i].sum())
            for i, name in enumerate(names)}
