"""Static (application-independent) analysis mode.

INRFlow "measures several static (application-independent) and dynamic
(with applications) properties" (paper Section 4.1).  The static mode here
routes every flow of a workload at once — ignoring causality — and
accumulates per-link byte loads.  It yields:

* a completion-time lower bound (the most loaded link's drain time),
* link-load distributions, overall and split by tier (NIC / lower-tier
  torus / uplinks / upper-tier fabric), which expose *where* a topology
  concentrates congestion long before a dynamic run finishes.
"""

from __future__ import annotations

import numpy as np

from repro.engine.flows import FlowSet
from repro.engine.results import LinkLoadReport
from repro.engine.simulator import _check_placement
from repro.topology.base import Topology


def analyze(topology: Topology, flows: FlowSet, *,
            placement: np.ndarray | None = None) -> LinkLoadReport:
    """Route all flows and report per-link loads and the bottleneck bound."""
    placement = _check_placement(topology, flows, placement)
    capacities = topology.links.capacities
    loads = np.zeros(capacities.shape[0], dtype=np.float64)

    src_ep = placement[flows.src]
    dst_ep = placement[flows.dst]
    sizes = flows.size
    for i in range(flows.num_flows):
        s, d = int(src_ep[i]), int(dst_ep[i])
        if s == d:
            continue  # zero-hop: co-located tasks load no link
        loads[topology.route(s, d)] += sizes[i]

    bottleneck = float(np.max(loads / capacities)) if loads.size else 0.0
    return LinkLoadReport(
        loads=loads,
        capacities=capacities,
        bottleneck_time=bottleneck,
        flows_routed=flows.num_flows,
        tier_loads=_tier_breakdown(topology, loads),
    )


def load_imbalance(topology: Topology, report: LinkLoadReport) -> float:
    """Max-over-mean drain time across the *loaded network* links.

    NIC links are excluded (they saturate identically on every topology
    for endpoint-bound workloads) and so are idle links (a sparse uplink
    tier would otherwise look imbalanced just for having spare cables).
    ``1.0`` is a perfectly balanced network; larger values mean the
    topology concentrates the workload's bytes on few links — the rank-0
    congestion proxy of the design search.
    """
    names, index = topology.link_tiers()
    network = np.ones(report.loads.shape[0], dtype=bool)
    for i, name in enumerate(names):
        if name == "nic":
            network &= index != i
    drain = report.loads[network] / report.capacities[network]
    loaded = drain[drain > 0]
    if loaded.size == 0:
        return 1.0
    return float(loaded.max() / loaded.mean())


def _tier_breakdown(topology: Topology, loads: np.ndarray) -> dict[str, float]:
    """Total bits carried per architectural tier.

    Delegates the link classification to the topology's own
    :meth:`~repro.topology.base.Topology.link_tiers` metadata (a degraded
    wrapper returns its base machine's, since they share one link table).
    """
    names, index = topology.link_tiers()
    return {name: float(loads[index == i].sum())
            for i, name in enumerate(names)}
