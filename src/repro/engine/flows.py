"""Flow sets: the traffic unit exchanged between workloads and the engine.

A *flow* is a point-to-point transfer of ``size`` bits between two tasks,
with causal dependencies: a flow may only start once all its predecessor
flows have completed ("some flows must finish before others are allowed to
be injected", paper Section 4.1).  A :class:`FlowSet` is the immutable,
structure-of-arrays form consumed by the simulator; workloads assemble it
through :class:`FlowBuilder`.

Flows reference *tasks*, not endpoints — the simulator applies a placement
(task -> endpoint) at routing time, so one workload can be replayed onto any
topology and mapping.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class FlowSet:
    """Immutable DAG of flows in structure-of-arrays form.

    ``succ_indptr``/``succ_indices`` form a CSR adjacency of the dependency
    DAG (flow -> flows that must wait for it); ``indegree`` counts each
    flow's predecessors.
    """

    num_tasks: int
    src: np.ndarray        # int64 task ids
    dst: np.ndarray        # int64 task ids
    size: np.ndarray       # float64 bits
    weight: np.ndarray     # float64 bandwidth-sharing weights (default 1.0)
    indegree: np.ndarray   # int64 predecessor counts
    succ_indptr: np.ndarray
    succ_indices: np.ndarray

    @property
    def num_flows(self) -> int:
        return int(self.src.shape[0])

    @property
    def is_weighted(self) -> bool:
        """True when any flow carries a non-default bandwidth weight."""
        return bool((self.weight != 1.0).any())

    @property
    def num_dependencies(self) -> int:
        return int(self.succ_indices.shape[0])

    @property
    def total_bits(self) -> float:
        return float(self.size.sum())

    def successors(self, flow: int) -> np.ndarray:
        """Flow ids that directly depend on ``flow``."""
        return self.succ_indices[self.succ_indptr[flow]:self.succ_indptr[flow + 1]]

    def roots(self) -> np.ndarray:
        """Flows with no predecessors (injectable at time zero)."""
        return np.nonzero(self.indegree == 0)[0]

    def topological_order(self) -> np.ndarray:
        """Kahn topological order; raises on cycles.

        Used for validation and by the static analysis mode.
        """
        indeg = self.indegree.copy()
        order = np.empty(self.num_flows, dtype=np.int64)
        queue = deque(self.roots().tolist())
        n = 0
        while queue:
            f = queue.popleft()
            order[n] = f
            n += 1
            for s in self.successors(f).tolist():
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        if n != self.num_flows:
            raise WorkloadError(
                f"dependency graph has a cycle ({self.num_flows - n} flows unreachable)")
        return order

    def dependency_depth(self) -> int:
        """Length of the longest dependency chain (number of levels)."""
        if self.num_flows == 0:
            return 0
        depth = np.zeros(self.num_flows, dtype=np.int64)
        for f in self.topological_order().tolist():
            succ = self.successors(f)
            if succ.size:
                np.maximum.at(depth, succ, depth[f] + 1)
        return int(depth.max()) + 1


class FlowBuilder:
    """Incremental constructor for :class:`FlowSet`.

    Typical workload usage::

        b = FlowBuilder(num_tasks)
        first = b.add_flow(0, 1, size)
        b.add_flow(1, 2, size, after=[first])
        flows = b.build()
    """

    def __init__(self, num_tasks: int) -> None:
        if num_tasks < 1:
            raise WorkloadError("a workload needs at least one task")
        self.num_tasks = num_tasks
        self._src: list[int] = []
        self._dst: list[int] = []
        self._size: list[float] = []
        self._weight: list[float] = []
        self._dep_pred: list[int] = []
        self._dep_succ: list[int] = []

    # ------------------------------------------------------------------- add
    def add_flow(self, src: int, dst: int, size: float,
                 after: Iterable[int] = (), *, weight: float = 1.0) -> int:
        """Register a flow and return its id.

        ``after`` lists predecessor flow ids that must complete first.
        ``weight`` sets the flow's bandwidth-sharing priority (weighted
        max-min: a weight-2 flow gets twice a weight-1 flow's share on a
        common bottleneck).
        """
        if not 0 <= src < self.num_tasks or not 0 <= dst < self.num_tasks:
            raise WorkloadError(
                f"flow endpoints ({src}, {dst}) out of range for "
                f"{self.num_tasks} tasks")
        if size <= 0:
            raise WorkloadError(f"flow size must be positive, got {size}")
        if weight <= 0:
            raise WorkloadError(f"flow weight must be positive, got {weight}")
        fid = len(self._src)
        self._src.append(src)
        self._dst.append(dst)
        self._size.append(float(size))
        self._weight.append(float(weight))
        for pred in after:
            self.add_dependency(pred, fid)
        return fid

    def add_dependency(self, pred: int, succ: int) -> None:
        """Require flow ``pred`` to complete before flow ``succ`` starts."""
        n = len(self._src)
        if not 0 <= pred < n or not 0 <= succ < n:
            raise WorkloadError(f"dependency ({pred}, {succ}) references unknown flows")
        if pred == succ:
            raise WorkloadError(f"flow {pred} cannot depend on itself")
        self._dep_pred.append(pred)
        self._dep_succ.append(succ)

    def barrier(self, preds: Sequence[int], succs: Sequence[int]) -> None:
        """All of ``succs`` wait for all of ``preds`` (all-pairs dependency).

        Use sparingly: cost is ``len(preds) * len(succs)`` edges.  Prefer
        per-task dependencies when the workload allows it.
        """
        for p in preds:
            for s in succs:
                self.add_dependency(p, s)

    def chain(self, flows: Sequence[int]) -> None:
        """Serialise ``flows``: each one waits for the previous."""
        for a, b in zip(flows, flows[1:]):
            self.add_dependency(a, b)

    # ----------------------------------------------------------------- build
    @property
    def num_flows(self) -> int:
        return len(self._src)

    def build(self, *, validate: bool = True) -> FlowSet:
        """Freeze into a :class:`FlowSet`; validates acyclicity by default."""
        n = len(self._src)
        indegree = np.zeros(n, dtype=np.int64)
        if self._dep_succ:
            succ_arr = np.asarray(self._dep_succ, dtype=np.int64)
            pred_arr = np.asarray(self._dep_pred, dtype=np.int64)
            np.add.at(indegree, succ_arr, 1)
            order = np.argsort(pred_arr, kind="stable")
            indices = succ_arr[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            counts = np.bincount(pred_arr, minlength=n)
            np.cumsum(counts, out=indptr[1:])
        else:
            indices = np.empty(0, dtype=np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
        flows = FlowSet(
            num_tasks=self.num_tasks,
            src=np.asarray(self._src, dtype=np.int64),
            dst=np.asarray(self._dst, dtype=np.int64),
            size=np.asarray(self._size, dtype=np.float64),
            weight=np.asarray(self._weight, dtype=np.float64),
            indegree=indegree,
            succ_indptr=indptr,
            succ_indices=indices,
        )
        if validate and n:
            flows.topological_order()  # raises on cycles
        return flows
