"""Transient-fault event loop: the network degrades and heals mid-run.

:func:`repro.engine.simulate` dispatches here when handed a non-empty
:class:`~repro.topology.timeline.FaultTimeline`.  The loop is the
incremental engine's (same admission order, completion-tie batching and
bounded-churn reallocation policy — a timeline whose events never fire
during the run produces bitwise-identical results) with one extra event
source merged in: timeline epochs.

When the next epoch boundary lands before the earliest completion, the
loop:

* charges every active flow its partial progress up to the boundary
  (``remaining -= rates * dt``) and jumps time there;
* swaps the routing view — the base topology wrapped in the epoch's
  cumulative :class:`~repro.topology.degraded.FaultSet`, or the bare base
  once everything is repaired.  Route caches invalidate *incrementally*:
  cache keys carry the fault set's
  :meth:`~repro.topology.degraded.FaultSet.cache_token`, so each epoch
  fills its own partition, healthy epochs reuse the healthy partition,
  and a later epoch with the same cumulative faults (fail/repair cycles)
  reuses earlier work — no flush, ever;
* recovers the in-flight flows whose route crosses a newly-disabled link:
  each is removed from the :class:`~repro.engine.active.ActiveSet`,
  rerouted over the surviving candidate set (which falls back to the
  uplink fail-over / BFS-detour ladder of
  :class:`~repro.topology.degraded.DegradedTopology`), and re-added with
  its remaining bytes preserved;
* *parks* a flow whose pair is currently disconnected and retries it at
  every later epoch.  :class:`~repro.errors.DegradedNetworkError` is
  raised only when a pair is truly disconnected and no remaining event
  could ever reconnect it — matching the static engine's behaviour for a
  timeline that never repairs.

The transient counters (fault events fired, flows rerouted/parked/
recovered, bits moved to new routes, seconds spent parked) ride on
``result.transient`` and — when the run is instrumented — in the metrics
snapshot's ``"transient"`` block.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.active import ActiveSet
from repro.engine.flows import FlowSet
from repro.engine.maxmin import _slices_concat
from repro.engine.results import SimulationResult
from repro.engine.simulator import (_TIE_EPS, CHURN_FRACTION,
                                    _batching_enabled, _make_route_fn)
from repro.errors import DegradedNetworkError, SimulationError
from repro.topology.base import Topology
from repro.topology.degraded import DegradedTopology
from repro.topology.timeline import FaultTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsCollector


def simulate_transient(topology: Topology, flows: FlowSet,
                       placement: np.ndarray, fidelity: str,
                       max_events: int, route_cache: dict | None,
                       collector: MetricsCollector | None, routing: str,
                       timeline: FaultTimeline) -> SimulationResult:
    """Run ``flows`` while ``timeline`` degrades and heals the network.

    Called by :func:`repro.engine.simulate` (which owns all argument
    validation except the two transient-specific checks below); see the
    module docstring for the merge semantics.
    """
    if isinstance(topology, DegradedTopology):
        raise SimulationError(
            "fault timelines require the healthy base topology; encode "
            "static faults as timeline events at t <= 0 instead of wrapping "
            "with DegradedTopology")
    timeline.validate(topology)
    epochs = timeline.epochs()

    n = flows.num_flows
    capacities = topology.links.capacities
    remaining = flows.size.copy()
    indegree = flows.indegree.copy()
    completion = np.full(n, np.nan)
    start = np.full(n, np.nan)
    weighted = flows.is_weighted
    weight_arr = flows.weight

    adaptive = routing == "adaptive"
    # per-flow completion/recovery walk (see the healthy engine): required
    # for adaptive, forced by REPRO_EVENT_BATCH=0 otherwise
    per_flow = adaptive or not _batching_enabled()
    active = ActiveSet(capacities, weighted=weighted,
                       track_occupancy=adaptive)
    occ_fn = (lambda: active.occupancy) if adaptive else None

    if route_cache is None:
        route_cache = {}
    src_ep = placement[flows.src]
    dst_ep = placement[flows.dst]

    counters = {"fault_events": 0, "flows_rerouted": 0, "flows_parked": 0,
                "flows_recovered": 0, "rerouted_bits": 0.0,
                "recovery_seconds": 0.0}
    #: flow id -> time it was parked (pair currently disconnected).
    parked: dict[int, float] = {}

    # ---- epoch state: events at or before t=0 are the machine's state at
    # job start; everything later fires inside the loop
    epoch_idx = -1
    while epoch_idx + 1 < len(epochs) and epochs[epoch_idx + 1].start <= 0.0:
        epoch_idx += 1

    def view_of(idx: int) -> Topology:
        if idx < 0 or epochs[idx].faults.empty:
            return topology
        return DegradedTopology(topology, epochs[idx].faults)

    current = view_of(epoch_idx)
    route_of = _make_route_fn(current, src_ep, dst_ep, route_cache,
                              collector, routing, occ_fn)
    next_change = epochs[epoch_idx + 1].start \
        if epoch_idx + 1 < len(epochs) else math.inf

    completed_count = 0

    def route_or_park(f: int, t: float) -> np.ndarray | None:
        """Route a flow under the current epoch, or park it until repair.

        Propagates :class:`~repro.errors.DegradedNetworkError` when no
        future epoch exists — the pair can never reconnect, which is the
        one case the typed error is for (and the behaviour that makes a
        never-repairing timeline match the static engine).
        """
        try:
            return route_of(f)
        except DegradedNetworkError:
            if epoch_idx + 1 >= len(epochs):
                raise
            parked[f] = t
            counters["flows_parked"] += 1
            return None

    def inject(fid: int, t: float, rate: float) -> int:
        """Per-flow admission with the zero-hop completion cascade."""
        nonlocal completed_count
        admitted = 0
        stack = [(fid, rate)]
        while stack:
            f, r = stack.pop()
            start[f] = t
            route = route_or_park(f, t)
            if route is None:
                continue  # parked; remains un-started until a repair
            if collector is not None:
                collector.flow_injected(float(flows.size[f]), route.shape[0])
            if route.shape[0]:
                active.add(f, route, rate=r,
                           weight=float(weight_arr[f]) if weighted else 1.0)
                admitted += 1
                continue
            completion[f] = t
            remaining[f] = 0.0
            completed_count += 1
            for succ in flows.successors(f).tolist():
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    stack.append((succ, r))
        return admitted

    succ_indptr = flows.succ_indptr
    succ_indices = flows.succ_indices

    def admit_batch(ready: np.ndarray, t: float) -> int:
        """Vectorised admission (mirrors the healthy engine's batch path)."""
        admitted = 0
        if adaptive:
            # per-flow admission so each selection sees the occupancy left
            # by the flows admitted just before it (same as the healthy
            # engine — required for bitwise identity when no event fires)
            for f in ready.tolist():
                admitted += inject(f, t, 0.0)
            return admitted
        zero_hop = src_ep[ready] == dst_ep[ready]
        routed = ready[~zero_hop]
        if routed.shape[0]:
            start[routed] = t
            fids: list[int] = []
            route_list: list[np.ndarray] = []
            for f in routed.tolist():
                route = route_or_park(f, t)
                if route is None:
                    continue
                fids.append(f)
                route_list.append(route)
            if fids:
                fid_arr = np.asarray(fids, dtype=np.int64)
                active.add_many(fid_arr, route_list,
                                weights=weight_arr[fid_arr] if weighted
                                else None)
                if collector is not None:
                    for f, r in zip(fids, route_list):
                        collector.flow_injected(float(flows.size[f]),
                                                r.shape[0])
                admitted += len(fids)
        for f in ready[zero_hop].tolist():
            admitted += inject(f, t, 0.0)
        return admitted

    def release_batch(done_ids: np.ndarray, t: float) -> int:
        succs = succ_indices[_slices_concat(succ_indptr[done_ids],
                                            succ_indptr[done_ids + 1])]
        if succs.shape[0] == 0:
            return 0
        uniq, cnt = np.unique(succs, return_counts=True)
        indegree[uniq] -= cnt
        ready = uniq[indegree[uniq] == 0]
        if ready.shape[0] == 0:
            return 0
        return admit_batch(ready, t)

    def release_inherit(done_ids: np.ndarray, done_rates: np.ndarray,
                        t: float) -> int:
        """Batched approx-mode release (the healthy engine's twin).

        Same last-trigger rate inheritance and trigger-order admission as
        :func:`repro.engine.simulator._simulate_incremental`'s helper,
        with one transient twist: a released flow whose pair the current
        epoch disconnects parks instead of entering the network.
        """
        completion[done_ids] = t
        active.remove_many(done_ids)
        succs = succ_indices[_slices_concat(succ_indptr[done_ids],
                                            succ_indptr[done_ids + 1])]
        if succs.shape[0] == 0:
            return 0
        rep_rates = np.repeat(done_rates,
                              succ_indptr[done_ids + 1]
                              - succ_indptr[done_ids])
        if bool((src_ep[succs] == dst_ep[succs]).any()):
            # zero-hop successors cascade instantly; fall back to the
            # sequential walk
            released = 0
            for f, r in zip(succs.tolist(), rep_rates.tolist()):
                indegree[f] -= 1
                if indegree[f] == 0:
                    released += inject(f, t, r)
            return released
        uniq, cnt = np.unique(succs, return_counts=True)
        indegree[uniq] -= cnt
        ready_mask = indegree[uniq] == 0
        if not ready_mask.any():
            return 0
        order = np.argsort(succs, kind="stable")
        last_pos = order[np.cumsum(cnt) - 1]   # per unique: last occurrence
        trig = last_pos[ready_mask]
        seq = np.argsort(trig, kind="stable")  # back to trigger order
        ready = uniq[ready_mask][seq]
        inherit = rep_rates[trig[seq]]
        fids: list[int] = []
        route_list: list[np.ndarray] = []
        rate_list: list[float] = []
        for f, r in zip(ready.tolist(), inherit.tolist()):
            start[f] = t
            route = route_or_park(f, t)
            if route is None:
                continue  # parked until a repair reconnects the pair
            fids.append(f)
            route_list.append(route)
            rate_list.append(r)
        if not fids:
            return 0
        fid_arr = np.asarray(fids, dtype=np.int64)
        active.add_many(fid_arr, route_list,
                        rates=np.asarray(rate_list),
                        weights=weight_arr[fid_arr] if weighted else None)
        if collector is not None:
            for f, route in zip(fids, route_list):
                collector.flow_injected(float(flows.size[f]),
                                        route.shape[0])
        return len(fids)

    def apply_epoch(t: float) -> None:
        """Advance to the next epoch and recover the flows it cuts."""
        nonlocal epoch_idx, current, route_of, next_change
        epoch_idx += 1
        current = view_of(epoch_idx)
        route_of = _make_route_fn(current, src_ep, dst_ep, route_cache,
                                  collector, routing, occ_fn)
        next_change = epochs[epoch_idx + 1].start \
            if epoch_idx + 1 < len(epochs) else math.inf
        counters["fault_events"] += 1

        # flows whose route the new fault state just cut (repairs disable
        # nothing, so a pure-repair epoch recovers parked flows only)
        affected: list[int] = []
        if isinstance(current, DegradedTopology) and active.size:
            mask = current.disabled_link_mask()
            affected = sorted(
                f for f, route in zip(active.flow_ids.tolist(),
                                      active.route_list())
                if mask[route].any())
        if affected:
            active.remove_many(np.asarray(affected, dtype=np.int64))
        if per_flow:
            # re-added after *all* removals, per flow so each selection
            # sees the occupancy the previous re-add left, in
            # ascending-id order for determinism
            for f in affected:
                route = route_or_park(f, t)
                if route is None:
                    continue
                active.add(f, route, rate=0.0,
                           weight=float(weight_arr[f]) if weighted else 1.0)
                counters["flows_rerouted"] += 1
                counters["rerouted_bits"] += float(remaining[f])
        else:
            # routes are occupancy-independent: reroute each cut flow in
            # the same ascending-id order, then re-admit the batch in one
            # vectorised pass
            fids: list[int] = []
            route_list: list[np.ndarray] = []
            for f in affected:
                route = route_or_park(f, t)
                if route is None:
                    continue
                fids.append(f)
                route_list.append(route)
                counters["flows_rerouted"] += 1
                counters["rerouted_bits"] += float(remaining[f])
            if fids:
                fid_arr = np.asarray(fids, dtype=np.int64)
                active.add_many(fid_arr, route_list,
                                weights=weight_arr[fid_arr] if weighted
                                else None)
        recovered: list[int] = []
        recovered_routes: list[np.ndarray] = []
        for f in sorted(parked):
            try:
                route = route_of(f)
            except DegradedNetworkError:
                continue  # still cut; retried at the next epoch
            if per_flow:
                active.add(f, route, rate=0.0,
                           weight=float(weight_arr[f]) if weighted else 1.0)
            else:
                recovered.append(f)
                recovered_routes.append(route)
            if collector is not None:
                collector.flow_injected(float(flows.size[f]), route.shape[0])
            counters["flows_recovered"] += 1
            counters["recovery_seconds"] += t - parked.pop(f)
            counters["rerouted_bits"] += float(remaining[f])
        if recovered:
            fid_arr = np.asarray(recovered, dtype=np.int64)
            active.add_many(fid_arr, recovered_routes,
                            weights=weight_arr[fid_arr] if weighted
                            else None)
        if parked and epoch_idx + 1 >= len(epochs):
            pairs = [(int(src_ep[f]), int(dst_ep[f])) for f in sorted(parked)]
            raise DegradedNetworkError(
                pairs, faults=current.faults.describe()
                if isinstance(current, DegradedTopology) else None)

    roots = flows.roots()
    if roots.shape[0] == 0:
        raise SimulationError(
            "no injectable flows: dependency graph has no roots")
    admit_batch(roots, 0.0)

    now = 0.0
    events = 0
    reallocations = 0
    churn = active.size   # everything new -> allocate on first iteration
    alloc_size = 0
    force_alloc = False   # set after every epoch transition
    loop_t0 = time.perf_counter() if collector is not None else 0.0

    while completed_count < n:
        if active.size == 0:
            if parked:
                # everything in flight is waiting on a repair: jump time
                # straight to the next fault event (route_or_park only
                # parks when a later epoch exists, so this terminates)
                now = max(now, next_change)
                apply_epoch(now)
                force_alloc = True
                events += 1
                if events > max_events:
                    raise SimulationError(f"exceeded {max_events} events")
                continue
            raise SimulationError(
                f"simulation stalled with {n - completed_count} flows "
                f"blocked (cyclic or unsatisfiable dependencies)")
        if fidelity == "exact" or force_alloc \
                or churn >= max(1.0, CHURN_FRACTION * alloc_size):
            stats: dict | None = {} if collector is not None else None
            t0 = time.perf_counter() if collector is not None else 0.0
            active.allocate(stats=stats)
            if collector is not None:
                assert stats is not None
                if stats.get("warm"):
                    reason = "warm"
                elif fidelity == "exact":
                    reason = "forced"
                elif force_alloc:
                    reason = "fault"
                else:
                    reason = "initial" if reallocations == 0 else "churn"
                collector.record_allocation(active.size, stats["iterations"],
                                            reason,
                                            time.perf_counter() - t0)
            reallocations += 1
            churn = 0
            alloc_size = active.size
            force_alloc = False

        ids = active.flow_ids
        rates = active.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            deadlines = remaining[ids] / rates
        dt = float(deadlines.min())
        if not np.isfinite(dt):
            bad = ids[~np.isfinite(deadlines)]
            raise SimulationError(
                f"flow(s) {bad.tolist()[:8]} have a non-finite completion "
                f"deadline: the allocator froze them at zero rate "
                f"(fidelity={fidelity!r}, event {events})")

        if next_change < now + dt:
            # the fault event fires before the earliest completion: charge
            # partial progress, jump to the boundary, recover and re-plan.
            # Completions exactly *at* the boundary are not special-cased —
            # they fall out of the next iteration with dt == 0.
            dt_fault = next_change - now
            if collector is not None:
                collector.account_event(active.route_list(), rates, dt_fault)
            remaining[ids] -= rates * dt_fault
            now = next_change
            apply_epoch(now)
            force_alloc = True
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events")
            continue

        done_mask = deadlines <= dt + max(dt, 1.0) * _TIE_EPS
        if collector is not None:
            collector.account_event(active.route_list(), rates, dt)
        now += dt
        remaining[ids] -= rates * dt

        done_ids = ids[done_mask]
        done_rates = rates[done_mask]
        remaining[done_ids] = 0.0
        released = 0
        if fidelity == "exact":
            completion[done_ids] = now
            if per_flow and not adaptive:
                # historical per-event walk (REPRO_EVENT_BATCH=0); rates
                # are identical to the batched path — see simulator.py
                for fid in done_ids.tolist():
                    active.remove(fid)
                    for succ in flows.successors(fid).tolist():
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            released += inject(succ, now, 0.0)
            else:
                active.remove_many(done_ids)
                released = release_batch(done_ids, now)
        elif per_flow:
            for fid, rate in zip(done_ids.tolist(), done_rates.tolist()):
                completion[fid] = now
                active.remove(fid)
                for succ in flows.successors(fid).tolist():
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        # rate is inherited by the release (approx mode)
                        released += inject(succ, now, rate)
        else:
            released = release_inherit(done_ids, done_rates, now)
        completed_count += int(done_mask.sum())
        events += 1
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        churn += done_ids.shape[0] + released

    snap = None
    if collector is not None:
        collector.add_time("event_loop", time.perf_counter() - loop_t0)
        collector.record_transient(counters)
        snap = collector.snapshot(topology, now)
    return SimulationResult(
        makespan=now,
        completion_times=completion,
        start_times=start,
        fidelity=fidelity,
        num_flows=n,
        reallocations=reallocations,
        events=events,
        total_bits=flows.total_bits,
        metrics=snap,
        allocator_stats={"allocator": "incremental",
                         "full_passes": active.full_passes,
                         "warm_fills": active.warm_fills,
                         "relevel_fills": active.relevel_fills},
        transient=dict(counters),
    )
