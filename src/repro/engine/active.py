"""Persistent active-flow set with incremental max-min allocation.

:func:`repro.engine.maxmin.allocate` is the *reference* allocator: it is
handed a freshly concatenated CSR of every active route and recomputes
progressive filling from zero state.  That is robust but makes every
event cost O(total active route length · log) even when a single flow
finished — the dominant cost of the ``"exact"`` fidelity.

:class:`ActiveSet` keeps the flow→link incidence alive *across* events:

* **Slot-packed bookkeeping** — active flows occupy slots ``0..m-1``;
  removal swaps the last slot in, so the flow-id and rate vectors the
  event loop reads are always dense views, with no per-event Python list
  rebuilds.  Adding or removing a flow costs O(route length).
* **Pooled entries buffer** — each flow's route is copied once into a
  shared link-id pool on admission and reused by every later allocation;
  dead segments are reclaimed by occasional O(live) compaction, so there
  is no per-event ``np.concatenate`` over a Python list.
* **Persistent link→flows CSR** — progressive filling freezes flows
  through a CSR that lives *across* events: small membership batches
  patch it in place (removals tombstone their entries, admissions append
  into per-link slack regions, per-link occupancy is maintained
  alongside), so a steady-churn pass skips the O(nnz) gather/sort setup
  entirely; bulk churn falls back to one vectorised tight rebuild.  Each
  saturated link then freezes exactly its own flows, so freeze work per
  pass is O(total route length) regardless of the water-level iteration
  count.  The per-link arithmetic is element-for-element the same as the
  reference, so the resulting rates are identical (bitwise for
  unweighted flows, to float tolerance for weighted ones).
* **Warm-started fills** — a full pass records the water level at which
  every link saturated.  When the multiset of active routes is unchanged
  since the previous allocation (each finished flow was replaced by a
  release with an *identical* route — the steady state of chained
  workloads such as permutations and the unstructured streams), the
  max-min solution is unchanged too: continuing flows keep their rates
  and each new flow's rate is the minimum recorded level along its
  route.  The whole "allocation" is then O(changed routes).  Route
  identity is tracked by object (the simulator's route cache interns one
  array per ``(src, dst)`` pair), and pending references are pinned so
  ids cannot be recycled mid-flight.
* **Suffix-resumed relevels** — the warm machinery extended to
  *near-identical* states: unweighted churn whose admissions were all
  matched by removals with identical routes, plus any number of net
  removals (the exact-fidelity completion batch: finished flows leave,
  chained releases reuse their predecessors' routes).  Removing flows
  only raises water levels, and it provably cannot change any fill
  iteration strictly below ``tmin`` — the lowest recorded level on any
  link of a net-removed route — so a full pass's recorded per-iteration
  increments (``full_fill`` saves them alongside the levels) can be
  *replayed* over the handful of links whose occupancy changed and the
  water-level loop resumed at ``tmin`` with only the flows rated above
  it participating.  Rates, levels and the spliced sequences are
  bitwise those of a full pass, so consecutive completion batches keep
  resuming one another.  Any violated precondition (weighted set, net
  admissions, stale CSR, non-increasing recorded levels, replay work
  rivalling a full pass) falls back to the full pass;
  ``REPRO_EXACT_RELEVEL=0`` disables the path for A/B benchmarking.

The warm and relevel paths are exact, not approximate: they reproduce
the float values a full pass would produce, so ``"exact"``-fidelity
makespans are unchanged.  Weighted flow sets always take the full pass
(a matched route does not imply a matched weight).
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine import kernels as kernels_mod
from repro.engine.maxmin import _SAT_TOL, _slices_concat
from repro.errors import SimulationError

#: Initial slot capacity (grown geometrically).
_MIN_SLOTS = 64

#: Initial pooled-entries capacity (grown geometrically).
_MIN_ENTRIES = 1024

#: Dead entries tolerated in the pool before a gather triggers compaction.
_COMPACT_SLACK = 4096

#: Membership batches larger than max(this, m/8) skip in-place CSR
#: patching and schedule a vectorised rebuild instead — per-flow patch
#: work only pays off when the batch is small next to the active set.
_PATCH_MAX = 64


class ActiveSet:
    """Incidence, occupancy and rates of the currently active flows.

    One instance serves one simulation run; ``capacities`` is the global
    per-link capacity vector (bits/s) of the topology's link table.
    """

    def __init__(self, capacities: np.ndarray, *,
                 weighted: bool = False,
                 track_occupancy: bool = False,
                 kernels: str | None = None) -> None:
        self.capacities = np.asarray(capacities, dtype=np.float64)
        #: Fill-kernel backend (see :mod:`repro.engine.kernels`); ``None``
        #: resolves the session default (forced > REPRO_KERNELS > auto).
        self.kernels = kernels_mod.get(kernels)
        num_links = self.capacities.shape[0]
        self._weighted = bool(weighted)
        #: Per-link live-flow counts, maintained across add/remove when
        #: ``track_occupancy`` is set (the adaptive routing policy reads
        #: this to score candidate routes); ``None`` otherwise, so the
        #: default engine pays nothing for it.
        self.occupancy: np.ndarray | None = (
            np.zeros(num_links, dtype=np.int64) if track_occupancy else None)
        self._caps_all_positive = bool((self.capacities > 0).all()) \
            if num_links else True

        # slot-packed per-flow state (slot i valid for i < _m)
        self._flow_ids = np.full(_MIN_SLOTS, -1, dtype=np.int64)
        self._rates = np.zeros(_MIN_SLOTS, dtype=np.float64)
        self._weights = np.ones(_MIN_SLOTS, dtype=np.float64)
        self._starts = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self._lens = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self._route_key = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self._slot_flag = np.zeros(_MIN_SLOTS, dtype=bool)
        self._routes: list[np.ndarray | None] = [None] * _MIN_SLOTS
        # flow id -> slot (-1 = inactive); grown to the largest id seen,
        # so batch membership updates are single vectorised gathers
        self._slot_arr = np.full(_MIN_SLOTS, -1, dtype=np.int64)
        self._m = 0

        # pooled route entries (flow i owns _entries[start:start+len])
        self._entries = np.empty(_MIN_ENTRIES, dtype=np.int64)
        self._tail = 0
        self._live_nnz = 0

        # reusable per-link scratch (allocated once per simulation)
        self._cap_rem = np.empty(num_links, dtype=np.float64)
        self._counts = np.zeros(num_links, dtype=np.float64)
        self._sat_floor = self.capacities * _SAT_TOL

        # persistent link→flows CSR (flow *ids*, slack regions per link),
        # patched in place across events: removals tombstone (-1) their
        # entries, admissions append into their links' slack, and per-link
        # occupancy is maintained alongside.  A full vectorised rebuild
        # happens on the next pass whenever the structure is invalidated
        # (large batch, region overflow, pool compaction) or tombstones
        # accumulate; weighted sets always rebuild (occupancy depends on
        # weights).
        self._csr_flows = np.empty(0, dtype=np.int64)
        self._csr_start = np.zeros(num_links, dtype=np.int64)
        self._csr_len = np.zeros(num_links, dtype=np.int64)
        self._csr_cap = np.zeros(num_links, dtype=np.int64)
        self._pos_in_csr = np.empty(_MIN_ENTRIES, dtype=np.int64)
        self._counts_base = np.zeros(num_links, dtype=np.float64)
        self._csr_ok = False
        self._csr_dead = 0
        # adds+removes since the last allocation: a rebuild only pays for
        # slack regions and the back-map when recent churn was small
        # enough that patching can keep the structure alive
        self._churn_units = 0

        # warm-start state: water level at which each link saturated in
        # the last full pass (+inf = never), and the links that were set
        # (the mask mirrors _level_links for O(batch) membership tests)
        self._levels = np.full(num_links, np.inf, dtype=np.float64)
        self._level_links = np.empty(0, dtype=np.int64)
        self._level_mask = np.zeros(num_links, dtype=bool)
        self._level_buf = np.empty(0, dtype=np.int64)
        self._have_levels = False

        # recorded per-iteration water-level increments and cumulative
        # levels of the last fill (full pass, or spliced by a relevel);
        # _seq_ok certifies the levels strictly increase, which the
        # relevel's threshold search and occupancy replay both rely on
        self._delta_seq = np.empty(0, dtype=np.float64)
        self._level_seq = np.empty(0, dtype=np.float64)
        self._seq_ok = False
        self._seq_buf_d = np.empty(0, dtype=np.float64)
        self._seq_buf_l = np.empty(0, dtype=np.float64)
        self._relevel_enabled = \
            os.environ.get("REPRO_EXACT_RELEVEL", "1") != "0"

        # membership churn since the last allocation, as append-only key
        # lists compared as sorted arrays at allocation time (cheaper
        # than per-key dict upkeep when batches have all-distinct
        # routes).  Removed routes are kept (key-aligned) until the next
        # allocation — they pin the interned arrays so ids cannot be
        # recycled mid-flight, and the relevel path reads the net-removed
        # ones; added routes are pinned by the slot table itself.
        self._added_keys: list[int] = []
        self._removed_keys: list[int] = []
        self._removed_routes: list[np.ndarray] = []
        self._pending_new: list[int] = []

        #: Allocation counters (read by benchmarks and tests).
        self.full_passes = 0
        self.warm_fills = 0
        self.relevel_fills = 0

    # ---------------------------------------------------------------- views
    @property
    def size(self) -> int:
        """Number of active flows."""
        return self._m

    @property
    def flow_ids(self) -> np.ndarray:
        """Dense flow-id vector (view; invalidated by add/remove)."""
        return self._flow_ids[:self._m]

    @property
    def rates(self) -> np.ndarray:
        """Per-flow rates aligned with :attr:`flow_ids` (view)."""
        return self._rates[:self._m]

    @property
    def weights(self) -> np.ndarray:
        """Per-flow bandwidth weights aligned with :attr:`flow_ids`."""
        return self._weights[:self._m]

    def route_list(self) -> list[np.ndarray]:
        """Active routes in slot order (for the metrics collector)."""
        return self._routes[:self._m]  # type: ignore[return-value]

    # ----------------------------------------------------------- membership
    def add(self, fid: int, route: np.ndarray, *, rate: float = 0.0,
            weight: float = 1.0) -> None:
        """Admit flow ``fid`` with the given route (O(route length)).

        ``rate`` seeds the flow's current rate (approx-mode inheritance);
        it is overwritten by the next allocation.
        """
        length = route.shape[0]
        if length == 0:
            raise SimulationError(
                f"flow {fid} has an empty route; zero-hop flows never "
                "enter the active set")
        self._ensure_slot_arr(fid)
        if self._slot_arr[fid] >= 0:
            raise SimulationError(f"flow {fid} is already active")
        if weight <= 0:
            raise SimulationError("flow weights must be strictly positive")
        slot = self._m
        if slot == self._flow_ids.shape[0]:
            self._grow_slots()
        if self._tail + length > self._entries.shape[0]:
            self._make_room(length)
        start = self._tail
        self._entries[start:start + length] = route
        self._tail = start + length
        self._live_nnz += length
        self._flow_ids[slot] = fid
        self._rates[slot] = rate
        self._weights[slot] = weight
        self._starts[slot] = start
        self._lens[slot] = length
        self._route_key[slot] = id(route)
        self._routes[slot] = route
        self._slot_arr[fid] = slot
        self._m = slot + 1
        self._churn_units += 1
        if self.occupancy is not None:
            self.occupancy[route] += 1  # routes are simple paths
        if self._csr_ok:
            self._csr_patch_add(fid, route, start, length)
        self._added_keys.append(id(route))
        self._pending_new.append(fid)

    def add_many(self, fids: np.ndarray, routes: list[np.ndarray], *,
                 weights: np.ndarray | None = None,
                 rates: np.ndarray | None = None) -> None:
        """Admit a batch of flows in one vectorised pass.

        Equivalent to calling :meth:`add` per flow in order, but the slot
        arrays, the entries pool and the churn log are updated in bulk
        instead of per flow.  ``rates`` seeds each flow's allocation (the
        approx-fidelity engine inherits a predecessor's last rate at
        release); flows start at ``0.0`` until the next fill otherwise.
        """
        k = len(routes)
        if k == 0:
            return
        fids = np.asarray(fids, dtype=np.int64)
        lens = np.fromiter((r.shape[0] for r in routes), count=k,
                           dtype=np.int64)
        if not (lens > 0).all():
            bad = int(fids[np.fromiter(
                (r.shape[0] == 0 for r in routes), count=k, dtype=bool)][0])
            raise SimulationError(
                f"flow {bad} has an empty route; zero-hop flows never "
                "enter the active set")
        if weights is not None and not (weights > 0).all():
            raise SimulationError("flow weights must be strictly positive")
        self._ensure_slot_arr(int(fids.max()))
        if (self._slot_arr[fids] >= 0).any() or \
                np.unique(fids).shape[0] != k:
            raise SimulationError("batch admission repeats an active flow")
        m = self._m
        while m + k > self._flow_ids.shape[0]:
            self._grow_slots()
        total = int(lens.sum())
        if self._tail + total > self._entries.shape[0]:
            self._make_room(total)
        start0 = self._tail
        block = routes[0] if k == 1 else np.concatenate(routes)
        self._entries[start0:start0 + total] = block
        self._tail = start0 + total
        self._live_nnz += total
        starts = np.zeros(k, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        starts += start0
        sl = slice(m, m + k)
        self._flow_ids[sl] = fids
        self._rates[sl] = 0.0 if rates is None else rates
        self._weights[sl] = 1.0 if weights is None else weights
        self._starts[sl] = starts
        self._lens[sl] = lens
        keys = np.fromiter((id(r) for r in routes), count=k, dtype=np.int64)
        self._route_key[sl] = keys
        self._routes[m:m + k] = routes
        self._slot_arr[fids] = np.arange(m, m + k, dtype=np.int64)
        self._m = m + k
        self._churn_units += k
        if self.occupancy is not None:
            # links can repeat across the batch's routes, so accumulate
            np.add.at(self.occupancy, block, 1)
        if self._csr_ok:
            if k > max(_PATCH_MAX, m >> 3):
                self._csr_ok = False
            else:
                for i in range(k):
                    self._csr_patch_add(int(fids[i]), routes[i],
                                        int(starts[i]), int(lens[i]))
                    if not self._csr_ok:
                        break
        self._added_keys.extend(keys.tolist())
        self._pending_new.extend(fids.tolist())

    def remove(self, fid: int) -> float:
        """Retire flow ``fid`` and return its last allocated rate (O(1)
        slot work plus O(1) churn bookkeeping)."""
        if not 0 <= fid < self._slot_arr.shape[0] or self._slot_arr[fid] < 0:
            raise SimulationError(f"flow {fid} is not active")
        slot = int(self._slot_arr[fid])
        self._slot_arr[fid] = -1
        rate = float(self._rates[slot])
        route = self._routes[slot]
        assert route is not None
        self._live_nnz -= int(self._lens[slot])
        self._removed_keys.append(id(route))
        self._removed_routes.append(route)
        self._churn_units += 1
        if self.occupancy is not None:
            self.occupancy[route] -= 1
        if self._csr_ok:
            s = int(self._starts[slot])
            e = s + int(self._lens[slot])
            self._csr_flows[self._pos_in_csr[s:e]] = -1
            self._csr_dead += e - s
            self._counts_base[route] -= 1.0
        last = self._m - 1
        if slot != last:
            self._flow_ids[slot] = self._flow_ids[last]
            self._rates[slot] = self._rates[last]
            self._weights[slot] = self._weights[last]
            self._starts[slot] = self._starts[last]
            self._lens[slot] = self._lens[last]
            self._route_key[slot] = self._route_key[last]
            self._routes[slot] = self._routes[last]
            self._slot_arr[int(self._flow_ids[slot])] = slot
        self._flow_ids[last] = -1
        self._routes[last] = None
        self._m = last
        return rate

    def remove_many(self, fids: np.ndarray) -> None:
        """Retire a batch of flows in one vectorised pass.

        Equivalent to calling :meth:`remove` per flow (return values
        aside); the freed low slots are refilled with the surviving tail
        slots so the set stays dense, with O(moved slots) Python work
        instead of O(flows).
        """
        k = fids.shape[0]
        if k == 0:
            return
        if k == 1:
            self.remove(int(fids[0]))
            return
        fids = np.asarray(fids, dtype=np.int64)
        if fids.min() < 0 or int(fids.max()) >= self._slot_arr.shape[0]:
            raise SimulationError("batch removal names an inactive flow")
        slots = self._slot_arr[fids]
        if (slots < 0).any() or np.unique(slots).shape[0] != k:
            raise SimulationError("batch removal names an inactive flow")

        routes = self._routes
        self._removed_keys.extend(self._route_key[slots].tolist())
        # key-aligned route references: they pin the removed arrays until
        # the next allocation and feed the relevel path's dirty-link set
        self._removed_routes.extend([routes[s] for s in slots.tolist()])

        self._churn_units += k
        if self.occupancy is not None:
            gone = self._entries[_slices_concat(
                self._starts[slots], self._starts[slots] + self._lens[slots])]
            np.subtract.at(self.occupancy, gone, 1)
        if self._csr_ok:
            if k > max(_PATCH_MAX, self._m >> 3):
                self._csr_ok = False
            else:
                idxp = _slices_concat(self._starts[slots],
                                      self._starts[slots] + self._lens[slots])
                self._csr_flows[self._pos_in_csr[idxp]] = -1
                self._csr_dead += idxp.shape[0]
                np.subtract.at(self._counts_base, self._entries[idxp], 1.0)

        self._live_nnz -= int(self._lens[slots].sum())
        m = self._m
        new_m = m - k
        removed = self._slot_flag  # borrowed scratch, reset below
        removed[slots] = True
        low = slots[slots < new_m]
        if low.shape[0]:
            src = new_m + np.flatnonzero(~removed[new_m:m])
            for name in ("_flow_ids", "_rates", "_weights", "_starts",
                         "_lens", "_route_key"):
                arr = getattr(self, name)
                arr[low] = arr[src]
            for i, j in zip(low.tolist(), src.tolist()):
                routes[i] = routes[j]
            self._slot_arr[self._flow_ids[low]] = low
        removed[slots] = False
        self._slot_arr[fids] = -1
        self._flow_ids[new_m:m] = -1
        self._routes[new_m:m] = [None] * k
        self._m = new_m

    def _csr_patch_add(self, fid: int, route: np.ndarray, start: int,
                       length: int) -> None:
        """Append one admitted flow into its links' CSR slack regions.

        Falls back to a rebuild (``_csr_ok = False``) when any region is
        full.  Routes are simple paths (no repeated link), which the
        per-link append relies on.
        """
        cl = self._csr_len[route]
        if (cl >= self._csr_cap[route]).any():
            self._csr_ok = False
            return
        q = self._csr_start[route] + cl
        self._csr_flows[q] = fid
        self._pos_in_csr[start:start + length] = q
        self._csr_len[route] = cl + 1
        self._counts_base[route] += 1.0

    def _net_removed_routes(self) -> list[np.ndarray] | None:
        """The distinct routes removed more often than added since the
        last allocation, or ``None`` when any route was *net added*.

        ``[]`` therefore means the added and removed keys form the same
        multiset (the plain warm path's eligibility); a non-empty list is
        the relevel path's input — the only routes whose links' occupancy
        shrank.  Multiplicity beyond one does not matter downstream (only
        the union of dirty links is used), so distinct routes suffice.
        """
        added = self._added_keys
        removed = self._removed_keys
        if len(added) > len(removed):
            return None
        if not removed:
            return []
        ra, rc = np.unique(np.asarray(removed, dtype=np.int64),
                           return_counts=True)
        if added:
            aa, ac = np.unique(np.asarray(added, dtype=np.int64),
                               return_counts=True)
            pos = np.searchsorted(ra, aa)
            if bool((pos >= ra.shape[0]).any()) \
                    or not bool((ra[pos] == aa).all()) \
                    or bool((ac > rc[pos]).any()):
                return None
            rc = rc.copy()
            rc[pos] -= ac
        net_keys = ra[rc > 0]
        if net_keys.shape[0] == 0:
            return []
        by_key = dict(zip(self._removed_keys, self._removed_routes))
        return [by_key[key] for key in net_keys.tolist()]

    def _clear_churn(self) -> None:
        self._added_keys.clear()
        self._removed_keys.clear()
        self._removed_routes.clear()
        self._pending_new.clear()

    def _ensure_slot_arr(self, fid: int) -> None:
        if fid < 0:
            raise SimulationError(f"flow ids must be non-negative, got {fid}")
        if fid >= self._slot_arr.shape[0]:
            size = self._slot_arr.shape[0]
            while size <= fid:
                size *= 2
            grown = np.full(size, -1, dtype=np.int64)
            grown[:self._slot_arr.shape[0]] = self._slot_arr
            self._slot_arr = grown

    # ------------------------------------------------------------ allocation
    def allocate(self, stats: dict | None = None) -> np.ndarray:
        """Assign exact max-min rates to every active flow.

        Takes the O(changed) warm path when the route multiset is
        unchanged, the suffix-resumed relevel when it shrank (see module
        docstring), and the CSR-backed full pass otherwise.  ``stats``,
        when a dict, receives ``iterations`` (0 on the warm path),
        ``warm`` and ``relevel``.  Returns the dense rates view.
        """
        if self._m == 0:
            self._clear_churn()
            if stats is not None:
                stats["iterations"] = 0
                stats["warm"] = False
            return self._rates[:0]
        if self._have_levels and not self._weighted:
            net = self._net_removed_routes()
            if net is not None:
                if not net:
                    if self._warm_fill():
                        self.warm_fills += 1
                        self._churn_units = 0
                        self._clear_churn()
                        if stats is not None:
                            stats["iterations"] = 0
                            stats["warm"] = True
                        return self._rates[:self._m]
                elif self._relevel_enabled:
                    iterations = self._relevel_fill(net)
                    if iterations >= 0:
                        self.relevel_fills += 1
                        self._churn_units = 0
                        self._clear_churn()
                        if stats is not None:
                            stats["iterations"] = iterations
                            stats["warm"] = True
                            stats["relevel"] = True
                        return self._rates[:self._m]
        iterations = self._full_pass()
        self.full_passes += 1
        self._clear_churn()
        if stats is not None:
            stats["iterations"] = iterations
            stats["warm"] = False
        return self._rates[:self._m]

    def _warm_fill(self) -> bool:
        """Rate the flows added since the last allocation from the
        recorded water levels; ``False`` falls back to a full pass.

        The segmented minimum runs through the selected fill-kernel
        backend (:mod:`repro.engine.kernels`); both backends read the
        pooled route copies, which hold the same link ids as the interned
        route arrays."""
        if not self._pending_new:
            return True
        pending = np.asarray(self._pending_new, dtype=np.int64)
        return bool(self.kernels.warm_fill(
            self._levels, self._entries, self._starts, self._lens,
            self._slot_arr, pending, self._rates))

    def _relevel_fill(self, net_routes: list[np.ndarray]) -> int:
        """Resume the recorded fill above the churn's water threshold.

        ``net_routes`` are the net-removed routes (see
        :meth:`_net_removed_routes`; non-empty).  Returns the suffix
        iteration count on success, ``-1`` to fall back to a full pass.
        On success, rates, levels and the recorded sequences are exactly
        what a full pass would have produced, so relevels compose across
        consecutive events.
        """
        if not (self._csr_ok and self._seq_ok and self._caps_all_positive):
            return -1
        k_seq = self._level_seq.shape[0]
        if k_seq == 0:
            return -1
        m = self._m
        dirty = net_routes[0] if len(net_routes) == 1 \
            else np.concatenate(net_routes)
        # every removed flow was rated, so its bottleneck link holds a
        # finite recorded level: tmin is finite and positive
        tmin = float(self._levels[dirty].min())
        if not 0.0 < tmin < np.inf:
            return -1
        k = int(np.searchsorted(self._level_seq, tmin, side="left"))
        if k == 0:
            # the threshold undercuts the first recorded level: the whole
            # fill would replay, and a full pass is strictly cheaper
            return -1

        # rate the pending admissions from the recorded levels: each was
        # matched by a removal with the identical route, so the minimum
        # recorded level along it is the retired twin's exact rate
        # (+inf = bottlenecked only above the threshold; resolved below)
        if self._pending_new:
            slots = self._slot_arr[
                np.asarray(self._pending_new, dtype=np.int64)]
            slots = slots[slots >= 0]
            if slots.shape[0]:
                seg_starts = self._starts[slots]
                seg_lens = self._lens[slots]
                vals = self._levels[self._entries[_slices_concat(
                    seg_starts, seg_starts + seg_lens)]]
                offsets = np.zeros(slots.shape[0], dtype=np.int64)
                np.cumsum(seg_lens[:-1], out=offsets[1:])
                mins = np.minimum.reduceat(vals, offsets)
                if bool((mins <= 0.0).any()):
                    return -1
                self._rates[slots] = mins

        # flows rated at or above the threshold are re-levelled; all
        # others froze strictly below it and keep their (final) rates
        participants = np.flatnonzero(self._rates[:m] >= tmin)
        npart = int(participants.shape[0])
        if npart:
            pstarts = self._starts[participants]
            plens = self._lens[participants]
            plinks = self._entries[_slices_concat(pstarts,
                                                  pstarts + plens)]
            suffix = np.unique(np.concatenate((plinks, dirty)))
        else:
            plinks = None
            suffix = np.unique(dirty)
        # cost guard: the replay walks every suffix CSR row plus k
        # iterations per suffix link — past the live incidence size a
        # full pass is the cheaper option
        if int(self._csr_len[suffix].sum()) + k * suffix.shape[0] \
                > self._live_nnz:
            return -1

        counts = self._counts
        counts[suffix] = 0.0
        if plinks is not None:
            np.add.at(counts, plinks, 1.0)
        act = suffix[counts[suffix] > 0.0]
        # every level written below must be covered by the next full
        # pass's inf-reset, including links saturating for the first time
        newly = suffix[~self._level_mask[suffix]]
        if newly.shape[0]:
            self._level_links = np.concatenate((self._level_links, newly))
            self._level_mask[newly] = True
        self._levels[suffix] = np.inf
        level0 = float(self._level_seq[k - 1])
        if self._level_buf.shape[0] < act.shape[0]:
            self._level_buf = np.empty(act.shape[0], dtype=np.int64)
        seq_d = np.empty(act.shape[0] + 1, dtype=np.float64)
        seq_l = np.empty(act.shape[0] + 1, dtype=np.float64)
        frozen = self._slot_flag  # borrowed scratch, reset on exit
        try:
            status, iterations, _ = self.kernels.relevel_fill(
                self.capacities, self._sat_floor, self._cap_rem, counts,
                self._levels, self._csr_start, self._csr_len,
                self._csr_flows, self._entries, self._starts, self._lens,
                self._slot_arr, self._rates, frozen, act,
                self._delta_seq, self._level_seq, k, level0, tmin, npart,
                self._level_buf, seq_d, seq_l)
        finally:
            frozen[:m] = False
        if status != 0:
            # partially written rates/levels are fine: the full pass this
            # falls back to rewrites every rate and resets every level in
            # _level_links, which covers the whole suffix
            return -1
        self._delta_seq = np.concatenate(
            (self._delta_seq[:k], seq_d[:iterations]))
        self._level_seq = np.concatenate(
            (self._level_seq[:k], seq_l[:iterations]))
        self._seq_ok = bool((np.diff(self._level_seq) > 0.0).all())
        return iterations

    def _csr_rebuild(self, weights: np.ndarray | None,
                     slack: bool) -> None:
        """Rebuild the persistent link→flows CSR from the pool.

        Vectorised (one stable ``argsort`` over the live entries); also
        recomputes the per-link occupancy into ``self._counts``.  With
        ``slack`` each link's flows get headroom and the pool→CSR
        back-map is built, so later small membership batches patch the
        structure in place; without it (bulk churn, or a weighted set,
        whose occupancy depends on the weights) the CSR is packed tight
        and valid for this pass only.
        """
        m = self._m
        counts = self._counts
        num_links = counts.shape[0]
        idx = _slices_concat(self._starts[:m],
                             self._starts[:m] + self._lens[:m])
        work_e = self._entries[idx]
        work_o = np.repeat(np.arange(m, dtype=np.int64), self._lens[:m])
        if self._tail - self._live_nnz > max(_COMPACT_SLACK, self._live_nnz):
            self._compact(work_e)
            idx = np.arange(work_e.shape[0], dtype=np.int64)

        link_nnz = np.bincount(work_e, minlength=num_links).astype(np.int64)
        if weights is None:
            np.copyto(counts, link_nnz)
        else:
            np.copyto(counts, np.bincount(work_e, weights=weights[work_o],
                                          minlength=num_links))
        order = np.argsort(work_e, kind="stable")
        fids_sorted = self._flow_ids[:m][work_o[order]]
        if slack and weights is None:
            cap = link_nnz + (link_nnz >> 1) + 4
            self._csr_start[0] = 0
            np.cumsum(cap[:-1], out=self._csr_start[1:])
            total = int(self._csr_start[-1] + cap[-1])
            if self._csr_flows.shape[0] < total:
                self._csr_flows = np.empty(
                    max(total, 2 * self._csr_flows.shape[0]), dtype=np.int64)
            sorted_e = work_e[order]
            first = np.zeros(num_links, dtype=np.int64)
            np.cumsum(link_nnz[:-1], out=first[1:])
            q = self._csr_start[sorted_e] + \
                (np.arange(sorted_e.shape[0], dtype=np.int64)
                 - first[sorted_e])
            self._csr_flows[q] = fids_sorted
            self._pos_in_csr[idx[order]] = q
            np.copyto(self._csr_cap, cap)
            np.copyto(self._counts_base, counts)
            self._csr_ok = True
        else:
            nnz = work_e.shape[0]
            if self._csr_flows.shape[0] < nnz:
                self._csr_flows = np.empty(
                    max(nnz, 2 * self._csr_flows.shape[0]), dtype=np.int64)
            self._csr_flows[:nnz] = fids_sorted
            self._csr_start[0] = 0
            np.cumsum(link_nnz[:-1], out=self._csr_start[1:])
            self._csr_ok = False
        np.copyto(self._csr_len, link_nnz)
        self._csr_dead = 0

    def _full_pass(self) -> int:
        """Progressive filling over the live incidence.

        Mirrors the reference :func:`repro.engine.maxmin.allocate`
        arithmetic per link, so rates agree with a from-scratch reference
        run on the same flows.  The persistent link→flows CSR lets each
        saturated link freeze exactly its own flows, so total freeze work
        is amortised O(total route length) per pass — the water-level
        iteration count does not multiply it — and when the CSR survived
        the event's membership patches, the pass skips the O(nnz)
        gather/sort/occupancy setup entirely.

        The water-level loop itself runs through the selected fill-kernel
        backend (:mod:`repro.engine.kernels`): the pure-NumPy reference,
        or its numba-compiled mirror when the ``[fast]`` extra is
        installed — both bitwise-identical by construction and by the
        ``kernel_diff`` test suite.
        """
        m = self._m
        counts = self._counts
        weights = self._weights[:m] if self._weighted else None

        if self._csr_ok and self._csr_dead * 4 <= self._live_nnz:
            np.copyto(counts, self._counts_base)
        else:
            self._csr_rebuild(
                weights,
                slack=self._churn_units <= max(_PATCH_MAX, m >> 3))
        self._churn_units = 0

        act = np.flatnonzero(counts > 0)
        if not self._caps_all_positive and \
                bool((self.capacities[act] <= 0).any()):
            raise SimulationError("active flow crosses a zero-capacity link")
        self._cap_rem[act] = self.capacities[act]
        self._levels[self._level_links] = np.inf
        if self._level_buf.shape[0] < act.shape[0]:
            self._level_buf = np.empty(act.shape[0], dtype=np.int64)
        if self._seq_buf_d.shape[0] < act.shape[0] + 1:
            self._seq_buf_d = np.empty(act.shape[0] + 1, dtype=np.float64)
            self._seq_buf_l = np.empty(act.shape[0] + 1, dtype=np.float64)

        frozen = self._slot_flag  # borrowed scratch, reset on exit
        try:
            status, iterations, nsat = self.kernels.full_fill(
                self.capacities, self._sat_floor, self._cap_rem, counts,
                self._levels, self._csr_start, self._csr_len,
                self._csr_flows, self._entries, self._starts, self._lens,
                self._slot_arr, self._rates, frozen, self._weights,
                self._weighted, m, act, self._level_buf,
                self._seq_buf_d, self._seq_buf_l)
        finally:
            frozen[:m] = False

        if status == 1:
            raise SimulationError("allocation left flows without a bottleneck")
        if status == 2:  # pragma: no cover - progressive filling terminates
            raise SimulationError("progressive filling failed to converge")
        self._level_mask[self._level_links] = False
        self._level_links = self._level_buf[:nsat].copy()
        self._level_mask[self._level_links] = True
        self._have_levels = not self._weighted
        if self._weighted:
            self._seq_ok = False
        else:
            self._delta_seq = self._seq_buf_d[:iterations].copy()
            self._level_seq = self._seq_buf_l[:iterations].copy()
            self._seq_ok = bool(
                (np.diff(self._level_seq) > 0.0).all())
        return iterations

    # --------------------------------------------------- rebuild baseline
    def gather_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The rebuild-per-event CSR of the reference engine.

        Deliberately reproduces the historical per-event cost (a Python
        list of routes concatenated from scratch) so benchmarks can
        compare the incremental path against the true baseline.
        """
        route_list = self.route_list()
        if not route_list:
            return (np.empty(0, dtype=np.int64),
                    np.zeros(1, dtype=np.int64))
        entries = np.concatenate(route_list)
        ptr = np.zeros(len(route_list) + 1, dtype=np.int64)
        np.cumsum([r.shape[0] for r in route_list], out=ptr[1:])
        return entries, ptr

    def set_rates(self, rates: np.ndarray) -> None:
        """Install externally computed rates (slot order)."""
        if rates.shape[0] != self._m:
            raise SimulationError(
                f"rates vector has {rates.shape[0]} entries for "
                f"{self._m} active flows")
        self._rates[:self._m] = rates
        # external rates invalidate the recorded water levels
        self._have_levels = False
        self._seq_ok = False

    # ------------------------------------------------------------- plumbing
    def _grow_slots(self) -> None:
        new = max(_MIN_SLOTS, 2 * self._flow_ids.shape[0])
        for name in ("_flow_ids", "_rates", "_weights", "_starts", "_lens",
                     "_route_key", "_slot_flag"):
            old = getattr(self, name)
            arr = np.zeros(new, dtype=old.dtype)
            arr[:old.shape[0]] = old
            setattr(self, name, arr)
        self._flow_ids[self._m:] = -1
        self._routes.extend([None] * (new - len(self._routes)))

    def _make_room(self, extra: int) -> None:
        """Compact the entries pool and/or grow it to fit ``extra``."""
        if self._tail - self._live_nnz > 0:
            m = self._m
            idx = _slices_concat(self._starts[:m],
                                 self._starts[:m] + self._lens[:m])
            self._compact(self._entries[idx])
        needed = self._tail + extra
        if needed > self._entries.shape[0]:
            size = max(_MIN_ENTRIES, self._entries.shape[0])
            while size < needed:
                size *= 2
            pool = np.empty(size, dtype=np.int64)
            pool[:self._tail] = self._entries[:self._tail]
            self._entries = pool
            # pool indices are preserved by growth, so the CSR back-map
            # stays valid — carry it over to the new capacity
            pos = np.empty(size, dtype=np.int64)
            pos[:self._tail] = self._pos_in_csr[:self._tail]
            self._pos_in_csr = pos

    def _compact(self, live_entries: np.ndarray) -> None:
        """Rewrite the pool as the given gathered live entries."""
        self._csr_ok = False  # pool indices move; the CSR back-map is stale
        m = self._m
        lens = self._lens[:m]
        self._entries[:live_entries.shape[0]] = live_entries
        starts = np.zeros(m, dtype=np.int64)
        if m > 1:
            np.cumsum(lens[:-1], out=starts[1:])
        self._starts[:m] = starts
        self._tail = int(live_entries.shape[0])
