"""Command-line interface: regenerate every table and figure of the paper.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro table1 --endpoints 131072        # paper-scale static analysis
    repro table2 --endpoints 131072
    repro fig4 --endpoints 4096 --out fig4.csv --jobs 4 --checkpoint f4.jsonl
    repro fig5 --endpoints 4096 --jobs 4 --checkpoint f5.jsonl --resume
    repro run --topology nesttree --t 2 --u 4 --workload allreduce
    repro profile allreduce nesttree --t 2 --u 4   # tier/timing tables
    repro resilience --endpoints 4096 --workload allreduce \
        --fail-links 0 4 16 64 --jobs 4   # makespan vs failed cables
    repro campaign --endpoints 512 --workload allreduce --seeds 0:16 \
        --cables 8 --jobs 4 --report campaign.json   # availability MC
    repro optimize --endpoints 512 --budget 40 --seed 7 \
        --report front.json               # search the design space
    repro serve --store results/ --endpoints 512 --port 8641
    repro submit --port 8641 --workload allreduce \
        --topology nesttree --t 2 --u 4   # ask the running service
    repro info

The sweep commands accept ``--metrics PATH`` to stream one observability
record per cell to a JSONL file (see ``docs/observability.md``).

Dynamic experiments (fig4/fig5/run) default to a scaled-down system; the
static analyses (table1/table2) run at any scale including the paper's
131,072 endpoints.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (DEFAULT_ENDPOINTS, DesignSpaceExplorer, claims_report,
                        figure, table1, table2)
from repro.core.config import DEFAULT_QUADRATIC_TASKS
from repro.core.paperdata import PAPER_ENDPOINTS
from repro.routing import ROUTING_POLICIES


def _add_common(p: argparse.ArgumentParser, *, endpoints: int) -> None:
    p.add_argument("--endpoints", type=int, default=endpoints,
                   help=f"system size in QFDBs (default {endpoints})")
    p.add_argument("--seed", type=int, default=0, help="random seed")


def _add_sweep(p: argparse.ArgumentParser) -> None:
    _add_common(p, endpoints=DEFAULT_ENDPOINTS)
    p.add_argument("--fidelity", choices=("exact", "approx"),
                   default="approx", help="engine fidelity (default approx)")
    p.add_argument("--quadratic-tasks", type=int,
                   default=DEFAULT_QUADRATIC_TASKS,
                   help="task cap for MapReduce/n-Bodies")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="subset of workloads to run")
    p.add_argument("--out", default=None, help="also write raw CSV here")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep (default 1: serial)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append per-cell results to this JSONL file as the "
                        "sweep runs")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already present in --checkpoint")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress logging")
    p.add_argument("--keep-going", action="store_true",
                   help="record per-cell failures as typed error entries in "
                        "the checkpoint instead of aborting the sweep")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock cap per sweep cell (parallel workers "
                        "stuck past it are killed and the cell marked "
                        "failed)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="instrument every cell and stream one "
                        "schema-versioned metrics record per cell to this "
                        "JSONL file (tier link accounting, allocator stats, "
                        "timers; see docs/observability.md)")
    _add_routing(p)


def _add_routing(p: argparse.ArgumentParser) -> None:
    p.add_argument("--routing", choices=ROUTING_POLICIES,
                   default="deterministic",
                   help="candidate-selection routing policy applied to "
                        "every simulation (default deterministic; see "
                        "docs/routing.md)")


def _add_cost_model(p: argparse.ArgumentParser) -> None:
    """Cost-model overrides (Table 2 / optimize objectives)."""
    p.add_argument("--switch-cost", type=float, default=None, metavar="QFDB",
                   help="cost of one upper-tier switch in QFDB units "
                        "(default: the paper-calibrated 0.75)")
    p.add_argument("--switch-power", type=float, default=None, metavar="QFDB",
                   help="power of one upper-tier switch in QFDB units "
                        "(default: the paper-calibrated 0.25)")


def _cost_model(args: argparse.Namespace):
    """The (possibly overridden) CostModel for a command; None = defaults."""
    from repro.topology.cost import CostModel

    if args.switch_cost is None and args.switch_power is None:
        return None
    defaults = CostModel()
    return CostModel(
        switch_cost=defaults.switch_cost if args.switch_cost is None
        else args.switch_cost,
        switch_power=defaults.switch_power if args.switch_power is None
        else args.switch_power)


def _add_faults(p: argparse.ArgumentParser, *, many_links: bool) -> None:
    """Fault-injection arguments shared by fig4/fig5 and resilience."""
    if many_links:
        p.add_argument("--fail-links", type=int, nargs="+", default=[0],
                       metavar="N",
                       help="failed duplex cable counts to sweep "
                            "(default: 0, the healthy network)")
    else:
        p.add_argument("--fail-links", type=int, default=0, metavar="N",
                       help="failed duplex cables to inject (default 0)")
    p.add_argument("--fail-uplinks", type=int, default=0, metavar="N",
                   help="dead hybrid uplink ports to inject; applies to "
                        "the nesttree/nestghc cells only (default 0)")
    p.add_argument("--fail-seed", type=int, default=0,
                   help="seed for reproducible fault sampling (default 0)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-tier interconnect design exploration "
                    "(ICPP 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="average distance / diameter table")
    _add_common(p1, endpoints=PAPER_ENDPOINTS)
    p1.add_argument("--max-pairs", type=int, default=50_000,
                    help="sampled pairs per topology (exact if that covers "
                         "the whole pair space)")

    p2 = sub.add_parser("table2", help="switch count / cost / power table")
    _add_common(p2, endpoints=PAPER_ENDPOINTS)
    _add_cost_model(p2)

    p4 = sub.add_parser("fig4", help="heavy-workload normalised times")
    _add_sweep(p4)
    _add_faults(p4, many_links=False)
    p5 = sub.add_parser("fig5", help="light-workload normalised times")
    _add_sweep(p5)
    _add_faults(p5, many_links=False)

    ps = sub.add_parser(
        "resilience",
        help="makespan vs injected faults per topology family")
    _add_sweep(ps)
    _add_faults(ps, many_links=True)
    ps.add_argument("--workload", required=True,
                    help="workload to replay at each fault level")
    ps.add_argument("--topologies", nargs="*", default=None,
                    metavar="FAMILY",
                    help="subset of topology families to sweep "
                         "(default: the full design space)")
    ps.add_argument("--seeds", default=None, metavar="A:B",
                    help="fault-seed range ('A:B' half-open, or a single "
                         "integer): each degraded cell is resampled per "
                         "seed and the table reports mean makespans "
                         "(default: --fail-seed only)")

    pc = sub.add_parser(
        "campaign",
        help="Monte-Carlo availability campaign over transient fault "
             "timelines")
    _add_common(pc, endpoints=DEFAULT_ENDPOINTS)
    pc.add_argument("--workload", required=True,
                    help="workload replayed under every fault timeline")
    pc.add_argument("--topologies", nargs="*", default=None,
                    metavar="FAMILY|LABEL",
                    help="topology families or exact labels, e.g. torus "
                         "or 'nesttree(2,4)' (default: the full design "
                         "space)")
    pc.add_argument("--seeds", default="0:8", metavar="A:B",
                    help="timeline seeds, one Monte-Carlo sample each "
                         "('A:B' half-open, or a single integer; "
                         "default 0:8)")
    pc.add_argument("--cables", type=int, default=4, metavar="N",
                    help="transient duplex-cable faults per timeline "
                         "(default 4)")
    pc.add_argument("--uplinks", type=int, default=0, metavar="N",
                    help="transient uplink-port faults per timeline, "
                         "hybrids only (default 0)")
    pc.add_argument("--horizon-frac", type=float, default=1.0,
                    metavar="FRAC",
                    help="failure-window length as a fraction of each "
                         "topology's healthy makespan (default 1.0)")
    pc.add_argument("--mttr-frac", type=float, default=0.25, metavar="FRAC",
                    help="mean time to repair as a fraction of the healthy "
                         "makespan; 0 makes faults permanent "
                         "(default 0.25)")
    pc.add_argument("--fidelity", choices=("exact", "approx"),
                    default="approx", help="engine fidelity (default approx)")
    pc.add_argument("--quadratic-tasks", type=int,
                    default=DEFAULT_QUADRATIC_TASKS,
                    help="task cap for MapReduce/n-Bodies")
    pc.add_argument("--bootstrap", type=int, default=1000, metavar="N",
                    help="bootstrap resamples behind the slowdown CIs "
                         "(default 1000)")
    pc.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default 1: serial)")
    pc.add_argument("--checkpoint", default=None, metavar="PATH",
                    help="base checkpoint path (PATH.healthy.jsonl / "
                         "PATH.mc.jsonl)")
    pc.add_argument("--resume", action="store_true",
                    help="skip cells already present in the checkpoints")
    pc.add_argument("--cell-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="wall-clock cap per simulation cell")
    pc.add_argument("--metrics", default=None, metavar="PATH",
                    help="stream one obs metrics record per Monte-Carlo "
                         "cell (includes the transient recovery counters) "
                         "to this JSONL file")
    pc.add_argument("--report", default=None, metavar="PATH",
                    help="write the schema-versioned JSON report here")
    pc.add_argument("--quiet", action="store_true",
                    help="suppress progress logging")
    _add_routing(pc)

    pr = sub.add_parser("run", help="one (topology, workload) simulation")
    _add_common(pr, endpoints=DEFAULT_ENDPOINTS)
    pr.add_argument("--topology", required=True,
                    help="family: torus, fattree, ghc, nesttree, nestghc")
    pr.add_argument("--t", type=int, default=None, help="subtorus side")
    pr.add_argument("--u", type=int, default=None, help="uplink sparsity")
    pr.add_argument("--workload", required=True)
    pr.add_argument("--tasks", type=int, default=None)
    pr.add_argument("--fidelity", choices=("exact", "approx"),
                    default="exact")
    _add_routing(pr)

    pp = sub.add_parser(
        "profile",
        help="instrumented single run: tier-utilisation and timing tables")
    pp.add_argument("workload", help="workload name (see `repro info`)")
    pp.add_argument("topology",
                    help="family: torus, fattree, ghc, nesttree, nestghc")
    _add_common(pp, endpoints=DEFAULT_ENDPOINTS)
    pp.add_argument("--t", type=int, default=None, help="subtorus side")
    pp.add_argument("--u", type=int, default=None, help="uplink sparsity")
    pp.add_argument("--tasks", type=int, default=None)
    pp.add_argument("--fidelity", choices=("exact", "approx"),
                    default="exact")
    _add_routing(pp)

    po = sub.add_parser(
        "optimize",
        help="multi-fidelity Pareto search over the hybrid design space")
    _add_common(po, endpoints=DEFAULT_ENDPOINTS)
    po.add_argument("--budget", type=int, default=40,
                    help="candidate proposals the strategy may spend "
                         "(rank-0 evaluations; default 40)")
    po.add_argument("--strategy", default="evolution",
                    help="proposal strategy: grid, random, or evolution "
                         "(default evolution)")
    po.add_argument("--workloads", nargs="*", default=None,
                    help="workload set the makespan objective averages "
                         "over (default: allreduce nearneighbors "
                         "permutation)")
    po.add_argument("--pilot-endpoints", type=int, default=None, metavar="N",
                    help="rank-1 pilot scale (default: min(endpoints, 512); "
                         "equal scales collapse the ladder to rank 0 -> 2)")
    po.add_argument("--fidelity", choices=("exact", "approx"),
                    default="approx", help="engine fidelity (default approx)")
    po.add_argument("--quadratic-tasks", type=int,
                    default=DEFAULT_QUADRATIC_TASKS,
                    help="task cap for MapReduce/n-Bodies")
    po.add_argument("--fault-levels", type=int, nargs="+", default=[0],
                    metavar="N",
                    help="failed-cable counts as an extra search axis "
                         "(default: 0, healthy designs only)")
    po.add_argument("--routings", nargs="+", default=["deterministic"],
                    choices=ROUTING_POLICIES, metavar="POLICY",
                    help="routing policies as an extra search axis "
                         f"(choose from: {', '.join(ROUTING_POLICIES)}; "
                         "default: deterministic only)")
    po.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the simulation rungs")
    po.add_argument("--checkpoint", default=None, metavar="PATH",
                    help="base path for per-rank sweep checkpoints "
                         "(PATH.rank1.jsonl / PATH.rank2.jsonl)")
    po.add_argument("--resume", action="store_true",
                    help="skip simulation cells already present in the "
                         "rank checkpoints")
    po.add_argument("--cell-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="wall-clock cap per simulation cell")
    po.add_argument("--metrics", default=None, metavar="PATH",
                    help="base path for per-evaluation obs metrics streams "
                         "(PATH.rank<N>.metrics.jsonl)")
    po.add_argument("--report", default=None, metavar="PATH",
                    help="write the schema-versioned JSON report here")
    po.add_argument("--quiet", action="store_true",
                    help="suppress progress logging")
    _add_cost_model(po)

    pv = sub.add_parser(
        "serve",
        help="long-lived simulation service with a content-addressed "
             "result cache and per-tenant fair scheduling")
    _add_common(pv, endpoints=DEFAULT_ENDPOINTS)
    pv.add_argument("--store", required=True, metavar="DIR",
                    help="content-addressed result store directory "
                         "(created if missing; shareable across service "
                         "restarts and instances)")
    pv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    pv.add_argument("--port", type=int, default=0,
                    help="TCP port (default 0: pick a free port and "
                         "print it)")
    pv.add_argument("--fidelity", choices=("exact", "approx"),
                    default="approx", help="engine fidelity (default approx)")
    pv.add_argument("--capacity", type=int, default=256,
                    help="bounded queue size; further submissions get a "
                         "typed 429 (default 256)")
    pv.add_argument("--weight", action="append", default=[],
                    metavar="TENANT=W",
                    help="fair-share weight for one tenant (repeatable; "
                         "unlisted tenants weigh 1)")
    pv.add_argument("--jobs", type=int, default=1,
                    help="worker processes per simulation batch "
                         "(default 1: serial)")
    pv.add_argument("--cell-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="wall-clock cap per simulation cell")
    pv.add_argument("--metrics", default=None, metavar="PATH",
                    help="append one obs metrics record per simulated "
                         "cell to this JSONL file (the stream accumulates "
                         "across batches)")
    pv.add_argument("--batch-max", type=int, default=32,
                    help="cells drained into one simulation batch "
                         "(default 32)")
    pv.add_argument("--route-cache", choices=("auto", "dict", "sharded"),
                    default=None,
                    help="route-cache mode for the simulation workers "
                         "(default: the REPRO_ROUTE_CACHE environment)")
    pv.add_argument("--route-cache-resident", type=int, default=None,
                    metavar="N",
                    help="pool-wide resident route-cache shard budget, "
                         "split across --jobs workers (0 = unbounded)")
    pv.add_argument("--route-cache-dir", default=None, metavar="DIR",
                    help="spill directory for sharded route caches")

    pb = sub.add_parser(
        "submit",
        help="submit cells to a running `repro serve` instance")
    pb.add_argument("--host", default="127.0.0.1",
                    help="service address (default 127.0.0.1)")
    pb.add_argument("--port", type=int, required=True,
                    help="service port (printed by `repro serve`)")
    pb.add_argument("--tenant", default="default",
                    help="fair-share tenant name (default 'default')")
    pb.add_argument("--no-wait", action="store_true",
                    help="return digests immediately instead of waiting "
                         "for results")
    pb.add_argument("--cells-json", default=None, metavar="PATH",
                    help="JSON file with a list of cell documents to "
                         "submit (see docs/service.md); overrides the "
                         "single-cell flags below")
    pb.add_argument("--workload", default=None)
    pb.add_argument("--tasks", type=int, default=None)
    pb.add_argument("--topology", default=None,
                    help="family: torus, fattree, ghc, nesttree, nestghc")
    pb.add_argument("--t", type=int, default=None, help="subtorus side")
    pb.add_argument("--u", type=int, default=None, help="uplink sparsity")
    pb.add_argument("--placement", default="spread",
                    help="task placement policy (default spread)")
    _add_faults(pb, many_links=False)
    pb.add_argument("--timeout", type=float, default=300.0,
                    metavar="SECONDS",
                    help="client-side HTTP timeout (default 300)")
    _add_routing(pb)

    sub.add_parser("info", help="library inventory")

    args = parser.parse_args(argv)
    _validate(parser, args)
    if args.command == "table1":
        print(table1(args.endpoints, max_pairs=args.max_pairs, seed=args.seed))
    elif args.command == "table2":
        print(table2(args.endpoints, model=_cost_model(args)))
    elif args.command in ("fig4", "fig5"):
        _run_figure(args, heavy=args.command == "fig4")
    elif args.command == "resilience":
        _run_resilience(args)
    elif args.command == "campaign":
        _run_campaign(args)
    elif args.command == "optimize":
        _run_optimize(args)
    elif args.command == "run":
        _run_single(args)
    elif args.command == "profile":
        _run_profile(args)
    elif args.command == "serve":
        _run_serve(args)
    elif args.command == "submit":
        return _run_submit(args)
    elif args.command == "info":
        _info()
    return 0


def _validate(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> None:
    """Reject bad inputs up front (exit status 2, like argparse itself).

    Without this, an unknown workload surfaces as a ``KeyError`` deep in
    the registry and an untileable endpoint count as a topology-construction
    traceback after minutes of sweep warm-up.
    """
    from repro.workloads import available

    if getattr(args, "endpoints", 1) < 1:
        parser.error(f"--endpoints must be positive, got {args.endpoints}")
    if args.command in ("fig4", "fig5", "resilience"):
        if args.endpoints % 8:
            parser.error(
                f"--endpoints must be a multiple of 8 so the sweep's "
                f"2x2x2 subtori tile the system, got {args.endpoints}")
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        if args.resume and not args.checkpoint:
            parser.error("--resume requires --checkpoint PATH")
        for name in getattr(args, "workloads", None) or ():
            if name not in available():
                parser.error(f"unknown workload {name!r}; "
                             f"choose from: {', '.join(available())}")
        _validate_faults(parser, args)
    if args.command == "resilience":
        from repro.topology import available as topo_available

        if args.workload not in available():
            parser.error(f"unknown workload {args.workload!r}; "
                         f"choose from: {', '.join(available())}")
        for family in args.topologies or ():
            if family not in topo_available():
                parser.error(
                    f"unknown topology family {family!r}; "
                    f"choose from: {', '.join(topo_available())}")
        _parse_seeds_arg(parser, args.seeds)
    if args.command == "campaign":
        _validate_campaign(parser, args)
    if args.command == "run" and args.workload not in available():
        parser.error(f"unknown workload {args.workload!r}; "
                     f"choose from: {', '.join(available())}")
    if args.command == "profile":
        from repro.topology import available as topo_available

        if args.workload not in available():
            parser.error(f"unknown workload {args.workload!r}; "
                         f"choose from: {', '.join(available())}")
        if args.topology not in topo_available():
            parser.error(f"unknown topology family {args.topology!r}; "
                         f"choose from: {', '.join(topo_available())}")
    if args.command in ("run", "profile"):
        _validate_hybrid(parser, args)
    if args.command in ("table2", "optimize"):
        for flag, value in (("--switch-cost", args.switch_cost),
                            ("--switch-power", args.switch_power)):
            if value is not None and value < 0:
                parser.error(f"{flag} must be non-negative, got {value}")
    if args.command == "optimize":
        _validate_optimize(parser, args)
    if args.command == "serve":
        _validate_serve(parser, args)
    if args.command == "submit":
        _validate_submit(parser, args)


def _validate_hybrid(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> None:
    """Hybrid ``(t, u)`` guard for run/profile: exit 2 with the ranges.

    Without this a bad density or side only explodes deep inside topology
    construction; the typed ConfigError from core.config lists the valid
    parameter ranges instead.
    """
    from repro.core.config import HYBRID_FAMILIES, validate_hybrid_params
    from repro.errors import ConfigError

    if args.topology not in HYBRID_FAMILIES:
        return
    if args.t is None or args.u is None:
        parser.error(f"{args.topology} needs both --t (subtorus side) and "
                     f"--u (uplink density)")
    try:
        validate_hybrid_params(args.topology, args.t, args.u,
                               endpoints=args.endpoints)
    except ConfigError as exc:
        parser.error(str(exc))


def _validate_optimize(parser: argparse.ArgumentParser,
                       args: argparse.Namespace) -> None:
    """Range-check the optimize flags (exit 2, valid choices listed)."""
    from repro.search import available_strategies
    from repro.workloads import available

    if args.budget < 1:
        parser.error(f"--budget must be >= 1, got {args.budget}")
    if args.strategy not in available_strategies():
        parser.error(f"unknown search strategy {args.strategy!r}; "
                     f"choose from: {', '.join(available_strategies())}")
    for name in args.workloads or ():
        if name not in available():
            parser.error(f"unknown workload {name!r}; "
                         f"choose from: {', '.join(available())}")
    if args.pilot_endpoints is not None:
        if args.pilot_endpoints < 8:
            parser.error(f"--pilot-endpoints must be >= 8, "
                         f"got {args.pilot_endpoints}")
        if args.pilot_endpoints > args.endpoints:
            parser.error(f"--pilot-endpoints ({args.pilot_endpoints}) must "
                         f"not exceed --endpoints ({args.endpoints})")
    for level in args.fault_levels:
        if level < 0:
            parser.error(f"--fault-levels counts must be >= 0, got {level}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint PATH")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(f"--cell-timeout must be a positive number of "
                     f"seconds, got {args.cell_timeout}")


def _parse_weights(parser: argparse.ArgumentParser,
                   specs: list[str]) -> dict[str, int]:
    """Expand repeated ``--weight TENANT=W`` flags, exiting 2 on bad ones."""
    weights: dict[str, int] = {}
    for spec in specs:
        tenant, sep, value = spec.partition("=")
        if not sep or not tenant:
            parser.error(f"--weight must be TENANT=W, got {spec!r}")
        try:
            weight = int(value)
        except ValueError:
            parser.error(f"--weight {tenant}: weight must be an integer, "
                         f"got {value!r}")
        if weight < 1:
            parser.error(f"--weight {tenant}: weight must be >= 1, "
                         f"got {weight}")
        weights[tenant] = weight
    return weights


def _validate_serve(parser: argparse.ArgumentParser,
                    args: argparse.Namespace) -> None:
    """Range-check the serve flags (exit 2, like the other subcommands)."""
    if args.endpoints < 2:
        parser.error(f"--endpoints must be >= 2, got {args.endpoints}")
    if not 0 <= args.port <= 65535:
        parser.error(f"--port must be 0..65535, got {args.port}")
    if args.capacity < 1:
        parser.error(f"--capacity must be >= 1, got {args.capacity}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.batch_max < 1:
        parser.error(f"--batch-max must be >= 1, got {args.batch_max}")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(f"--cell-timeout must be a positive number of "
                     f"seconds, got {args.cell_timeout}")
    if args.route_cache_resident is not None \
            and args.route_cache_resident < 0:
        parser.error(f"--route-cache-resident must be >= 0 "
                     f"(0 = unbounded), got {args.route_cache_resident}")
    _parse_weights(parser, args.weight)


def _validate_submit(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> None:
    """Client-side request validation: a bad cell dies here (exit 2)
    instead of as a 400 from the service."""
    from repro.errors import ProtocolError
    from repro.service.protocol import submission_from_json

    if not 1 <= args.port <= 65535:
        parser.error(f"--port must be 1..65535, got {args.port}")
    if args.timeout <= 0:
        parser.error(f"--timeout must be positive, got {args.timeout}")
    if args.cells_json is None and not (args.workload and args.topology):
        parser.error("submit needs --cells-json PATH, or --workload and "
                     "--topology for a single cell")
    try:
        submission_from_json({"tenant": args.tenant,
                              "cells": _submit_cells(parser, args)})
    except ProtocolError as exc:
        parser.error(str(exc))


def _submit_cells(parser: argparse.ArgumentParser,
                  args: argparse.Namespace) -> list[dict]:
    """The cell documents a submit invocation sends."""
    import json

    if args.cells_json is not None:
        try:
            with open(args.cells_json) as fh:
                cells = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"--cells-json {args.cells_json}: {exc}")
        if not isinstance(cells, list):
            parser.error(f"--cells-json {args.cells_json}: must hold a "
                         f"JSON list of cell documents")
        return cells
    params = {}
    if args.t is not None:
        params["t"] = args.t
    if args.u is not None:
        params["u"] = args.u
    faults = None
    if args.fail_links or args.fail_uplinks:
        faults = {"cables": args.fail_links, "uplinks": args.fail_uplinks,
                  "seed": args.fail_seed}
    return [{"workload": args.workload, "tasks": args.tasks,
             "topology": {"family": args.topology, "params": params},
             "placement": args.placement, "faults": faults,
             "routing": args.routing}]


def _parse_seeds_arg(parser: argparse.ArgumentParser,
                     spec: str | None) -> list[int] | None:
    """Expand an ``A:B`` seed-range flag, exiting 2 on a malformed one."""
    from repro.errors import ConfigError
    from repro.sweep import parse_seed_range

    if spec is None:
        return None
    try:
        return parse_seed_range(spec)
    except ConfigError as exc:
        parser.error(str(exc))


def _validate_campaign(parser: argparse.ArgumentParser,
                       args: argparse.Namespace) -> None:
    """Range-check the campaign flags (exit 2, valid choices listed)."""
    from repro.workloads import available

    if args.endpoints % 8:
        parser.error(
            f"--endpoints must be a multiple of 8 so the campaign's "
            f"2x2x2 subtori tile the system, got {args.endpoints}")
    if args.workload not in available():
        parser.error(f"unknown workload {args.workload!r}; "
                     f"choose from: {', '.join(available())}")
    _parse_seeds_arg(parser, args.seeds)
    if args.cables < 0:
        parser.error(f"--cables must be >= 0, got {args.cables}")
    if args.uplinks < 0:
        parser.error(f"--uplinks must be >= 0, got {args.uplinks}")
    if not args.cables and not args.uplinks:
        parser.error("a campaign needs at least one transient fault per "
                     "timeline; set --cables and/or --uplinks")
    if args.horizon_frac <= 0:
        parser.error(f"--horizon-frac must be positive, "
                     f"got {args.horizon_frac}")
    if args.mttr_frac < 0:
        parser.error(f"--mttr-frac must be >= 0 (0 disables repair), "
                     f"got {args.mttr_frac}")
    if args.bootstrap < 1:
        parser.error(f"--bootstrap must be >= 1, got {args.bootstrap}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint PATH")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(f"--cell-timeout must be a positive number of "
                     f"seconds, got {args.cell_timeout}")


def _validate_faults(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> None:
    """Range-check the fault-injection and robustness flags (exit 2)."""
    links = args.fail_links if isinstance(args.fail_links, list) \
        else [args.fail_links]
    for count in links:
        if count < 0:
            parser.error(f"--fail-links counts must be >= 0, got {count}")
    if args.fail_uplinks < 0:
        parser.error(
            f"--fail-uplinks must be >= 0, got {args.fail_uplinks}")
    if args.fail_seed < 0:
        parser.error(f"--fail-seed must be >= 0, got {args.fail_seed}")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(f"--cell-timeout must be a positive number of "
                     f"seconds, got {args.cell_timeout}")


def _run_figure(args: argparse.Namespace, *, heavy: bool) -> None:
    from repro.workloads import heavy_workloads, light_workloads

    names = args.workloads or (heavy_workloads() if heavy else light_workloads())
    explorer = DesignSpaceExplorer(
        args.endpoints, fidelity=args.fidelity,
        quadratic_tasks=args.quadratic_tasks, seed=args.seed,
        progress=not args.quiet)
    table = explorer.run(names, jobs=args.jobs,
                         checkpoint=args.checkpoint, resume=args.resume,
                         fail_links=args.fail_links,
                         fail_uplinks=args.fail_uplinks,
                         fail_seed=args.fail_seed,
                         keep_going=args.keep_going,
                         cell_timeout=args.cell_timeout,
                         metrics=args.metrics,
                         routing=args.routing)
    fig_no = 4 if heavy else 5
    print(figure(table, names,
                 title=f"Figure {fig_no} ({'heavy' if heavy else 'light'} "
                       f"workloads)"))
    print()
    print(claims_report(table, fig_no))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(table.to_csv())
        print(f"\nraw results written to {args.out}", file=sys.stderr)


def _run_resilience(args: argparse.Namespace) -> None:
    """Sweep makespan vs injected faults for every topology family.

    The new scenario axis the paper's conclusions ask for: the same
    workload is replayed on each topology at increasing fault counts, and
    the table reports each topology's slowdown relative to its own healthy
    run (when a 0-fault column is included).  Cells whose degraded network
    disconnects the workload's endpoint pairs — or that fail for any other
    reason under ``--keep-going`` — show up as ``failed`` rather than
    silently vanishing.
    """
    from repro.core.config import HYBRID_FAMILIES
    from repro.core.explorer import PLACEMENT_POLICY, ResultTable
    from repro.sweep import SweepCell, SweepPlan, parse_seed_range, run_sweep

    explorer = DesignSpaceExplorer(
        args.endpoints, fidelity=args.fidelity,
        quadratic_tasks=args.quadratic_tasks, seed=args.seed,
        progress=not args.quiet)
    specs = explorer.topology_specs()
    if args.topologies:
        specs = [s for s in specs if s.family in args.topologies]
    wspec = explorer.workload_spec(args.workload)
    policy = PLACEMENT_POLICY.get(args.workload, "spread")
    counts = list(dict.fromkeys(args.fail_links))  # dedupe, keep order
    seeds = parse_seed_range(args.seeds) if args.seeds \
        else [args.fail_seed]
    cells = []
    for count in counts:
        for tspec in specs:
            uplinks = (args.fail_uplinks if tspec.family in HYBRID_FAMILIES
                       else 0)
            # a healthy cell's key carries no fault seed: resampling it
            # per seed would just run the identical cell repeatedly
            cell_seeds = seeds if (count or uplinks) else seeds[:1]
            for fseed in cell_seeds:
                cells.append(SweepCell(
                    workload=wspec, topology=tspec, placement=policy,
                    fail_links=count, fail_uplinks=uplinks,
                    fail_seed=fseed, routing=args.routing))
    plan = SweepPlan(endpoints=args.endpoints, fidelity=args.fidelity,
                     seed=args.seed, cells=tuple(cells))
    log = None if args.quiet else \
        (lambda m: print(f"[resilience] {m}", file=sys.stderr, flush=True))
    records = run_sweep(plan, jobs=args.jobs, checkpoint=args.checkpoint,
                        resume=args.resume, log=log,
                        keep_going=args.keep_going,
                        cell_timeout=args.cell_timeout,
                        metrics_path=args.metrics)

    by_cell: dict[tuple[str, int], list] = {}
    for r in records:
        key = (r.topology, r.faults["cables"] if r.faults else 0)
        by_cell.setdefault(key, []).append(r)
    labels = list(dict.fromkeys(s.label() for s in specs))
    seed_note = (f"fault seeds {seeds[0]}..{seeds[-1]}, mean over "
                 f"{len(seeds)} samples" if len(seeds) > 1
                 else f"fault seed {seeds[0]}")
    print(f"Resilience sweep: {args.workload} @ {args.endpoints} endpoints "
          f"({seed_note}, "
          f"{args.fail_uplinks} uplink-port faults on hybrids)")
    header = f"{'topology':>16}" + "".join(
        f"{f'links={c}':>16}" for c in counts)
    print(header)
    for label in labels:
        healthy_runs = by_cell.get((label, 0))
        healthy = (sum(r.makespan for r in healthy_runs)
                   / len(healthy_runs)) if healthy_runs else None
        row = [f"{label:>16}"]
        for count in counts:
            cell_runs = by_cell.get((label, count))
            if not cell_runs:
                row.append(f"{'failed':>16}")
                continue
            makespan = sum(r.makespan for r in cell_runs) / len(cell_runs)
            if healthy is not None and healthy > 0:
                row.append(f"{makespan * 1e3:8.3f}ms"
                           f" {makespan / healthy:4.2f}x")
            else:
                row.append(f"{makespan * 1e3:14.3f}ms")
        print("".join(row))
    if args.out:
        table = ResultTable(endpoints=args.endpoints, fidelity=args.fidelity)
        for record in records:
            table.add(record)
        with open(args.out, "w") as fh:
            fh.write(table.to_csv())
        print(f"\nraw results written to {args.out}", file=sys.stderr)


def _run_campaign(args: argparse.Namespace) -> None:
    """Monte-Carlo availability campaign over transient fault timelines.

    One seeded :class:`~repro.topology.timeline.FaultTimeline` per seed is
    replayed per topology; the report gives slowdown distributions with
    bootstrap CIs and availability (the fraction of timelines the workload
    survives).  Deterministic under fixed flags — ``--report`` output is
    byte-identical across runs, so it can be committed as an artifact.
    """
    from repro.core.explorer import PLACEMENT_POLICY
    from repro.errors import ConfigError
    from repro.sweep import (campaign_table, parse_seed_range, run_campaign,
                             write_campaign_report)
    from repro.sweep.campaign import _select_topologies

    explorer = DesignSpaceExplorer(
        args.endpoints, fidelity=args.fidelity,
        quadratic_tasks=args.quadratic_tasks, seed=args.seed,
        progress=not args.quiet)
    log = None if args.quiet else \
        (lambda m: print(f"[campaign] {m}", file=sys.stderr, flush=True))
    try:
        topologies = _select_topologies(explorer.topology_specs(),
                                        args.topologies)
        report = run_campaign(
            endpoints=args.endpoints,
            workload=explorer.workload_spec(args.workload),
            topologies=topologies,
            placement=PLACEMENT_POLICY.get(args.workload, "spread"),
            seeds=parse_seed_range(args.seeds),
            cables=args.cables, uplinks=args.uplinks,
            horizon_frac=args.horizon_frac, mttr_frac=args.mttr_frac,
            fidelity=args.fidelity, seed=args.seed, routing=args.routing,
            jobs=args.jobs, checkpoint=args.checkpoint, resume=args.resume,
            log=log, cell_timeout=args.cell_timeout,
            metrics_path=args.metrics, bootstrap=args.bootstrap)
    except ConfigError as exc:
        print(f"repro campaign: error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    print(campaign_table(report))
    if args.report:
        path = write_campaign_report(report, args.report)
        print(f"report written to {path}", file=sys.stderr)


def _run_optimize(args: argparse.Namespace) -> None:
    """Multi-fidelity Pareto search over the hybrid design space.

    Output is deterministic under a fixed seed (no wall-clock anywhere),
    so identical invocations print — and with ``--report`` write —
    byte-identical results.
    """
    from repro.errors import ConfigError
    from repro.search import (DesignSpace, FidelityLadder, LadderEvaluator,
                              make_strategy, run_search, write_report)
    from repro.search.fidelity import DEFAULT_WORKLOADS
    from repro.topology.cost import CostModel

    workloads = tuple(args.workloads or DEFAULT_WORKLOADS)
    log = None if args.quiet else \
        (lambda m: print(f"[optimize] {m}", file=sys.stderr, flush=True))
    try:
        ladder = FidelityLadder.for_scale(
            args.endpoints, workloads,
            pilot_endpoints=args.pilot_endpoints,
            fidelity=args.fidelity, seed=args.seed,
            quadratic_tasks=args.quadratic_tasks)
        space = DesignSpace(endpoints=args.endpoints,
                            pilot_endpoints=ladder.pilot_endpoints,
                            fault_levels=tuple(dict.fromkeys(
                                args.fault_levels)),
                            routings=tuple(dict.fromkeys(args.routings)))
        strategy = make_strategy(args.strategy, space, seed=args.seed)
    except ConfigError as exc:
        print(f"repro optimize: error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    evaluator = LadderEvaluator(
        ladder, cost_model=_cost_model(args) or CostModel(),
        jobs=args.jobs, checkpoint=args.checkpoint, resume=args.resume,
        cell_timeout=args.cell_timeout, metrics=args.metrics, log=log)
    result = run_search(space, strategy, ladder, budget=args.budget,
                        evaluator=evaluator, log=log)

    print(f"Pareto front @ {args.endpoints} endpoints "
          f"(strategy={result.strategy}, budget={args.budget}, "
          f"seed={args.seed}, workloads={'+'.join(workloads)})")
    print(f"{'design':>16} | {'makespan':>9} {'cost':>8} {'power':>8}")
    for row in result.front_rows():
        obj = row["objectives"]
        marker = " *" if row["baseline"] else ""
        print(f"{row['label']:>16} | {obj['makespan']:>9.4f} "
              f"{obj['cost'] * 100:>7.2f}% {obj['power'] * 100:>7.2f}%"
              + marker)
    print("(* = baseline reference, not a search product; makespan is "
          "normalised to the fattree)")
    ranks = result.rank_summary
    print(f"evaluations: rank0 {ranks['rank0']['unique_designs']} designs "
          f"({ranks['rank0']['proposals']} proposals, "
          f"{ranks['rank0']['static_cache_hits']} cache hits), "
          + ("rank1 skipped (collapsed ladder), "
             if "skipped" in ranks["rank1"] else
             f"rank1 {ranks['rank1']['simulations']} pilot sims, ")
          + f"rank2 {ranks['rank2']['simulations']} full-fidelity sims")
    if args.report:
        path = write_report(result, args.report)
        print(f"report written to {path}", file=sys.stderr)


def _run_single(args: argparse.Namespace) -> None:
    from repro import simulate
    from repro.mapping.placement import spread_placement
    from repro.topology import build as build_topology
    from repro.workloads import build as build_workload

    params = {}
    if args.t is not None:
        params["t"] = args.t
    if args.u is not None:
        params["u"] = args.u
    topo = build_topology(args.topology, args.endpoints, **params)
    tasks = args.tasks or args.endpoints
    wl = build_workload(args.workload, tasks, seed=args.seed)
    placement = None if tasks == args.endpoints \
        else spread_placement(tasks, args.endpoints)
    result = simulate(topo, wl.build(), placement=placement,
                      fidelity=args.fidelity, routing=args.routing)
    print(topo.describe())
    print(wl.describe())
    print(result.summary())


def _run_profile(args: argparse.Namespace) -> None:
    """Run one instrumented simulation and print its profile tables."""
    from repro import simulate
    from repro.mapping.placement import spread_placement
    from repro.obs import MetricsCollector, profile_report
    from repro.topology import build as build_topology
    from repro.workloads import build as build_workload

    params = {}
    if args.t is not None:
        params["t"] = args.t
    if args.u is not None:
        params["u"] = args.u
    topo = build_topology(args.topology, args.endpoints, **params)
    tasks = args.tasks or args.endpoints
    wl = build_workload(args.workload, tasks, seed=args.seed)
    placement = None if tasks == args.endpoints \
        else spread_placement(tasks, args.endpoints)
    collector = MetricsCollector(topo.links.num_links)
    result = simulate(topo, wl.build(), placement=placement,
                      fidelity=args.fidelity, metrics=collector,
                      routing=args.routing)
    print(topo.describe())
    print(wl.describe())
    print(result.summary())
    print()
    print(profile_report(result.metrics))


def _run_serve(args: argparse.Namespace) -> None:
    """Run the simulation service until interrupted.

    Prints one parseable ``listening on HOST:PORT`` line (stdout,
    flushed) once the socket is bound — scripts and the CI smoke job key
    off it.
    """
    import asyncio

    from repro.routing.cache import RouteCacheConfig
    from repro.service import Broker, ResultStore, ServiceServer

    cache_config = None
    if args.route_cache is not None or args.route_cache_resident is not None \
            or args.route_cache_dir is not None:
        cache_config = RouteCacheConfig(
            mode=args.route_cache or "auto",
            resident=args.route_cache_resident,
            spill_dir=args.route_cache_dir)
    weights = {}
    for spec in args.weight:
        tenant, _, value = spec.partition("=")
        weights[tenant] = int(value)

    async def serve() -> None:
        broker = Broker(
            ResultStore(args.store),
            endpoints=args.endpoints, fidelity=args.fidelity,
            seed=args.seed, capacity=args.capacity,
            weights=weights or None, jobs=args.jobs,
            cell_timeout=args.cell_timeout, metrics_path=args.metrics,
            route_cache_config=cache_config, batch_max=args.batch_max)
        server = ServiceServer(broker, args.host, args.port)
        host, port = await server.start()
        print(f"repro service listening on {host}:{port} "
              f"(store {args.store}, {args.endpoints} endpoints, "
              f"{args.fidelity} fidelity, seed {args.seed})", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("repro service stopped", file=sys.stderr)


def _run_submit(args: argparse.Namespace) -> int:
    """Submit cells to a running service and print the JSON response.

    Exit 0 when the service answered 200 and (if waiting) every cell
    settled ``done``; 1 otherwise — so scripts can chain on success.
    """
    import json

    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    cells = _submit_cells(argparse.ArgumentParser(prog="repro submit"),
                          args)
    try:
        status, doc = client.submit(cells, tenant=args.tenant,
                                    wait=not args.no_wait)
    except OSError as exc:
        print(f"repro submit: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2))
    if status != 200:
        print(f"repro submit: service answered {status}", file=sys.stderr)
        return 1
    if not args.no_wait and any(r.get("status") != "done"
                                for r in doc.get("results", ())):
        return 1
    return 0


def _info() -> None:
    from repro import __version__
    from repro.topology import available as topo_available
    from repro.workloads import heavy_workloads, light_workloads

    print(f"repro {__version__} — ICPP 2019 multi-tier interconnect "
          f"reproduction")
    print(f"topologies: {', '.join(topo_available())}")
    print(f"heavy workloads (Fig.4): {', '.join(heavy_workloads())}")
    print(f"light workloads (Fig.5): {', '.join(light_workloads())}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
