"""Command-line interface: regenerate every table and figure of the paper.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro table1 --endpoints 131072        # paper-scale static analysis
    repro table2 --endpoints 131072
    repro fig4 --endpoints 4096 --out fig4.csv --jobs 4 --checkpoint f4.jsonl
    repro fig5 --endpoints 4096 --jobs 4 --checkpoint f5.jsonl --resume
    repro run --topology nesttree --t 2 --u 4 --workload allreduce
    repro info

Dynamic experiments (fig4/fig5/run) default to a scaled-down system; the
static analyses (table1/table2) run at any scale including the paper's
131,072 endpoints.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (DEFAULT_ENDPOINTS, DesignSpaceExplorer, claims_report,
                        figure, table1, table2)
from repro.core.config import DEFAULT_QUADRATIC_TASKS
from repro.core.paperdata import PAPER_ENDPOINTS


def _add_common(p: argparse.ArgumentParser, *, endpoints: int) -> None:
    p.add_argument("--endpoints", type=int, default=endpoints,
                   help=f"system size in QFDBs (default {endpoints})")
    p.add_argument("--seed", type=int, default=0, help="random seed")


def _add_sweep(p: argparse.ArgumentParser) -> None:
    _add_common(p, endpoints=DEFAULT_ENDPOINTS)
    p.add_argument("--fidelity", choices=("exact", "approx"),
                   default="approx", help="engine fidelity (default approx)")
    p.add_argument("--quadratic-tasks", type=int,
                   default=DEFAULT_QUADRATIC_TASKS,
                   help="task cap for MapReduce/n-Bodies")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="subset of workloads to run")
    p.add_argument("--out", default=None, help="also write raw CSV here")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep (default 1: serial)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append per-cell results to this JSONL file as the "
                        "sweep runs")
    p.add_argument("--resume", action="store_true",
                   help="skip cells already present in --checkpoint")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress logging")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-tier interconnect design exploration "
                    "(ICPP 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="average distance / diameter table")
    _add_common(p1, endpoints=PAPER_ENDPOINTS)
    p1.add_argument("--max-pairs", type=int, default=50_000,
                    help="sampled pairs per topology (exact if that covers "
                         "the whole pair space)")

    p2 = sub.add_parser("table2", help="switch count / cost / power table")
    _add_common(p2, endpoints=PAPER_ENDPOINTS)

    p4 = sub.add_parser("fig4", help="heavy-workload normalised times")
    _add_sweep(p4)
    p5 = sub.add_parser("fig5", help="light-workload normalised times")
    _add_sweep(p5)

    pr = sub.add_parser("run", help="one (topology, workload) simulation")
    _add_common(pr, endpoints=DEFAULT_ENDPOINTS)
    pr.add_argument("--topology", required=True,
                    help="family: torus, fattree, ghc, nesttree, nestghc")
    pr.add_argument("--t", type=int, default=None, help="subtorus side")
    pr.add_argument("--u", type=int, default=None, help="uplink sparsity")
    pr.add_argument("--workload", required=True)
    pr.add_argument("--tasks", type=int, default=None)
    pr.add_argument("--fidelity", choices=("exact", "approx"),
                    default="exact")

    sub.add_parser("info", help="library inventory")

    args = parser.parse_args(argv)
    _validate(parser, args)
    if args.command == "table1":
        print(table1(args.endpoints, max_pairs=args.max_pairs, seed=args.seed))
    elif args.command == "table2":
        print(table2(args.endpoints))
    elif args.command in ("fig4", "fig5"):
        _run_figure(args, heavy=args.command == "fig4")
    elif args.command == "run":
        _run_single(args)
    elif args.command == "info":
        _info()
    return 0


def _validate(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> None:
    """Reject bad inputs up front (exit status 2, like argparse itself).

    Without this, an unknown workload surfaces as a ``KeyError`` deep in
    the registry and an untileable endpoint count as a topology-construction
    traceback after minutes of sweep warm-up.
    """
    from repro.workloads import available

    if getattr(args, "endpoints", 1) < 1:
        parser.error(f"--endpoints must be positive, got {args.endpoints}")
    if args.command in ("fig4", "fig5"):
        if args.endpoints % 8:
            parser.error(
                f"--endpoints must be a multiple of 8 so the sweep's "
                f"2x2x2 subtori tile the system, got {args.endpoints}")
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        if args.resume and not args.checkpoint:
            parser.error("--resume requires --checkpoint PATH")
        for name in args.workloads or ():
            if name not in available():
                parser.error(f"unknown workload {name!r}; "
                             f"choose from: {', '.join(available())}")
    if args.command == "run" and args.workload not in available():
        parser.error(f"unknown workload {args.workload!r}; "
                     f"choose from: {', '.join(available())}")


def _run_figure(args: argparse.Namespace, *, heavy: bool) -> None:
    from repro.workloads import heavy_workloads, light_workloads

    names = args.workloads or (heavy_workloads() if heavy else light_workloads())
    explorer = DesignSpaceExplorer(
        args.endpoints, fidelity=args.fidelity,
        quadratic_tasks=args.quadratic_tasks, seed=args.seed,
        progress=not args.quiet)
    table = explorer.run(names, jobs=args.jobs,
                         checkpoint=args.checkpoint, resume=args.resume)
    fig_no = 4 if heavy else 5
    print(figure(table, names,
                 title=f"Figure {fig_no} ({'heavy' if heavy else 'light'} "
                       f"workloads)"))
    print()
    print(claims_report(table, fig_no))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(table.to_csv())
        print(f"\nraw results written to {args.out}", file=sys.stderr)


def _run_single(args: argparse.Namespace) -> None:
    from repro import simulate
    from repro.mapping.placement import spread_placement
    from repro.topology import build as build_topology
    from repro.workloads import build as build_workload

    params = {}
    if args.t is not None:
        params["t"] = args.t
    if args.u is not None:
        params["u"] = args.u
    topo = build_topology(args.topology, args.endpoints, **params)
    tasks = args.tasks or args.endpoints
    wl = build_workload(args.workload, tasks, seed=args.seed)
    placement = None if tasks == args.endpoints \
        else spread_placement(tasks, args.endpoints)
    result = simulate(topo, wl.build(), placement=placement,
                      fidelity=args.fidelity)
    print(topo.describe())
    print(wl.describe())
    print(result.summary())


def _info() -> None:
    from repro import __version__
    from repro.topology import available as topo_available
    from repro.workloads import heavy_workloads, light_workloads

    print(f"repro {__version__} — ICPP 2019 multi-tier interconnect "
          f"reproduction")
    print(f"topologies: {', '.join(topo_available())}")
    print(f"heavy workloads (Fig.4): {', '.join(heavy_workloads())}")
    print(f"light workloads (Fig.5): {', '.join(light_workloads())}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
