"""Text reports mirroring the paper's tables and figures.

Each function renders plain-text tables in the same arrangement as the
paper, with our measured value next to the paper's published one where a
direct comparison exists (full-scale static analyses), or the normalised
series of Figures 4/5 for dynamic sweeps.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core import paperdata
from repro.core.config import PAPER_CONFIGS
from repro.core.explorer import ResultTable
from repro.topology.analysis import path_length_stats
from repro.topology.cost import CostModel
from repro.topology.registry import build as build_topology


def table1(endpoints: int, *, max_pairs: int = 50_000, seed: int = 0,
           configs: Sequence[tuple[int, int]] = PAPER_CONFIGS,
           compare_paper: bool | None = None) -> str:
    """Average distance and diameter of every hybrid design point.

    At the paper's full scale (131,072 endpoints) the output includes the
    paper's Table 1 numbers for comparison.
    """
    if compare_paper is None:
        compare_paper = endpoints == paperdata.PAPER_ENDPOINTS
    lines = [
        f"Table 1 — average distance (uniform traffic) and diameter "
        f"@ {endpoints} endpoints",
        f"{'(t,u)':>8} | {'avg NestGHC':>12} {'avg NestTree':>13} | "
        f"{'diam GHC':>9} {'diam Tree':>10}"
        + ("  | paper (avg g/t, diam g/t)" if compare_paper else ""),
    ]
    lines.append("-" * len(lines[-1]))
    for t, u in configs:
        if endpoints % (t ** 3):
            lines.append(f"({t},{u})".rjust(8)
                         + f" | (skipped: t={t} does not tile "
                           f"{endpoints} endpoints)")
            continue
        row = []
        for family in ("nestghc", "nesttree"):
            topo = build_topology(family, endpoints, t=t, u=u)
            stats = path_length_stats(topo, max_pairs=max_pairs, seed=seed)
            diam = topo.routing_diameter()
            row.append((stats.average, diam))
        text = (f"({t},{u})".rjust(8)
                + f" | {row[0][0]:>12.2f} {row[1][0]:>13.2f}"
                + f" | {row[0][1]:>9d} {row[1][1]:>10d}")
        if compare_paper and (t, u) in paperdata.TABLE1:
            ag, at, dg, dt = paperdata.TABLE1[(t, u)]
            text += f"  | {ag:.2f}/{at:.2f}, {dg}/{dt}"
        lines.append(text)
    ft = build_topology("fattree", endpoints)
    ft_stats = path_length_stats(ft, max_pairs=max_pairs, seed=seed)
    to = build_topology("torus", endpoints)
    to_stats = path_length_stats(to, max_pairs=max_pairs, seed=seed)
    lines.append("")
    lines.append(f"Reference: fattree avg {ft_stats.average:.2f}, "
                 f"diameter {ft.routing_diameter()}"
                 + (f" (paper: {paperdata.FATTREE_AVG_DISTANCE}, "
                    f"{paperdata.FATTREE_DIAMETER})" if compare_paper else ""))
    lines.append(f"Reference: torus   avg {to_stats.average:.2f}, "
                 f"diameter {to.routing_diameter()}"
                 + (f" (paper: {paperdata.TORUS_AVG_DISTANCE}, "
                    f"{paperdata.TORUS_DIAMETER})" if compare_paper else ""))
    return "\n".join(lines)


def table2(endpoints: int, *,
           configs: Sequence[tuple[int, int]] = PAPER_CONFIGS,
           model: CostModel | None = None,
           compare_paper: bool | None = None) -> str:
    """Switch counts and cost/power overheads of every design point.

    Uses the planners only (no full topology build), so it runs instantly
    at any scale.
    """
    from repro.topology.cost import (fattree_switch_count, ghc_switch_count,
                                     overhead_row)

    if compare_paper is None:
        compare_paper = endpoints == paperdata.PAPER_ENDPOINTS
    model = model or CostModel()
    lines = [
        f"Table 2 — switches and estimated overheads @ {endpoints} endpoints",
        f"{'(t,u)':>8} | {'sw GHC':>8} {'sw Tree':>8} | "
        f"{'cost GHC':>9} {'cost Tree':>10} | {'pow GHC':>8} {'pow Tree':>9}"
        + ("  | paper switches g/t" if compare_paper else ""),
    ]
    lines.append("-" * len(lines[-1]))
    for t, u in configs:
        ports = endpoints // u
        sg = ghc_switch_count(ports)
        st = fattree_switch_count(ports)
        rg = overhead_row(f"ghc", sg, endpoints, model)
        rt = overhead_row(f"tree", st, endpoints, model)
        text = (f"({t},{u})".rjust(8)
                + f" | {sg:>8d} {st:>8d}"
                + f" | {rg.cost_increase * 100:>8.2f}% "
                  f"{rt.cost_increase * 100:>9.2f}%"
                + f" | {rg.power_increase * 100:>7.2f}% "
                  f"{rt.power_increase * 100:>8.2f}%")
        if compare_paper and (t, u) in paperdata.TABLE2:
            pg, pt = paperdata.TABLE2[(t, u)][:2]
            text += f"  | {pg}/{pt}"
        lines.append(text)
    ft_switches = fattree_switch_count(endpoints)
    row = overhead_row("fattree", ft_switches, endpoints, model)
    lines.append("")
    lines.append(f"Reference: full fattree needs {ft_switches} switches, "
                 f"+{row.cost_increase * 100:.2f}% cost, "
                 f"+{row.power_increase * 100:.2f}% power"
                 + (f" (paper: {paperdata.FATTREE_SWITCHES}, "
                    f"+{paperdata.FATTREE_COST_PCT}%, "
                    f"+{paperdata.FATTREE_POWER_PCT}%)" if compare_paper else ""))
    return "\n".join(lines)


def figure(table: ResultTable, workloads: Sequence[str], *,
           title: str, reference: str = "fattree") -> str:
    """Normalised-execution-time series for a set of workloads (Fig. 4/5).

    One block per workload: rows are the 12 (t, u) design points, columns
    the NestGHC/NestTree series plus the flat Fattree and Torus3D baselines.
    """
    lines = [f"{title} — normalised execution time "
             f"(reference = {reference}, {table.endpoints} endpoints, "
             f"fidelity={table.fidelity})"]
    for wname in workloads:
        norm = table.normalised(wname, reference=reference)
        lines.append("")
        lines.append(f"== {wname} ==")
        lines.append(f"{'(t,u)':>8} | {'NestGHC':>9} {'NestTree':>9} | "
                     f"{'Fattree':>8} {'Torus3D':>8}")
        fat = norm.get("fattree", float("nan"))
        tor = norm.get("torus", float("nan"))
        seen = set()
        for r in table.records:
            if r.workload != wname or r.t is None:
                continue
            key = (r.t, r.u)
            if key in seen:
                continue
            seen.add(key)
            g = norm.get(f"nestghc({r.t},{r.u})", float("nan"))
            tr = norm.get(f"nesttree({r.t},{r.u})", float("nan"))
            lines.append(f"({r.t},{r.u})".rjust(8)
                         + f" | {g:>9.3f} {tr:>9.3f}"
                         + f" | {fat:>8.3f} {tor:>8.3f}")
    return "\n".join(lines)


def claims_report(table: ResultTable, figure_no: int) -> str:
    """The paper's qualitative claims next to what our sweep measured."""
    from repro.core.shapes import evaluate_claims

    lines = [f"Figure {figure_no} shape checks:"]
    for claim, verdict, detail in evaluate_claims(table, figure_no):
        status = "OK " if verdict else "DIFF"
        lines.append(f"[{status}] {claim.workload}: {claim.claim}")
        lines.append(f"       measured: {detail}")
    return "\n".join(lines)
