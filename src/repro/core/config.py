"""Experiment configuration records.

These dataclasses are the declarative layer between the CLI / benches and
the simulation machinery: a config can be hashed, printed, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: The 12 hybrid design points of the paper's evaluation, in figure order.
PAPER_CONFIGS: tuple[tuple[int, int], ...] = (
    (2, 8), (2, 4), (2, 2), (2, 1),
    (4, 8), (4, 4), (4, 2), (4, 1),
    (8, 8), (8, 4), (8, 2), (8, 1),
)

#: Default endpoint count for dynamic experiments (the paper used 131,072;
#: see DESIGN.md for the scaling substitution).
DEFAULT_ENDPOINTS = 4096

#: Default task cap for workloads with quadratic flow counts.
DEFAULT_QUADRATIC_TASKS = 512

#: Families with upper-tier uplink ports; the only ones uplink-port faults
#: apply to (other families simply have no such ports to fail).
HYBRID_FAMILIES = ("nesttree", "nestghc")

#: Uplink densities the paper's Fig. 3 placement rules support.
VALID_UPLINK_DENSITIES = (1, 2, 4, 8)


def validate_hybrid_params(family: str, t: Any, u: Any, *,
                           endpoints: int | None = None) -> None:
    """Reject invalid hybrid ``(t, u)`` parameters with the ranges listed.

    Without this guard a bad density or subtorus side only surfaces deep
    inside topology construction (a :class:`TopologyError` after sweep
    warm-up); the search mutation operator and the CLI both rely on the
    typed :class:`ConfigError` raised here instead.  ``endpoints`` adds the
    scale-dependent check that ``t**3``-node subtori tile the system.
    """
    ranges = (f"valid hybrid parameters: u in "
              f"{'/'.join(map(str, VALID_UPLINK_DENSITIES))} "
              f"(one uplink per u QFDBs), t a positive subtorus side "
              f"(even when u > 1) whose cube divides the endpoint count")
    if not isinstance(u, int) or u not in VALID_UPLINK_DENSITIES:
        raise ConfigError(
            f"{family}: uplink density u={u!r} is not a supported power of "
            f"two; {ranges}")
    if not isinstance(t, int) or t < 1:
        raise ConfigError(
            f"{family}: subtorus side t={t!r} must be a positive integer; "
            f"{ranges}")
    if u > 1 and t % 2:
        raise ConfigError(
            f"{family}: density u={u} needs an even subtorus side, got "
            f"t={t}; {ranges}")
    if endpoints is not None and endpoints % (t ** 3):
        raise ConfigError(
            f"{family}: subtorus side t={t} does not tile {endpoints} "
            f"endpoints ({t}^3 = {t ** 3} must divide the system); {ranges}")


def partition_tileable(endpoints: int, configs=PAPER_CONFIGS
                       ) -> tuple[tuple[tuple[int, int], ...],
                                  tuple[tuple[int, int], ...]]:
    """Split ``(t, u)`` design points into (tileable, skipped) at a scale."""
    tileable = tuple((t, u) for t, u in configs if endpoints % (t ** 3) == 0)
    skipped = tuple((t, u) for t, u in configs if endpoints % (t ** 3) != 0)
    return tileable, skipped


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus its construction parameters."""

    family: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # hybrid (t, u) pairs are validated at spec construction so a bad
        # design point fails here, typed, not deep inside topology build
        if self.family in HYBRID_FAMILIES:
            t, u = self.params.get("t"), self.params.get("u")
            if t is not None or u is not None:
                validate_hybrid_params(self.family, t, u)

    def label(self) -> str:
        t, u = self.params.get("t"), self.params.get("u")
        if t is not None and u is not None:
            return f"{self.family}({t},{u})"
        return self.family

    def validate_for(self, num_endpoints: int) -> None:
        """Scale-dependent validation (subtorus tiling) for hybrids."""
        if self.family in HYBRID_FAMILIES and "t" in self.params:
            validate_hybrid_params(self.family, self.params["t"],
                                   self.params.get("u"),
                                   endpoints=num_endpoints)

    def build(self, num_endpoints: int):
        from repro.topology import build

        self.validate_for(num_endpoints)
        return build(self.family, num_endpoints, **self.params)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload name plus parameters; ``tasks=None`` means one per endpoint."""

    name: str
    tasks: int | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def resolve_tasks(self, num_endpoints: int) -> int:
        if self.tasks is None:
            return num_endpoints
        if self.tasks > num_endpoints:
            raise ConfigError(
                f"{self.name}: {self.tasks} tasks exceed {num_endpoints} endpoints")
        return self.tasks

    def build(self, num_endpoints: int, *, seed: int = 0):
        from repro.workloads import build

        return build(self.name, self.resolve_tasks(num_endpoints),
                     seed=seed, **self.params)


@dataclass(frozen=True)
class ExperimentConfig:
    """One (topology, workload) dynamic simulation."""

    endpoints: int
    topology: TopologySpec
    workload: WorkloadSpec
    placement: str = "identity"
    fidelity: str = "approx"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.endpoints < 2:
            raise ConfigError("experiments need at least 2 endpoints")


def hybrid_specs(configs=PAPER_CONFIGS) -> list[TopologySpec]:
    """NestGHC and NestTree specs for every (t, u) design point.

    Each pair is validated (:func:`validate_hybrid_params`) so an invalid
    density or side raises a typed :class:`ConfigError` up front.
    """
    specs: list[TopologySpec] = []
    for t, u in configs:
        validate_hybrid_params("hybrid", t, u)
        specs.append(TopologySpec("nestghc", {"t": t, "u": u}))
        specs.append(TopologySpec("nesttree", {"t": t, "u": u}))
    return specs


def baseline_specs() -> list[TopologySpec]:
    """The two single-topology baselines of the evaluation."""
    return [TopologySpec("fattree"), TopologySpec("torus")]
