"""Experiment configuration records.

These dataclasses are the declarative layer between the CLI / benches and
the simulation machinery: a config can be hashed, printed, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: The 12 hybrid design points of the paper's evaluation, in figure order.
PAPER_CONFIGS: tuple[tuple[int, int], ...] = (
    (2, 8), (2, 4), (2, 2), (2, 1),
    (4, 8), (4, 4), (4, 2), (4, 1),
    (8, 8), (8, 4), (8, 2), (8, 1),
)

#: Default endpoint count for dynamic experiments (the paper used 131,072;
#: see DESIGN.md for the scaling substitution).
DEFAULT_ENDPOINTS = 4096

#: Default task cap for workloads with quadratic flow counts.
DEFAULT_QUADRATIC_TASKS = 512

#: Families with upper-tier uplink ports; the only ones uplink-port faults
#: apply to (other families simply have no such ports to fail).
HYBRID_FAMILIES = ("nesttree", "nestghc")


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus its construction parameters."""

    family: str
    params: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        t, u = self.params.get("t"), self.params.get("u")
        if t is not None and u is not None:
            return f"{self.family}({t},{u})"
        return self.family

    def build(self, num_endpoints: int):
        from repro.topology import build

        return build(self.family, num_endpoints, **self.params)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload name plus parameters; ``tasks=None`` means one per endpoint."""

    name: str
    tasks: int | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def resolve_tasks(self, num_endpoints: int) -> int:
        if self.tasks is None:
            return num_endpoints
        if self.tasks > num_endpoints:
            raise ConfigError(
                f"{self.name}: {self.tasks} tasks exceed {num_endpoints} endpoints")
        return self.tasks

    def build(self, num_endpoints: int, *, seed: int = 0):
        from repro.workloads import build

        return build(self.name, self.resolve_tasks(num_endpoints),
                     seed=seed, **self.params)


@dataclass(frozen=True)
class ExperimentConfig:
    """One (topology, workload) dynamic simulation."""

    endpoints: int
    topology: TopologySpec
    workload: WorkloadSpec
    placement: str = "identity"
    fidelity: str = "approx"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.endpoints < 2:
            raise ConfigError("experiments need at least 2 endpoints")


def hybrid_specs(configs=PAPER_CONFIGS) -> list[TopologySpec]:
    """NestGHC and NestTree specs for every (t, u) design point."""
    specs: list[TopologySpec] = []
    for t, u in configs:
        specs.append(TopologySpec("nestghc", {"t": t, "u": u}))
        specs.append(TopologySpec("nesttree", {"t": t, "u": u}))
    return specs


def baseline_specs() -> list[TopologySpec]:
    """The two single-topology baselines of the evaluation."""
    return [TopologySpec("fattree"), TopologySpec("torus")]
