"""Experiment harness: configs, the design-space explorer, reports.

This package turns the simulator + topologies + workloads into the paper's
evaluation: :class:`~repro.core.explorer.DesignSpaceExplorer` runs the
Figure 4/5 cross products, :mod:`~repro.core.report` renders Tables 1-2 and
the normalised figure series, :mod:`~repro.core.shapes` checks the paper's
qualitative claims, and :mod:`~repro.core.paperdata` holds the published
numbers for comparison.
"""

from repro.core.config import (DEFAULT_ENDPOINTS, DEFAULT_QUADRATIC_TASKS,
                               PAPER_CONFIGS, ExperimentConfig, TopologySpec,
                               WorkloadSpec, baseline_specs, hybrid_specs)
from repro.core.explorer import DesignSpaceExplorer, ResultTable, RunRecord
from repro.core.report import claims_report, figure, table1, table2
from repro.core.shapes import evaluate_claims

__all__ = [
    "DEFAULT_ENDPOINTS",
    "DEFAULT_QUADRATIC_TASKS",
    "PAPER_CONFIGS",
    "DesignSpaceExplorer",
    "ExperimentConfig",
    "ResultTable",
    "RunRecord",
    "TopologySpec",
    "WorkloadSpec",
    "baseline_specs",
    "claims_report",
    "evaluate_claims",
    "figure",
    "hybrid_specs",
    "table1",
    "table2",
]
