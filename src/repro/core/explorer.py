"""Design-space exploration driver (the paper's Section 5 sweeps).

:class:`DesignSpaceExplorer` owns the cross product behind Figures 4 and 5:
every hybrid design point (t, u) for both NestGHC and NestTree, plus the
Fattree and Torus3D baselines, against any list of workloads.  Topologies
are built once and reused across workloads; workloads are built once and
replayed across topologies (flows are task-indexed, so a placement adapts
them to each machine).
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import (DEFAULT_ENDPOINTS, DEFAULT_QUADRATIC_TASKS,
                               PAPER_CONFIGS, TopologySpec, WorkloadSpec,
                               baseline_specs, hybrid_specs,
                               partition_tileable)
from repro.errors import ConfigError
from repro.mapping import placement as placement_mod
from repro.topology.base import Topology

#: Workloads whose flow counts grow quadratically with the task count; they
#: run with a capped task set (see DESIGN.md substitutions).
QUADRATIC_WORKLOADS = ("mapreduce", "nbodies")

#: Placement policy for capped workloads.  The ring workload runs under a
#: fragmented (random) allocation — INRFlow models allocation policies, and
#: a rank-aligned ring would trivially hand the torus a perfect-locality
#: mapping no real scheduler guarantees; everything else spreads evenly.
PLACEMENT_POLICY = {"nbodies": "random"}


def workload_spec_for(name: str, endpoints: int, *,
                      quadratic_tasks: int = DEFAULT_QUADRATIC_TASKS
                      ) -> WorkloadSpec:
    """Default spec for a workload name (task caps per DESIGN.md).

    Shared by the explorer and the search subsystem so both apply the same
    quadratic-workload task caps to a sweep cell.
    """
    if name in QUADRATIC_WORKLOADS:
        return WorkloadSpec(name, tasks=min(endpoints, quadratic_tasks))
    return WorkloadSpec(name)


@dataclass(frozen=True)
class RunRecord:
    """One simulated (workload, topology) cell."""

    workload: str
    topology: str     # label, e.g. "nesttree(2,4)" or "fattree"
    family: str
    t: int | None
    u: int | None
    makespan: float
    num_flows: int
    events: int
    reallocations: int
    wall_seconds: float
    #: Fault fingerprint ({"cables": ..., "uplinks": ..., "seed": ...})
    #: when the cell ran on a degraded network; None for a healthy run.
    faults: dict | None = None
    #: Routing policy the cell simulated under (see repro.routing.policy).
    routing: str = "deterministic"
    #: Transient-timeline fingerprint (TimelineSpec.fingerprint()) when the
    #: cell ran under a fault timeline; None for static/healthy cells.
    timeline: dict | None = None
    #: Recovery counters from the transient engine (result.transient);
    #: None unless the cell ran under a fault timeline.
    transient: dict | None = None


@dataclass
class ResultTable:
    """All cells of one sweep, with normalisation helpers."""

    endpoints: int
    fidelity: str
    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def workloads(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.workload, None)
        return list(seen)

    def cell(self, workload: str, topology: str) -> RunRecord:
        for r in self.records:
            if r.workload == workload and r.topology == topology:
                return r
        raise KeyError(f"no record for ({workload}, {topology})")

    def normalised(self, workload: str, *, reference: str = "fattree"
                   ) -> dict[str, float]:
        """Makespans of one workload divided by the reference topology's.

        The paper's figures plot normalised execution time; the plots show
        flat Fattree/Torus3D series across the x-axis, i.e. a per-workload
        constant — we normalise to the Fattree baseline.
        """
        ref = self.cell(workload, reference).makespan
        if ref <= 0:
            raise ConfigError(f"reference makespan for {workload} is zero")
        return {r.topology: r.makespan / ref
                for r in self.records if r.workload == workload}

    def to_csv(self) -> str:
        lines = ["workload,topology,family,t,u,makespan_s,num_flows,"
                 "events,reallocations,wall_s,faults,routing"]
        for r in self.records:
            if r.faults:
                faults = (f"{r.faults['cables']}c+{r.faults['uplinks']}u"
                          f"@s{r.faults['seed']}")
            else:
                faults = ""
            lines.append(
                f"{r.workload},{r.topology},{r.family},"
                f"{'' if r.t is None else r.t},{'' if r.u is None else r.u},"
                f"{r.makespan!r},{r.num_flows},{r.events},"
                f"{r.reallocations},{r.wall_seconds:.3f},{faults},"
                f"{r.routing}")
        return "\n".join(lines) + "\n"


class DesignSpaceExplorer:
    """Builds and runs the paper's topology x workload cross product."""

    def __init__(self, endpoints: int = DEFAULT_ENDPOINTS, *,
                 configs: Sequence[tuple[int, int]] = PAPER_CONFIGS,
                 fidelity: str = "approx",
                 quadratic_tasks: int = DEFAULT_QUADRATIC_TASKS,
                 seed: int = 0,
                 include_baselines: bool = True,
                 progress: bool = False) -> None:
        self.endpoints = endpoints
        # design points whose subtorus does not tile the system are skipped
        # (e.g. t=8 needs at least 512 endpoints)
        self.configs, self.skipped_configs = partition_tileable(
            endpoints, configs)
        self.fidelity = fidelity
        self.quadratic_tasks = quadratic_tasks
        self.seed = seed
        self.include_baselines = include_baselines
        self.progress = progress
        self._topologies: dict[str, Topology] = {}

    # -------------------------------------------------------------- topology
    def topology_specs(self) -> list[TopologySpec]:
        specs = hybrid_specs(self.configs)
        if self.include_baselines:
            specs += baseline_specs()
        return specs

    def topology(self, spec: TopologySpec) -> Topology:
        """Build (or fetch from cache) the topology for a spec."""
        label = spec.label()
        if label not in self._topologies:
            self._log(f"building {label} @ {self.endpoints} endpoints")
            self._topologies[label] = spec.build(self.endpoints)
        return self._topologies[label]

    # -------------------------------------------------------------- workload
    def workload_spec(self, name: str) -> WorkloadSpec:
        """Default spec for a workload name (task caps per DESIGN.md)."""
        return workload_spec_for(name, self.endpoints,
                                 quadratic_tasks=self.quadratic_tasks)

    def _placement(self, workload: str, tasks: int) -> np.ndarray | None:
        if tasks == self.endpoints:
            return None  # identity
        policy = PLACEMENT_POLICY.get(workload, "spread")
        return placement_mod.by_name(policy, tasks, self.endpoints,
                                     seed=self.seed)

    # ------------------------------------------------------------------ plan
    def plan(self, workload_names: Iterable[str], *,
             workload_params: dict[str, dict] | None = None,
             fail_links: int = 0, fail_uplinks: int = 0,
             fail_seed: int = 0,
             routing: str = "deterministic"):
        """The sweep plan for these workloads (workload-major cell order).

        ``fail_links``/``fail_uplinks``/``fail_seed`` inject reproducible
        faults into every cell; uplink-port faults only apply to the hybrid
        families (the baselines have no uplink ports, so their cells run
        with cable faults only).  ``routing`` selects the candidate-set
        policy every cell simulates under (see :mod:`repro.routing.policy`).
        """
        from repro.core.config import HYBRID_FAMILIES
        from repro.routing import validate_policy
        from repro.sweep import SweepCell, SweepPlan

        routing = validate_policy(routing)
        params = workload_params or {}
        cells = []
        for wname in workload_names:
            spec = self.workload_spec(wname)
            if wname in params:
                spec = WorkloadSpec(spec.name, spec.tasks, params[wname])
            policy = PLACEMENT_POLICY.get(wname, "spread")
            for tspec in self.topology_specs():
                uplinks = (fail_uplinks if tspec.family in HYBRID_FAMILIES
                           else 0)
                cells.append(SweepCell(workload=spec, topology=tspec,
                                       placement=policy,
                                       fail_links=fail_links,
                                       fail_uplinks=uplinks,
                                       fail_seed=fail_seed,
                                       routing=routing))
        return SweepPlan(endpoints=self.endpoints, fidelity=self.fidelity,
                         seed=self.seed, cells=tuple(cells))

    # ------------------------------------------------------------------- run
    def run(self, workload_names: Iterable[str], *,
            workload_params: dict[str, dict] | None = None,
            jobs: int = 1,
            checkpoint: str | None = None,
            resume: bool = False,
            fail_links: int = 0, fail_uplinks: int = 0, fail_seed: int = 0,
            keep_going: bool = False,
            cell_timeout: float | None = None,
            metrics: str | None = None,
            routing: str = "deterministic") -> ResultTable:
        """Simulate every workload on every topology of the design space.

        ``jobs`` > 1 fans the sweep out over a process pool (one topology
        group per worker at a time); ``checkpoint`` names a JSONL file that
        receives each cell as it completes, and ``resume=True`` skips the
        cells already recorded there.  Serial and parallel runs return
        identical tables (wall-clock fields aside).  The ``fail_*`` knobs
        run the whole sweep on a degraded network (see :meth:`plan`);
        ``keep_going`` and ``cell_timeout`` harden long sweeps (see
        :func:`repro.sweep.run_sweep`).  ``metrics`` names a JSONL file
        that receives one schema-versioned observability record per cell
        (instrumented engine runs; see ``docs/observability.md``).
        """
        from repro.sweep import run_sweep

        if self.skipped_configs:
            self._log(f"skipping design points that do not tile "
                      f"{self.endpoints} endpoints: {self.skipped_configs}")
        plan = self.plan(workload_names, workload_params=workload_params,
                         fail_links=fail_links, fail_uplinks=fail_uplinks,
                         fail_seed=fail_seed, routing=routing)
        records = run_sweep(
            plan, jobs=jobs, checkpoint=checkpoint, resume=resume,
            log=self._log if self.progress else None,
            topology_provider=self.topology,
            keep_going=keep_going, cell_timeout=cell_timeout,
            metrics_path=metrics)
        table = ResultTable(endpoints=self.endpoints, fidelity=self.fidelity)
        for record in records:
            table.add(record)
        return table

    def _log(self, msg: str) -> None:
        if self.progress:
            print(f"[explorer] {msg}", file=sys.stderr, flush=True)
