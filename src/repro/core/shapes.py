"""Programmatic checks of the paper's qualitative claims ("shapes").

The reproduction cannot (and need not) match the paper's absolute numbers —
its substrate was the authors' C simulator at 131,072 endpoints — but the
*orderings* it reports (who wins, by roughly what factor, where trends
invert) are checkable.  Each function below evaluates one Section 5.2 claim
against a :class:`~repro.core.explorer.ResultTable` and returns a verdict
plus the measured evidence; the figure benches and EXPERIMENTS.md consume
these.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.explorer import ResultTable
from repro.core.paperdata import FigureClaim, claims_for


def _series(table: ResultTable, workload: str) -> dict[str, float]:
    return table.normalised(workload)


def _hybrid_values(norm: dict[str, float], family: str, *,
                   u_max: int | None = None) -> list[float]:
    out = []
    for label, v in norm.items():
        if not label.startswith(family + "("):
            continue
        t, u = (int(x) for x in label[len(family) + 1:-1].split(","))
        if u_max is None or u <= u_max:
            out.append(v)
    return out


def _check_unstructuredapp(norm: dict[str, float]) -> tuple[bool, str]:
    dense = _hybrid_values(norm, "nestghc", u_max=2) \
        + _hybrid_values(norm, "nesttree", u_max=2)
    best = min(dense)
    torus = norm["torus"]
    ok = best <= 1.15 and torus > max(1.5, best * 1.5)
    return ok, f"best dense hybrid {best:.2f}x fattree, torus {torus:.2f}x"


def _check_unstructuredhr(norm: dict[str, float]) -> tuple[bool, str]:
    ghc = float(np.mean(_hybrid_values(norm, "nestghc")))
    tree = float(np.mean(_hybrid_values(norm, "nesttree")))
    ok = ghc <= tree * 1.02
    return ok, f"mean NestGHC {ghc:.2f} vs NestTree {tree:.2f}"


def _check_bisection(norm: dict[str, float]) -> tuple[bool, str]:
    ghc = float(np.mean(_hybrid_values(norm, "nestghc")))
    tree = float(np.mean(_hybrid_values(norm, "nesttree")))
    ok = tree < ghc
    return ok, f"mean NestTree {tree:.2f} vs NestGHC {ghc:.2f}"


def _check_allreduce(norm: dict[str, float]) -> tuple[bool, str]:
    dense = min(_hybrid_values(norm, "nestghc", u_max=2)
                + _hybrid_values(norm, "nesttree", u_max=2))
    if "nesttree(8,8)" not in norm:  # scaled-down sweep without t=8
        ok = dense <= 1.3
        return ok, (f"best dense hybrid {dense:.2f}x "
                    f"((8,8) not evaluable at this scale)")
    sparse = max(norm["nestghc(8,8)"], norm["nesttree(8,8)"])
    ok = dense <= 1.3 and sparse >= dense * 1.5
    return ok, f"best dense hybrid {dense:.2f}x, (8,8) hybrids {sparse:.2f}x"


def _check_nbodies(norm: dict[str, float]) -> tuple[bool, str]:
    torus = norm["torus"]
    tight = min(norm.get("nestghc(2,1)", np.inf), norm.get("nesttree(2,1)", np.inf))
    loose = max(norm.get("nestghc(8,8)", 0), norm.get("nesttree(8,8)", 0))
    ok = torus >= 2.0 and loose > tight
    return ok, (f"torus {torus:.2f}x; hybrids degrade "
                f"{tight:.2f} -> {loose:.2f} from (2,1) to (8,8)")


def _check_nearneighbors(norm: dict[str, float]) -> tuple[bool, str]:
    torus = norm["torus"]
    ok = torus > 1.0
    return ok, f"torus {torus:.2f}x the fattree despite the matched pattern"


def _check_unstructuredmgnt(norm: dict[str, float]) -> tuple[bool, str]:
    vals = [v for k, v in norm.items() if k != "torus"]
    spread = max(vals) / min(vals)
    ok = spread <= 2.5
    return ok, f"hybrid/fattree spread {spread:.2f}x (light load)"


def _check_mapreduce(norm: dict[str, float]) -> tuple[bool, str]:
    torus = norm["torus"]
    best_hybrid = min(_hybrid_values(norm, "nestghc")
                      + _hybrid_values(norm, "nesttree"))
    ok = torus <= best_hybrid * 1.1
    return ok, f"torus {torus:.2f}x vs best hybrid {best_hybrid:.2f}x"


def _check_reduce(norm: dict[str, float]) -> tuple[bool, str]:
    vals = list(norm.values())
    spread = max(vals) / min(vals)
    ok = spread <= 1.1
    return ok, f"all topologies within {spread:.3f}x of each other"


def _check_inverted_trend(norm: dict[str, float]) -> tuple[bool, str]:
    torus = norm["torus"]
    best_other = min(v for k, v in norm.items() if k != "torus")
    big = [v for k, v in norm.items()
           if k.startswith(("nestghc(8", "nesttree(8"))]
    small = [v for k, v in norm.items()
             if k.startswith(("nestghc(2", "nesttree(2"))]
    if not big or not small:  # scaled-down sweep without both t extremes
        ok = torus <= best_other * 1.05
        return ok, f"torus {torus:.2f}x (t-trend not evaluable at this scale)"
    helps = float(np.mean(big)) <= float(np.mean(small)) * 1.05
    ok = torus <= best_other * 1.05 and helps
    return ok, (f"torus {torus:.2f}x (best), t=8 hybrids mean "
                f"{np.mean(big):.2f} vs t=2 mean {np.mean(small):.2f}")


_CHECKS: dict[str, Callable[[dict[str, float]], tuple[bool, str]]] = {
    "unstructuredapp": _check_unstructuredapp,
    "unstructuredhr": _check_unstructuredhr,
    "bisection": _check_bisection,
    "allreduce": _check_allreduce,
    "nbodies": _check_nbodies,
    "nearneighbors": _check_nearneighbors,
    "unstructuredmgnt": _check_unstructuredmgnt,
    "mapreduce": _check_mapreduce,
    "reduce": _check_reduce,
    "flood": _check_inverted_trend,
    "sweep3d": _check_inverted_trend,
}


def evaluate_claims(table: ResultTable, figure_no: int
                    ) -> list[tuple[FigureClaim, bool, str]]:
    """Evaluate every claim of one figure against a sweep's results."""
    out = []
    present = set(table.workloads())
    for claim in claims_for(figure_no):
        if claim.workload not in present:
            continue
        norm = _series(table, claim.workload)
        verdict, detail = _CHECKS[claim.workload](norm)
        out.append((claim, verdict, detail))
    return out
