"""The paper's published numbers, for side-by-side comparison output.

Everything here is transcribed from Navaridas et al., ICPP 2019 (Tables 1
and 2 and the Section 5 discussion).  The harness prints these next to our
measured values; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

#: System size of the paper's evaluation (Section 5).
PAPER_ENDPOINTS = 131_072

#: Table 1 — average distance and diameter per (t, u) design point.
#: Keys: (t, u) -> (avg_ghc, avg_tree, diam_ghc, diam_tree).
TABLE1 = {
    (2, 8): (8.75, 8.88, 12, 12),
    (2, 4): (7.31, 7.44, 8, 8),
    (2, 2): (6.84, 6.97, 8, 8),
    (2, 1): (5.87, 5.98, 6, 6),
    (4, 8): (8.69, 8.87, 12, 12),
    (4, 4): (7.31, 7.44, 8, 8),
    (4, 2): (6.84, 6.97, 8, 8),
    (4, 1): (5.87, 5.98, 6, 6),
    (8, 8): (8.72, 8.87, 12, 12),
    (8, 4): (7.32, 7.44, 11, 11),
    (8, 2): (6.85, 6.97, 11, 11),
    (8, 1): (5.88, 5.99, 11, 11),
}

#: Table 1 footnote reference values.
FATTREE_AVG_DISTANCE = 5.94
FATTREE_DIAMETER = 6
TORUS_AVG_DISTANCE = 40.0
TORUS_DIAMETER = 80

#: Table 2 — switches and cost/power overheads (percent).
#: Keys: (t, u) -> (switches_ghc, switches_tree, cost_ghc%, cost_tree%,
#:                  power_ghc%, power_tree%).  Values depend only on u.
TABLE2 = {
    (2, 8): (2048, 2048, 1.17, 1.17, 0.39, 0.39),
    (2, 4): (3072, 3072, 1.76, 1.76, 0.59, 0.59),
    (2, 2): (5120, 5120, 2.93, 2.93, 0.98, 0.98),
    (2, 1): (8192, 9216, 4.69, 5.27, 1.56, 1.76),
    (4, 8): (2048, 2048, 1.17, 1.17, 0.39, 0.39),
    (4, 4): (3072, 3072, 1.76, 1.76, 0.59, 0.59),
    (4, 2): (5120, 5120, 2.93, 2.93, 0.98, 0.98),
    (4, 1): (8192, 9216, 4.69, 5.27, 1.56, 1.76),
    (8, 8): (2048, 2048, 1.17, 1.17, 0.39, 0.39),
    (8, 4): (3072, 3072, 1.76, 1.76, 0.59, 0.59),
    (8, 2): (5120, 5120, 2.93, 2.93, 0.98, 0.98),
    (8, 1): (8192, 9216, 4.69, 5.27, 1.56, 1.76),
}

#: Table 2 footnote: the standalone fattree baseline.
FATTREE_SWITCHES = 9216
FATTREE_COST_PCT = 5.27
FATTREE_POWER_PCT = 1.76


@dataclass(frozen=True)
class FigureClaim:
    """A qualitative, checkable claim the paper makes about one workload."""

    workload: str
    figure: int
    claim: str


#: Section 5.2 claims, used by the figure benches' shape checks and
#: EXPERIMENTS.md.  Each claim is verified programmatically where possible.
FIGURE_CLAIMS = (
    FigureClaim("unstructuredapp", 4,
                "dense hybrids (u<=2) match or beat the fattree; torus is "
                "several times slower"),
    FigureClaim("unstructuredhr", 4,
                "NestGHC executes quicker than NestTree (hot-receiver "
                "traffic), torus is worst"),
    FigureClaim("bisection", 4,
                "the fattree upper tier beats the GHC upper tier by a "
                "clear margin"),
    FigureClaim("allreduce", 4,
                "hybrids with dense uplinks track the fattree; sparse "
                "uplinks with big subtori degrade sharply"),
    FigureClaim("nbodies", 4,
                "torus is up to an order of magnitude slower; hybrid "
                "performance degrades as t and u grow"),
    FigureClaim("nearneighbors", 4,
                "despite the grid-matched pattern, the torus loses to the "
                "fattree and dense hybrids (all nodes send at once)"),
    FigureClaim("unstructuredmgnt", 5,
                "differences are small (light load); sparse/big-subtorus "
                "hybrids are moderately slower"),
    FigureClaim("mapreduce", 5,
                "the torus wins by a slim margin; growing the subtorus "
                "still hurts the hybrids"),
    FigureClaim("reduce", 5,
                "all topologies perform identically: the root's consumption "
                "port serialises delivery"),
    FigureClaim("flood", 5,
                "trend inverts: the torus wins and longer subtorus "
                "dimensions help the hybrids"),
    FigureClaim("sweep3d", 5,
                "trend inverts: the torus wins and longer subtorus "
                "dimensions help the hybrids"),
)


def claims_for(figure: int) -> list[FigureClaim]:
    """All claims attached to one figure."""
    return [c for c in FIGURE_CLAIMS if c.figure == figure]
