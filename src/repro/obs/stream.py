"""JSONL metrics stream for sweeps (the ``--metrics out.jsonl`` flag).

One schema-versioned JSON record per sweep cell, written as cells
complete.  The stream is *regenerated* on every run (opened ``"w"``, never
appended): on a resumed sweep the parent first replays the metrics already
stored in the checkpoint's cell records, then streams the freshly computed
cells — so a kill/resume cycle still ends with exactly one record per
cell.  Keys are deduplicated at write time, which also absorbs the
parallel runner's crash-retry deliveries.

Record layout (one line each)::

    {"schema": "repro-sweep-metrics-v1", "key": ..., "workload": ...,
     "topology": ..., "family": ..., "t": ..., "u": ..., "faults": ...,
     "makespan": ..., "wall_seconds": ..., "metrics": {<engine snapshot,
     see repro.obs.metrics.SCHEMA_VERSION>}}
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.metrics import validate_snapshot

#: Schema tag of each sweep-cell metrics record.
SWEEP_SCHEMA_VERSION = "repro-sweep-metrics-v1"

_RECORD_FIELDS = frozenset({
    "schema", "key", "workload", "topology", "makespan", "wall_seconds",
    "metrics",
})


class MetricsStream:
    """Write-once-per-cell JSONL sink bound to one sweep run.

    ``append=True`` accumulates instead of regenerating: a long-lived
    caller (the service broker) folds many small sweeps into one
    observability file.  Key dedup still applies within one stream
    instance; cross-run duplicates are the appending caller's contract
    (the broker never re-simulates a fingerprint it already served, so
    its stream stays one-record-per-cell too).
    """

    def __init__(self, path: str | os.PathLike, *,
                 append: bool = False) -> None:
        self.path = Path(path)
        self._fh = None
        self._append = append
        self._seen: set[str] = set()
        self.skipped_no_metrics = 0

    def open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if self._append else "w")

    def write_cell(self, doc: dict) -> bool:
        """Emit the metrics record for one completed cell document.

        Returns ``False`` (and writes nothing) for error records, cells
        already written this run, and cells without metrics (e.g. resumed
        from a checkpoint that was recorded without ``--metrics``) — the
        last case is counted in :attr:`skipped_no_metrics` so the caller
        can warn.
        """
        if self._fh is None:
            raise ConfigError("metrics stream is not open")
        if "error" in doc or doc["key"] in self._seen:
            return False
        metrics = doc.get("metrics")
        if metrics is None:
            self.skipped_no_metrics += 1
            return False
        record = {
            "schema": SWEEP_SCHEMA_VERSION,
            "key": doc["key"],
            "workload": doc["workload"],
            "topology": doc["topology"],
            "family": doc.get("family"),
            "t": doc.get("t"),
            "u": doc.get("u"),
            "faults": doc.get("faults"),
            "makespan": doc["makespan"],
            "wall_seconds": doc["wall_seconds"],
            "metrics": metrics,
        }
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self._seen.add(doc["key"])
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> MetricsStream:
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def validate_record(doc: dict) -> None:
    """Raise :class:`~repro.errors.ConfigError` unless ``doc`` is a valid
    sweep-cell metrics record (wrapper fields plus the nested snapshot)."""
    if not isinstance(doc, dict):
        raise ConfigError(f"metrics record must be a dict, got {type(doc)}")
    if doc.get("schema") != SWEEP_SCHEMA_VERSION:
        raise ConfigError(
            f"unknown sweep-metrics schema {doc.get('schema')!r}; "
            f"expected {SWEEP_SCHEMA_VERSION!r}")
    missing = _RECORD_FIELDS - doc.keys()
    if missing:
        raise ConfigError(f"metrics record missing fields: {sorted(missing)}")
    if not isinstance(doc["key"], str):
        raise ConfigError("metrics record key must be a string")
    validate_snapshot(doc["metrics"])


def validate_metrics_file(path: str | os.PathLike) -> int:
    """Validate every record of a ``--metrics`` JSONL file.

    Returns the number of records; raises on an undecodable line, an
    invalid record, or a duplicated cell key.  Used by the CI smoke job
    and the test suite.
    """
    seen: set[str] = set()
    count = 0
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{lineno}: undecodable metrics line: {exc}"
                ) from None
            validate_record(doc)
            if doc["key"] in seen:
                raise ConfigError(
                    f"{path}:{lineno}: duplicate metrics record for cell "
                    f"{doc['key']!r}")
            seen.add(doc["key"])
            count += 1
    return count
