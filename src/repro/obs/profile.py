"""Plain-text rendering of a metrics snapshot (the ``repro profile`` CLI).

Renders the per-tier utilisation table and the wall-clock timing table
from a :meth:`repro.obs.metrics.MetricsCollector.snapshot` record.  The
tier table's ``delivered`` column sums to the run's total delivered link
bits, so a reader can see at a glance which tier carried the traffic —
the question behind the paper's Figure 4/5 anomalies.
"""

from __future__ import annotations

from repro.errors import ConfigError


def _fmt_bits(bits: float) -> str:
    for unit, scale in (("Tb", 1e12), ("Gb", 1e9), ("Mb", 1e6), ("kb", 1e3)):
        if bits >= scale:
            return f"{bits / scale:.3g}{unit}"
    return f"{bits:.3g}b"


def tier_table(snapshot: dict) -> str:
    """The per-tier utilisation table of one snapshot."""
    lines = [f"{'tier':>14} {'links':>7} {'delivered':>11} {'share':>7} "
             f"{'occupancy':>10} {'mean util':>10} {'peak util':>10}"]
    lines.append("-" * len(lines[0]))
    total_bits = snapshot["delivered_link_bits"]
    total_links = 0
    for name, tier in snapshot["tiers"].items():
        share = tier["delivered_bits"] / total_bits if total_bits else 0.0
        total_links += tier["links"]
        lines.append(
            f"{name:>14} {tier['links']:>7d} "
            f"{_fmt_bits(tier['delivered_bits']):>11} {share * 100:>6.1f}% "
            f"{tier['occupancy'] * 100:>9.1f}% "
            f"{tier['mean_utilisation'] * 100:>9.1f}% "
            f"{tier['peak_utilisation'] * 100:>9.1f}%")
    lines.append(
        f"{'total':>14} {total_links:>7d} {_fmt_bits(total_bits):>11} "
        f"{100.0:>6.1f}%")
    return "\n".join(lines)


def timing_table(snapshot: dict) -> str:
    """Span timers and allocator statistics of one snapshot."""
    alloc = snapshot["allocator"]
    timers = snapshot["timers_s"]
    lines = ["Timing (wall-clock spans):"]
    for name in ("route_construction", "allocation", "event_loop"):
        if name in timers:
            lines.append(f"  {name.replace('_', ' '):>20}: "
                         f"{timers[name]:9.4f} s")
    for name, seconds in timers.items():
        if name not in ("route_construction", "allocation", "event_loop"):
            lines.append(f"  {name.replace('_', ' '):>20}: {seconds:9.4f} s")
    mean_batch = (alloc["batch_flows_total"] / alloc["allocations"]
                  if alloc["allocations"] else 0.0)
    warm = alloc.get("warm_reallocations", 0)
    warm_note = f", {warm} warm-filled" if warm else ""
    lines.append(
        f"Allocator: {alloc['allocations']} allocations "
        f"({alloc['forced_reallocations']} forced, "
        f"{alloc['churn_reallocations']} churn-triggered, "
        f"{alloc['initial_allocations']} initial{warm_note}); "
        f"mean batch {mean_batch:.1f} flows "
        f"(max {alloc['batch_flows_max']}), "
        f"{alloc['filling_iterations_total']} filling iterations "
        f"(max {alloc['filling_iterations_max']}/allocation)")
    lines.append(
        f"Flows: {snapshot['network_flows']} networked "
        f"+ {snapshot['zero_hop_flows']} zero-hop; "
        f"{snapshot['events']} events; "
        f"{_fmt_bits(snapshot['injected_bits'])} injected, "
        f"{_fmt_bits(snapshot['delivered_link_bits'])} delivered over links")
    return "\n".join(lines)


def profile_report(snapshot: dict | None) -> str:
    """Full profile text: tier utilisation plus timing/allocator tables."""
    if snapshot is None:
        raise ConfigError(
            "no metrics snapshot on this result; run simulate() with a "
            "MetricsCollector")
    header = (f"Per-tier link accounting "
              f"(makespan {snapshot['makespan_s'] * 1e3:.3f} ms):")
    return "\n".join([header, tier_table(snapshot), "", timing_table(snapshot)])
