"""Opt-in engine instrumentation (the ``repro.obs`` collector).

The simulator reports *what* happened (makespan, event count); this module
records *why*: which links carried the bits, how long each tier stayed
busy, how the allocator's batches behaved, and where the wall-clock time
went.  A :class:`MetricsCollector` is handed to
:func:`repro.engine.simulate` via its ``metrics`` keyword; the default
(``None``) leaves the hot path untouched — every instrumentation site is
gated on ``collector is not None``, so a metrics-off run executes the same
instructions as before the layer existed.

What the engine feeds the collector:

* per-link **delivered bits** (``rate * dt`` accumulated per traversed
  link per event) and **busy time** (seconds during which a link carried
  at least one flow);
* per-allocation **batch size**, **progressive-filling iterations** and
  the trigger (``forced`` for exact mode's per-event reallocation,
  ``churn``/``initial`` for approx mode's bounded-churn policy, ``warm``
  for the incremental allocator's O(changed) warm-started fills);
* **span timers** around route construction, bandwidth allocation, and
  the whole event loop.

:meth:`MetricsCollector.snapshot` folds the per-link vectors through the
topology's :meth:`~repro.topology.base.Topology.link_tiers` metadata into
a schema-versioned, JSON-serialisable record, so a Figure 4/5 anomaly can
be explained as "the uplinks tier ran at 97% occupancy".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Schema tag stamped on every snapshot; bump when the layout changes.
SCHEMA_VERSION = "repro-metrics-v1"

#: Keys every snapshot must carry to validate.
_SNAPSHOT_FIELDS = frozenset({
    "schema", "makespan_s", "events", "network_flows", "zero_hop_flows",
    "injected_bits", "routed_link_bits", "delivered_link_bits",
    "allocator", "timers_s", "tiers",
})

#: Keys of each per-tier summary.
_TIER_FIELDS = frozenset({
    "links", "delivered_bits", "busy_seconds", "capacity_bits_per_s",
    "mean_utilisation", "peak_utilisation", "occupancy",
})

_ALLOCATOR_FIELDS = frozenset({
    "allocations", "batch_flows_total", "batch_flows_max",
    "filling_iterations_total", "filling_iterations_max",
    "churn_reallocations", "forced_reallocations", "initial_allocations",
})


class MetricsCollector:
    """Accumulates one simulation's instrumentation (see module docstring).

    One collector serves one :func:`~repro.engine.simulate` call; sized to
    the topology's link table so per-link accumulation is plain vectorised
    indexing.
    """

    def __init__(self, num_links: int) -> None:
        if num_links < 0:
            raise ConfigError(f"num_links must be >= 0, got {num_links}")
        self.link_bits = np.zeros(num_links, dtype=np.float64)
        self.link_busy = np.zeros(num_links, dtype=np.float64)
        self.events = 0
        self.network_flows = 0
        self.zero_hop_flows = 0
        self.injected_bits = 0.0
        self.routed_link_bits = 0.0   # sum over flows of size * route length
        self.allocations = 0
        self.batch_flows_total = 0
        self.batch_flows_max = 0
        self.filling_iterations_total = 0
        self.filling_iterations_max = 0
        self.alloc_reasons = {"forced": 0, "churn": 0, "initial": 0,
                              "warm": 0}
        self.timers_s: dict[str, float] = {}
        self.routing = "deterministic"
        self.transient: dict | None = None

    def set_routing(self, policy: str) -> None:
        """Record which routing policy the engine ran under (snapshotted)."""
        self.routing = policy

    # ------------------------------------------------------------- feed sites
    def flow_injected(self, size_bits: float, route_len: int) -> None:
        """A flow entered the network (zero-hop flows report length 0)."""
        if route_len:
            self.network_flows += 1
            self.injected_bits += size_bits
            self.routed_link_bits += size_bits * route_len
        else:
            self.zero_hop_flows += 1

    def account_event(self, route_list: list[np.ndarray],
                      rates: np.ndarray, dt: float) -> None:
        """One event-loop step: every active flow moved ``rate * dt`` bits
        over every link of its route, and each touched link was busy for
        ``dt`` seconds."""
        self.events += 1
        if dt <= 0.0 or not route_list:
            return
        lens = np.fromiter((r.shape[0] for r in route_list),
                           dtype=np.int64, count=len(route_list))
        entries = np.concatenate(route_list)
        # bincount beats np.add.at by a wide margin on repeated indices;
        # allocated rates are strictly positive, so the non-zero pattern
        # of the moved bits doubles as the busy-link mask
        moved = np.bincount(entries, weights=np.repeat(rates * dt, lens),
                            minlength=self.link_bits.shape[0])
        self.link_bits += moved
        self.link_busy[moved > 0.0] += dt

    def record_allocation(self, batch_size: int, iterations: int,
                          reason: str, seconds: float) -> None:
        """One max-min allocation: batch size, filling rounds, trigger."""
        self.allocations += 1
        self.batch_flows_total += batch_size
        self.batch_flows_max = max(self.batch_flows_max, batch_size)
        self.filling_iterations_total += iterations
        self.filling_iterations_max = max(self.filling_iterations_max,
                                          iterations)
        self.alloc_reasons[reason] = self.alloc_reasons.get(reason, 0) + 1
        self.add_time("allocation", seconds)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time under a span name."""
        self.timers_s[name] = self.timers_s.get(name, 0.0) + seconds

    def record_transient(self, counters: dict) -> None:
        """Attach the transient engine's recovery counters (snapshotted)."""
        self.transient = dict(counters)

    # --------------------------------------------------------------- snapshot
    def snapshot(self, topology, makespan: float) -> dict:
        """Schema-versioned, JSON-serialisable summary of the run.

        Per-link vectors are folded into per-tier aggregates through the
        topology's link metadata; the tier ``delivered_bits`` columns sum
        to ``delivered_link_bits`` exactly (tiers partition the links).
        """
        names, index = topology.link_tiers()
        caps = topology.links.capacities
        tiers: dict[str, dict] = {}
        for i, name in enumerate(names):
            mask = index == i
            nlinks = int(mask.sum())
            bits = float(self.link_bits[mask].sum())
            busy = float(self.link_busy[mask].sum())
            cap = float(caps[mask].sum())
            if makespan > 0 and nlinks:
                mean_util = bits / (cap * makespan)
                peak_util = float(
                    (self.link_bits[mask] / (caps[mask] * makespan)).max())
                occupancy = busy / (nlinks * makespan)
            else:
                mean_util = peak_util = occupancy = 0.0
            tiers[name] = {
                "links": nlinks,
                "delivered_bits": bits,
                "busy_seconds": busy,
                "capacity_bits_per_s": cap,
                "mean_utilisation": mean_util,
                "peak_utilisation": peak_util,
                "occupancy": occupancy,
            }
        out = {
            "schema": SCHEMA_VERSION,
            # extra key relative to _SNAPSHOT_FIELDS: validation checks
            # missing fields only, so older snapshots keep validating
            "routing": self.routing,
            "makespan_s": float(makespan),
            "events": self.events,
            "network_flows": self.network_flows,
            "zero_hop_flows": self.zero_hop_flows,
            "injected_bits": self.injected_bits,
            "routed_link_bits": self.routed_link_bits,
            "delivered_link_bits": float(self.link_bits.sum()),
            "allocator": {
                "allocations": self.allocations,
                "batch_flows_total": self.batch_flows_total,
                "batch_flows_max": self.batch_flows_max,
                "filling_iterations_total": self.filling_iterations_total,
                "filling_iterations_max": self.filling_iterations_max,
                "churn_reallocations": self.alloc_reasons.get("churn", 0),
                "forced_reallocations": self.alloc_reasons.get("forced", 0),
                "initial_allocations": self.alloc_reasons.get("initial", 0),
                # not in _ALLOCATOR_FIELDS: snapshots written before the
                # incremental allocator existed must keep validating
                "warm_reallocations": self.alloc_reasons.get("warm", 0),
                # likewise post-dates the schema: fault-boundary reallocs
                "fault_reallocations": self.alloc_reasons.get("fault", 0),
            },
            "timers_s": {k: float(v) for k, v in sorted(self.timers_s.items())},
            "tiers": tiers,
        }
        if self.transient is not None:
            # extra key (validation checks missing fields only): recovery
            # counters from the transient engine, absent on healthy runs
            out["transient"] = dict(self.transient)
        return out


def validate_snapshot(doc: dict) -> None:
    """Raise :class:`~repro.errors.ConfigError` unless ``doc`` is a valid
    :data:`SCHEMA_VERSION` snapshot (shape and basic sanity, not values)."""
    if not isinstance(doc, dict):
        raise ConfigError(f"metrics snapshot must be a dict, got {type(doc)}")
    if doc.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"unknown metrics schema {doc.get('schema')!r}; "
            f"expected {SCHEMA_VERSION!r}")
    missing = _SNAPSHOT_FIELDS - doc.keys()
    if missing:
        raise ConfigError(f"metrics snapshot missing fields: {sorted(missing)}")
    alloc = doc["allocator"]
    if not isinstance(alloc, dict) or _ALLOCATOR_FIELDS - alloc.keys():
        raise ConfigError("metrics snapshot has a malformed allocator block")
    tiers = doc["tiers"]
    if not isinstance(tiers, dict) or not tiers:
        raise ConfigError("metrics snapshot has no tier breakdown")
    for name, tier in tiers.items():
        if not isinstance(tier, dict) or _TIER_FIELDS - tier.keys():
            raise ConfigError(f"tier {name!r} summary is malformed")
        if tier["links"] < 0 or tier["delivered_bits"] < 0:
            raise ConfigError(f"tier {name!r} has negative aggregates")
    total = sum(t["delivered_bits"] for t in tiers.values())
    delivered = doc["delivered_link_bits"]
    if abs(total - delivered) > 1e-6 * max(1.0, abs(delivered)):
        raise ConfigError(
            f"tier delivered_bits sum {total} != delivered_link_bits "
            f"{delivered}")
