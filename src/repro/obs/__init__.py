"""Observability layer: opt-in metrics, link accounting, profiling hooks.

``repro.obs`` instruments the engine and the sweep without touching their
defaults: :class:`MetricsCollector` is a pay-only-if-used collector that
:func:`repro.engine.simulate` feeds when (and only when) one is passed;
:class:`MetricsStream` turns sweep cells into a schema-versioned JSONL
stream (the ``--metrics`` CLI flag); :func:`profile_report` renders a
snapshot as the ``repro profile`` tier-utilisation and timing tables.

See ``docs/observability.md`` for the schema and overhead numbers.
"""

from repro.obs.metrics import (SCHEMA_VERSION, MetricsCollector,
                               validate_snapshot)
from repro.obs.profile import profile_report, tier_table, timing_table
from repro.obs.stream import (SWEEP_SCHEMA_VERSION, MetricsStream,
                              validate_metrics_file, validate_record)

__all__ = [
    "SCHEMA_VERSION",
    "SWEEP_SCHEMA_VERSION",
    "MetricsCollector",
    "MetricsStream",
    "profile_report",
    "tier_table",
    "timing_table",
    "validate_metrics_file",
    "validate_record",
    "validate_snapshot",
]
