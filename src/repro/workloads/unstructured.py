"""Unstructured workloads: App, Mgnt, HR and Bisection.

Paper Section 4.1 models four applications without spatial structure:

* **UnstructuredApp** — fixed-length messages between uniformly random
  pairs: "an unstructured application in which data has been partitioned
  evenly across the tasks".  All messages are independent, so the whole
  system injects at once (heavy).
* **UnstructuredMgnt** — "follows the traffic size distribution produced by
  the management software in common large-scale systems" (Kandula et al.,
  IMC'09): overwhelmingly mice flows with a heavy elephant tail.  Each
  task's messages are sequential, limiting concurrency (light).
* **UnstructuredHR** — "a subset of the tasks is more likely to be targeted
  as destinations (Hot tasks)" (heavy).
* **Bisection** — "tasks perform pair-wise communications swapping pairs
  randomly every round": a fresh random perfect matching per round, both
  directions at once — the classic bisection-bandwidth stressor (heavy).
"""

from __future__ import annotations

import numpy as np

from repro.engine.flows import FlowBuilder, FlowSet
from repro.units import KiB, MiB
from repro.workloads.base import (HEAVY, LIGHT, Workload, random_destinations,
                                  random_matching)

#: Fixed message payload for App/HR/Bisection.
DEFAULT_MESSAGE = 256 * KiB
DEFAULT_BISECTION_MESSAGE = 1 * MiB


class UnstructuredApp(Workload):
    """Independent fixed-size messages between uniformly random pairs."""

    name = "unstructuredapp"
    classification = HEAVY

    def __init__(self, num_tasks: int, *, messages_per_task: int = 8,
                 message_size: float = DEFAULT_MESSAGE, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if messages_per_task < 1:
            raise ValueError("messages_per_task must be >= 1")
        self.messages_per_task = messages_per_task
        self.message_size = message_size

    def build(self) -> FlowSet:
        rng = self.rng()
        b = FlowBuilder(self.num_tasks)
        srcs = np.repeat(np.arange(self.num_tasks), self.messages_per_task)
        dsts = random_destinations(rng, self.num_tasks, srcs)
        for s, d in zip(srcs.tolist(), dsts.tolist()):
            b.add_flow(s, d, self.message_size)
        return b.build()


class UnstructuredMgnt(Workload):
    """Datacentre management traffic: mice-dominated sizes, per-task chains.

    Sizes follow a three-component mixture calibrated to the shape reported
    by Kandula et al. (IMC'09): ~80% of flows are mice (2 KiB - 32 KiB),
    ~15% mid-size (32 KiB - 1 MiB) and ~5% elephants (1 MiB - 16 MiB), each
    log-uniform within its band.  Each task issues its messages one after
    another, so only one flow per task is in flight (light).
    """

    name = "unstructuredmgnt"
    classification = LIGHT

    #: (probability, low bits, high bits) of each mixture band.
    SIZE_BANDS = (
        (0.80, 2 * KiB, 32 * KiB),
        (0.15, 32 * KiB, 1 * MiB),
        (0.05, 1 * MiB, 16 * MiB),
    )

    def __init__(self, num_tasks: int, *, messages_per_task: int = 16,
                 seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if messages_per_task < 1:
            raise ValueError("messages_per_task must be >= 1")
        self.messages_per_task = messages_per_task

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` flow sizes (bits) from the mixture."""
        probs = np.array([p for p, _, _ in self.SIZE_BANDS])
        lows = np.array([lo for _, lo, _ in self.SIZE_BANDS])
        highs = np.array([hi for _, _, hi in self.SIZE_BANDS])
        band = rng.choice(len(self.SIZE_BANDS), size=n, p=probs / probs.sum())
        u = rng.random(n)
        return np.exp(np.log(lows[band]) * (1 - u) + np.log(highs[band]) * u)

    def build(self) -> FlowSet:
        rng = self.rng()
        b = FlowBuilder(self.num_tasks)
        n = self.num_tasks * self.messages_per_task
        srcs = np.repeat(np.arange(self.num_tasks), self.messages_per_task)
        dsts = random_destinations(rng, self.num_tasks, srcs)
        sizes = self.sample_sizes(rng, n)
        prev: dict[int, int] = {}
        for s, d, size in zip(srcs.tolist(), dsts.tolist(), sizes.tolist()):
            after = [prev[s]] if s in prev else []
            prev[s] = b.add_flow(s, d, size, after=after)
        return b.build()


class UnstructuredHR(Workload):
    """Random traffic skewed towards a hot subset of destination tasks."""

    name = "unstructuredhr"
    classification = HEAVY

    def __init__(self, num_tasks: int, *, messages_per_task: int = 8,
                 message_size: float = DEFAULT_MESSAGE,
                 hot_fraction: float = 0.125, hot_probability: float = 0.75,
                 seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_probability <= 1:
            raise ValueError("hot_probability must be in [0, 1]")
        self.messages_per_task = messages_per_task
        self.message_size = message_size
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability

    def hot_tasks(self) -> np.ndarray:
        """The seeded hot destination subset (at least one task)."""
        count = max(1, int(round(self.num_tasks * self.hot_fraction)))
        return self.rng().permutation(self.num_tasks)[:count]

    def build(self) -> FlowSet:
        rng = self.rng()
        hot = rng.permutation(self.num_tasks)[
            :max(1, int(round(self.num_tasks * self.hot_fraction)))]
        b = FlowBuilder(self.num_tasks)
        srcs = np.repeat(np.arange(self.num_tasks), self.messages_per_task)
        n = srcs.shape[0]
        uniform = random_destinations(rng, self.num_tasks, srcs)
        hot_dst = hot[rng.integers(0, hot.shape[0], size=n)]
        use_hot = rng.random(n) < self.hot_probability
        dsts = np.where(use_hot, hot_dst, uniform)
        for s, d in zip(srcs.tolist(), dsts.tolist()):
            if s == d:  # a hot draw may hit the sender; redirect to neighbour
                d = (d + 1) % self.num_tasks
            b.add_flow(s, int(d), self.message_size)
        return b.build()


class Bisection(Workload):
    """Pair-wise exchanges over a fresh random matching every round."""

    name = "bisection"
    classification = HEAVY

    def __init__(self, num_tasks: int, *, rounds: int = 8,
                 message_size: float = DEFAULT_BISECTION_MESSAGE,
                 seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if num_tasks % 2:
            raise ValueError("bisection needs an even number of tasks")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.message_size = message_size

    def build(self) -> FlowSet:
        rng = self.rng()
        b = FlowBuilder(self.num_tasks)
        prev: dict[int, int] = {}
        for _ in range(self.rounds):
            partner = random_matching(rng, self.num_tasks)
            nxt: dict[int, int] = {}
            for task in range(self.num_tasks):
                p = int(partner[task])
                after = [prev[task]] if task in prev else []
                nxt[task] = b.add_flow(task, p, self.message_size, after=after)
            prev = nxt
        return b.build()
