"""Classic permutation traffic patterns (Dally & Towles).

Permutation patterns are the standard adversarial stressors of the
interconnection-networks literature: every task sends to exactly one
destination given by a fixed permutation of the task id's bits or digits.
They complement the paper's application models with the worst cases that
expose routing and topology asymmetries:

* **bit-reversal** — ``dst = reverse(bits(src))``; pathological for DOR
  meshes/tori,
* **bit-complement** — ``dst = ~src``; every packet crosses the bisection,
* **transpose** — swap the high and low halves of the bits (matrix
  transpose); adversarial for dimension-ordered routing,
* **shuffle** — rotate bits left by one (perfect shuffle / FFT),
* **tornado** — ``dst = src + T/2 - 1 mod T``; the classic torus killer
  (defeats wrap-around balance),
* **neighbor** — ``dst = src + 1 mod T``; the friendliest pattern, a
  locality baseline.

All patterns require a power-of-two task count except ``tornado`` and
``neighbor``.  Each task sends one fixed-size message; patterns are pure
(no randomness), so there is no seed sensitivity.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.engine.flows import FlowBuilder, FlowSet
from repro.errors import WorkloadError
from repro.units import KiB
from repro.workloads.base import EXTRA, Workload

#: Default message payload of the permutation patterns.
DEFAULT_MESSAGE = 256 * KiB


def _bits_of(num_tasks: int) -> int:
    bits = num_tasks.bit_length() - 1
    if 1 << bits != num_tasks:
        raise WorkloadError(
            f"this permutation needs a power-of-two task count, "
            f"got {num_tasks}")
    return bits


def bit_reversal(task: int, num_tasks: int) -> int:
    """Reverse the bit string of the task id."""
    bits = _bits_of(num_tasks)
    out = 0
    for i in range(bits):
        if task >> i & 1:
            out |= 1 << (bits - 1 - i)
    return out


def bit_complement(task: int, num_tasks: int) -> int:
    """Flip every bit of the task id."""
    _bits_of(num_tasks)
    return num_tasks - 1 - task


def transpose(task: int, num_tasks: int) -> int:
    """Swap the high and low halves of the bit string (needs even bits)."""
    bits = _bits_of(num_tasks)
    if bits % 2:
        raise WorkloadError(
            f"transpose needs an even number of bits, got {bits}")
    half = bits // 2
    low = task & ((1 << half) - 1)
    high = task >> half
    return (low << half) | high

def shuffle(task: int, num_tasks: int) -> int:
    """Rotate the bit string left by one (perfect shuffle)."""
    bits = _bits_of(num_tasks)
    msb = task >> (bits - 1) & 1
    return ((task << 1) & (num_tasks - 1)) | msb


def tornado(task: int, num_tasks: int) -> int:
    """Send just under half-way around the ring: ``src + T/2 - 1``."""
    offset = max(1, num_tasks // 2 - 1)
    return (task + offset) % num_tasks


def neighbor(task: int, num_tasks: int) -> int:
    """Nearest-neighbour ring: ``src + 1``."""
    return (task + 1) % num_tasks


PATTERNS: dict[str, Callable[[int, int], int]] = {
    "bitreversal": bit_reversal,
    "bitcomplement": bit_complement,
    "transpose": transpose,
    "shuffle": shuffle,
    "tornado": tornado,
    "neighbor": neighbor,
}


class Permutation(Workload):
    """One message per task along a named permutation pattern."""

    name = "permutation"
    classification = EXTRA  # beyond the paper's eleven; not in Fig. 4/5

    def __init__(self, num_tasks: int, *, pattern: str = "bitreversal",
                 message_size: float = DEFAULT_MESSAGE,
                 repetitions: int = 1, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if pattern not in PATTERNS:
            raise WorkloadError(
                f"unknown permutation {pattern!r}; "
                f"available: {sorted(PATTERNS)}")
        if repetitions < 1:
            raise WorkloadError("repetitions must be >= 1")
        self.pattern = pattern
        self.message_size = message_size
        self.repetitions = repetitions
        # validate the pattern against the task count eagerly
        fn = PATTERNS[pattern]
        self._destinations = [fn(t, num_tasks) for t in range(num_tasks)]
        if sorted(self._destinations) != list(range(num_tasks)):
            raise WorkloadError(
                f"{pattern} is not a permutation of {num_tasks} tasks")

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        prev: dict[int, int] = {}
        for _ in range(self.repetitions):
            for task, dst in enumerate(self._destinations):
                if task == dst:
                    continue
                after = [prev[task]] if task in prev else []
                prev[task] = b.add_flow(task, dst, self.message_size,
                                        after=after)
        return b.build()

    def describe(self) -> str:
        return (f"{self.name}[{self.pattern}]({self.num_tasks} tasks, "
                f"x{self.repetitions})")
