"""MapReduce workload: scatter -> all-to-all shuffle -> gather.

Per the paper (Section 4.1, after Dean & Ghemawat): "a root task partitions
and distributes the original data amongst all servers.  Once computing
nodes receive data from the root, they perform the mapping of the data and
shuffle it to the other servers in an all-to-all fashion and then send
their results back to the root."

The shuffle is quadratic in the task count, so the default task count is
kept independent of the system size (the harness spreads the tasks across
the machine with a placement); the per-task partition size is fixed, and
every shuffle fragment is ``partition / tasks``.
"""

from __future__ import annotations

from repro.engine.flows import FlowBuilder, FlowSet
from repro.units import KiB
from repro.workloads.base import LIGHT, Workload

#: Data each mapper receives from the root (and sends back reduced).
DEFAULT_PARTITION = 256 * KiB


class MapReduce(Workload):
    """Three-phase MapReduce over ``num_tasks`` workers plus a root (task 0)."""

    name = "mapreduce"
    classification = LIGHT  # paper Figure 5

    def __init__(self, num_tasks: int, *, root: int = 0,
                 partition_size: float = DEFAULT_PARTITION,
                 seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if not 0 <= root < num_tasks:
            raise ValueError(f"root {root} out of range")
        self.root = root
        self.partition_size = partition_size

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        t = self.num_tasks
        fragment = self.partition_size / t

        # phase 1: scatter
        scatter: dict[int, int] = {}
        for worker in range(t):
            if worker != self.root:
                scatter[worker] = b.add_flow(self.root, worker,
                                             self.partition_size)

        # phase 2: all-to-all shuffle (each send waits for the sender's map
        # input; the root already holds its partition)
        incoming: dict[int, list[int]] = {w: [] for w in range(t)}
        for sender in range(t):
            after = [scatter[sender]] if sender in scatter else []
            for receiver in range(t):
                if receiver == sender:
                    continue
                fid = b.add_flow(sender, receiver, fragment, after=after)
                incoming[receiver].append(fid)

        # phase 3: gather (a worker reduces once it has every fragment)
        for worker in range(t):
            if worker != self.root:
                b.add_flow(worker, self.root, self.partition_size,
                           after=incoming[worker])
        return b.build()
