"""n-Bodies workload: half-ring message circulation.

Paper Section 4.1: "tasks are arranged in a virtual ring in which each task
starts a chain of messages that travel clockwise across half of the ring."
Every task therefore injects a chain of ``T // 2`` hop flows, each hop
waiting for the previous one; all ``T`` chains circulate concurrently,
which keeps the whole ring busy (heavy, Figure 4).

The flow count is ``T * (T // 2)`` — quadratic — so like MapReduce the task
count is chosen independently of the system size.
"""

from __future__ import annotations

from repro.engine.flows import FlowBuilder, FlowSet
from repro.units import KiB
from repro.workloads.base import HEAVY, Workload

#: Default payload of each chain hop.
DEFAULT_MESSAGE = 64 * KiB


class NBodies(Workload):
    """All-pairs force exchange via half-ring circulation."""

    name = "nbodies"
    classification = HEAVY

    def __init__(self, num_tasks: int, *,
                 message_size: float = DEFAULT_MESSAGE,
                 hops: int | None = None, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        self.message_size = message_size
        self.hops = num_tasks // 2 if hops is None else hops
        if not 1 <= self.hops < num_tasks:
            raise ValueError(
                f"chain length {self.hops} invalid for {num_tasks} tasks")

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        t = self.num_tasks
        for start in range(t):
            prev: int | None = None
            for hop in range(self.hops):
                src = (start + hop) % t
                dst = (start + hop + 1) % t
                after = [prev] if prev is not None else []
                prev = b.add_flow(src, dst, self.message_size, after=after)
        return b.build()
