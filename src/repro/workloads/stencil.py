"""Grid-structured HPC workloads: Sweep3D, Flood and Near Neighbors.

All three arrange tasks in a virtual 3D grid (paper Section 4.1):

* **Sweep3D** — deterministic particle transport: a wavefront starts at one
  corner and advances diagonally towards the opposite corner; each task
  forwards to its +1 neighbours once it has heard from all its -1
  neighbours.  Causality keeps few tasks active at once (light, Figure 5).
* **Flood** — like the sweep but radiating from a central source in *all*
  directions with several wavefronts in flight simultaneously, putting much
  heavier pressure on the network — yet still causality-limited enough
  that the paper groups it with the light workloads (Figure 5).
* **Near Neighbors** — the LAMMPS/RegCM halo-exchange stencil: every task
  exchanges with its 6 (wraparound) neighbours every round, all at once
  (heavy, Figure 4).
"""

from __future__ import annotations

from repro.engine.flows import FlowBuilder, FlowSet
from repro.routing import dor
from repro.units import KiB
from repro.workloads.base import HEAVY, LIGHT, GridWorkload

#: Default wavefront / halo message payloads.
DEFAULT_SWEEP_MESSAGE = 64 * KiB
DEFAULT_HALO_MESSAGE = 256 * KiB


class Sweep3D(GridWorkload):
    """Corner-to-corner wavefront over a 3D task grid."""

    name = "sweep3d"
    classification = LIGHT

    def __init__(self, num_tasks: int, *,
                 message_size: float = DEFAULT_SWEEP_MESSAGE,
                 sweeps: int = 1, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if sweeps < 1:
            raise ValueError("sweeps must be >= 1")
        self.message_size = message_size
        self.sweeps = sweeps

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        dims = self.grid_dims
        prev_sweep_out: dict[int, list[int]] = {}
        for _ in range(self.sweeps):
            # incoming[t] — flows task t must wait for before forwarding
            incoming: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
            out: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
            # traverse in raster order: all -1 neighbours precede the task
            for task in range(self.num_tasks):
                coord = self.coord(task)
                after = incoming[task] + prev_sweep_out.get(task, [])
                for dim in range(len(dims)):
                    if coord[dim] + 1 < dims[dim]:
                        nxt = list(coord)
                        nxt[dim] += 1
                        dst = self.task(tuple(nxt))
                        fid = b.add_flow(task, dst, self.message_size,
                                         after=after)
                        incoming[dst].append(fid)
                        out[task].append(fid)
            prev_sweep_out = out
        return b.build()


class Flood(GridWorkload):
    """Multi-wavefront flood radiating from the grid centre."""

    name = "flood"
    classification = LIGHT

    def __init__(self, num_tasks: int, *,
                 message_size: float = DEFAULT_SWEEP_MESSAGE,
                 wavefronts: int = 4, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if wavefronts < 1:
            raise ValueError("wavefronts must be >= 1")
        self.message_size = message_size
        self.wavefronts = wavefronts
        self.source = self.task(tuple(k // 2 for k in self.grid_dims))

    def _outward_neighbors(self, task: int) -> list[int]:
        """Grid neighbours strictly farther (mesh distance) from the source."""
        coord = self.coord(task)
        src = self.coord(self.source)
        here = dor.distance(src, coord, self.grid_dims, torus=False)
        out = []
        for nb in dor.neighbors(coord, self.grid_dims, torus=False):
            if dor.distance(src, nb, self.grid_dims, torus=False) > here:
                out.append(self.task(nb))
        return out

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        order = sorted(
            range(self.num_tasks),
            key=lambda t: dor.distance(self.coord(self.source), self.coord(t),
                                       self.grid_dims, torus=False))
        prev_wave_send: dict[int, list[int]] = {}
        for _ in range(self.wavefronts):
            incoming: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
            sends: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
            for task in order:  # by distance: predecessors already emitted
                after = incoming[task] + prev_wave_send.get(task, [])
                for dst in self._outward_neighbors(task):
                    fid = b.add_flow(task, dst, self.message_size, after=after)
                    incoming[dst].append(fid)
                    sends[task].append(fid)
            prev_wave_send = sends
        return b.build()


class NearNeighbors(GridWorkload):
    """Periodic halo exchange, all tasks at once, several rounds.

    The paper motivates this workload with LAMMPS and RegCM.  RegCM
    (climate modelling) decomposes its domain in **two** dimensions with a
    9-point stencil, so the defaults are a 2-D virtual grid with diagonal
    neighbours included — which means the application's grid does *not*
    line up with the machine's 3-D torus (one stencil direction strides far
    through the rank order, and DOR concentrates the corner exchanges onto
    those strided links).  That misalignment is what lets the fattree beat
    the torus here even though the spatial pattern looks torus friendly
    (paper §5.2).  Pass ``dims=3, diagonals=False`` for a torus-aligned
    6-point stencil, which degenerates to a NIC-bound exchange identical on
    every topology.
    """

    name = "nearneighbors"
    classification = HEAVY

    def __init__(self, num_tasks: int, *,
                 message_size: float = DEFAULT_HALO_MESSAGE,
                 rounds: int = 2, dims: int = 2, diagonals: bool = True,
                 seed: int = 0) -> None:
        super().__init__(num_tasks, dims=dims, seed=seed)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        # climate domains are wider than tall: widest dimension first, so
        # the slow stencil direction strides far through the rank order
        self.grid_dims = tuple(sorted(self.grid_dims, reverse=True))
        self.message_size = message_size
        self.rounds = rounds
        self.diagonals = diagonals

    def _neighbors(self, task: int) -> list[int]:
        """Stencil partners of a task (wraparound; optionally diagonal)."""
        if not self.diagonals:
            return [self.task(nb)
                    for nb in dor.neighbors(self.coord(task), self.grid_dims)]
        import itertools

        coord = self.coord(task)
        out = []
        seen = {coord}
        for offsets in itertools.product((-1, 0, 1), repeat=len(coord)):
            nb = tuple((c + o) % k
                       for c, o, k in zip(coord, offsets, self.grid_dims))
            if nb not in seen:
                seen.add(nb)
                out.append(self.task(nb))
        return out

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        neighbors = {t: self._neighbors(t) for t in range(self.num_tasks)}
        prev_incoming: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
        for _ in range(self.rounds):
            incoming: dict[int, list[int]] = {t: [] for t in range(self.num_tasks)}
            for task in range(self.num_tasks):
                # a round's sends wait for the previous round's halo to arrive
                after = prev_incoming[task]
                for dst in neighbors[task]:
                    fid = b.add_flow(task, dst, self.message_size, after=after)
                    incoming[dst].append(fid)
            prev_incoming = incoming
        return b.build()
