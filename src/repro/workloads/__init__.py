"""The paper's eleven application-inspired workloads.

Heavy (Figure 4): UnstructuredApp, UnstructuredHR, Bisection, AllReduce,
n-Bodies, NearNeighbors.  Light (Figure 5): UnstructuredMgnt, MapReduce,
Reduce, Flood, Sweep3D.
"""

from repro.workloads.base import EXTRA, HEAVY, LIGHT, GridWorkload, Workload
from repro.workloads.collectives import AllReduce, Reduce
from repro.workloads.mapreduce import MapReduce
from repro.workloads.nbodies import NBodies
from repro.workloads.permutations import Permutation
from repro.workloads.registry import (available, build, heavy_workloads,
                                      light_workloads, register)
from repro.workloads.stencil import Flood, NearNeighbors, Sweep3D
from repro.workloads.unstructured import (Bisection, UnstructuredApp,
                                          UnstructuredHR, UnstructuredMgnt)

__all__ = [
    "EXTRA",
    "HEAVY",
    "LIGHT",
    "AllReduce",
    "Bisection",
    "Flood",
    "GridWorkload",
    "MapReduce",
    "NBodies",
    "NearNeighbors",
    "Permutation",
    "Reduce",
    "Sweep3D",
    "UnstructuredApp",
    "UnstructuredHR",
    "UnstructuredMgnt",
    "Workload",
    "available",
    "build",
    "heavy_workloads",
    "light_workloads",
    "register",
]
