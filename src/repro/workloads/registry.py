"""Name-based workload construction, mirroring the topology registry."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.workloads.base import HEAVY, LIGHT, Workload
from repro.workloads.collectives import AllReduce, Reduce
from repro.workloads.mapreduce import MapReduce
from repro.workloads.nbodies import NBodies
from repro.workloads.permutations import Permutation
from repro.workloads.stencil import Flood, NearNeighbors, Sweep3D
from repro.workloads.unstructured import (Bisection, UnstructuredApp,
                                          UnstructuredHR, UnstructuredMgnt)

_REGISTRY: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    """Register a workload class under its ``name``."""
    if cls.name in _REGISTRY:
        raise ConfigError(f"workload {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available() -> list[str]:
    """Sorted names of all registered workloads."""
    return sorted(_REGISTRY)


def heavy_workloads() -> list[str]:
    """Workloads of the paper's Figure 4 (heavy network utilisation)."""
    return sorted(n for n, c in _REGISTRY.items() if c.classification == HEAVY)


def light_workloads() -> list[str]:
    """Workloads of the paper's Figure 5 (light network utilisation)."""
    return sorted(n for n, c in _REGISTRY.items() if c.classification == LIGHT)


def build(name: str, num_tasks: int, **params: Any) -> Workload:
    """Instantiate a workload by name.

    >>> build("allreduce", 64).name
    'allreduce'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: {available()}") from None
    return cls(num_tasks, **params)


for _cls in (Reduce, AllReduce, MapReduce, Sweep3D, Flood, NearNeighbors,
             NBodies, UnstructuredApp, UnstructuredMgnt, UnstructuredHR,
             Bisection, Permutation):
    register(_cls)
