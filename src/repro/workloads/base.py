"""Workload abstraction and shared helpers.

A workload models one application's communication behaviour as a DAG of
sized flows between *tasks* (paper Section 4.1).  Tasks are virtual ranks;
the simulator maps them onto endpoints through a placement, so the same
workload object can be replayed on every topology of a sweep.

The paper classifies its workloads by the pressure they put on the network
(Section 5.2): *heavy* ones have a large proportion of endpoints injecting
at once (Figure 4), *light* ones are causality-limited (Figure 5).  Each
workload declares its class so the harness can group results the same way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.engine.flows import FlowSet
from repro.errors import WorkloadError
from repro.routing import dor
from repro.topology.planner import balanced_factors

#: Paper Figure 4 vs Figure 5 grouping; EXTRA marks workloads beyond the
#: paper's eleven (they never join the default figure sweeps).
HEAVY = "heavy"
LIGHT = "light"
EXTRA = "extra"


class Workload(ABC):
    """One application model, reusable across topologies."""

    #: Registry name; subclasses override.
    name: str = "workload"
    #: HEAVY (Figure 4) or LIGHT (Figure 5).
    classification: str = HEAVY

    def __init__(self, num_tasks: int, *, seed: int = 0) -> None:
        if num_tasks < 2:
            raise WorkloadError(
                f"{type(self).__name__} needs at least 2 tasks, got {num_tasks}")
        self.num_tasks = num_tasks
        self.seed = seed

    def rng(self) -> np.random.Generator:
        """A fresh, seeded generator — building twice gives identical flows."""
        return np.random.default_rng(self.seed)

    @abstractmethod
    def build(self) -> FlowSet:
        """Materialise the flow DAG."""

    def describe(self) -> str:
        return f"{self.name}({self.num_tasks} tasks, seed={self.seed})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class GridWorkload(Workload):
    """Base for workloads that arrange tasks in a virtual 3D grid."""

    grid_dims: tuple[int, ...]

    def __init__(self, num_tasks: int, *, dims: int = 3, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        self.grid_dims = balanced_factors(num_tasks, dims)
        if self.grid_dims[0] < 2:
            raise WorkloadError(
                f"{num_tasks} tasks cannot form a {dims}-D grid "
                f"(got {self.grid_dims})")

    def coord(self, task: int) -> tuple[int, ...]:
        return dor.index_to_coord(task, self.grid_dims)

    def task(self, coord: tuple[int, ...]) -> int:
        return dor.coord_to_index(coord, self.grid_dims)


def random_destinations(rng: np.random.Generator, num_tasks: int,
                        sources: np.ndarray) -> np.ndarray:
    """Uniform destinations distinct from their sources (vectorised)."""
    dst = rng.integers(0, num_tasks - 1, size=sources.shape[0])
    return np.where(dst >= sources, dst + 1, dst)


def random_matching(rng: np.random.Generator, num_tasks: int) -> np.ndarray:
    """A uniform random perfect matching (pairing) over an even task count."""
    if num_tasks % 2:
        raise WorkloadError("a matching needs an even number of tasks")
    perm = rng.permutation(num_tasks)
    partner = np.empty(num_tasks, dtype=np.int64)
    partner[perm[0::2]] = perm[1::2]
    partner[perm[1::2]] = perm[0::2]
    return partner
