"""Collective-operation workloads: Reduce and AllReduce.

* **Reduce** — the deliberately *non-optimised* N-to-1 collective of the
  paper: every task sends its contribution straight to the root,
  concentrating all traffic on one consumption port.  The paper uses it as
  a pathological hot-spot scenario and observes that every topology
  performs identically because the root's consumption link serialises
  delivery (Section 5.2).

* **AllReduce** — the optimised logarithmic collective (recursive
  doubling, after Thakur & Gropp): ``log2(T)`` steps in which each task
  exchanges with a partner at XOR distance ``2^s``.  Non-power-of-two task
  counts use the standard pre/post folding phases.
"""

from __future__ import annotations

from repro.engine.flows import FlowBuilder, FlowSet
from repro.units import KiB
from repro.workloads.base import HEAVY, LIGHT, Workload

#: Default per-message payload of the collectives.
DEFAULT_MESSAGE = 512 * KiB


class Reduce(Workload):
    """Non-optimised N-to-1 reduction: all tasks send to the root at once."""

    name = "reduce"
    classification = LIGHT  # paper Figure 5

    def __init__(self, num_tasks: int, *, root: int = 0,
                 message_size: float = DEFAULT_MESSAGE, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        if not 0 <= root < num_tasks:
            raise ValueError(f"root {root} out of range")
        self.root = root
        self.message_size = message_size

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        for t in range(self.num_tasks):
            if t != self.root:
                b.add_flow(t, self.root, self.message_size)
        return b.build()


class AllReduce(Workload):
    """Recursive-doubling allreduce (``log2`` steps of pairwise exchanges).

    At step ``s`` (distances 1, 2, 4, ...), rank ``r`` exchanges with
    ``r XOR 2^s``.  A step's send waits on the rank's previous send *and*
    on the message it received in the previous step, which is exactly the
    data dependency of the reduction.  Ranks beyond the largest power of
    two fold into a mirror rank before the doubling and receive the result
    afterwards.
    """

    name = "allreduce"
    classification = HEAVY  # paper Figure 4

    def __init__(self, num_tasks: int, *,
                 message_size: float = DEFAULT_MESSAGE, seed: int = 0) -> None:
        super().__init__(num_tasks, seed=seed)
        self.message_size = message_size

    def build(self) -> FlowSet:
        b = FlowBuilder(self.num_tasks)
        t = self.num_tasks
        power = 1
        while power * 2 <= t:
            power *= 2

        # pre-phase: ranks >= power fold their data into a mirror rank
        pre: dict[int, int] = {}
        for extra in range(power, t):
            pre[extra - power] = b.add_flow(extra, extra - power,
                                            self.message_size)

        # doubling phase: sends[r] is rank r's flow of the previous step
        sends: dict[int, int] = {}
        step = 1
        while step < power:
            new_sends: dict[int, int] = {}
            for rank in range(power):
                partner = rank ^ step
                after: list[int] = []
                if sends:
                    prev_partner = rank ^ (step // 2)
                    after = [sends[rank], sends[prev_partner]]
                elif rank in pre:
                    after = [pre[rank]]
                new_sends[rank] = b.add_flow(rank, partner,
                                             self.message_size, after=after)
            sends = new_sends
            step *= 2

        # post-phase: mirrors push the final value back to folded ranks
        last_step = step // 2
        for extra in range(power, t):
            mirror = extra - power
            after = []
            if sends:
                after = [sends[mirror], sends[mirror ^ last_step]]
            b.add_flow(mirror, extra, self.message_size, after=after)
        return b.build()
