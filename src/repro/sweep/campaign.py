"""Monte-Carlo availability campaigns over transient fault timelines.

A campaign answers the question a single fault run cannot: *what is the
distribution* of slowdown when cables fail mid-job?  It fans N seeded
:class:`~repro.topology.timeline.TimelineSpec` cells — one fault trace per
seed — across the existing resumable process-pool sweep runner
(:func:`repro.sweep.runner.run_sweep`), so campaigns inherit
checkpoint/resume, ``--keep-going`` typed failure records, per-cell
timeouts and the metrics JSONL stream for free.

Two phases per topology:

1. a *healthy* reference run, whose makespan both normalises the slowdown
   ratios and scales the timeline (``horizon = healthy_makespan *
   horizon_frac``, ``mttr = healthy_makespan * mttr_frac``) — fault rates
   track each topology's own job duration instead of hard-coding seconds;
2. the Monte-Carlo fan-out: one transient cell per seed, run with
   ``keep_going`` so a disconnected trace becomes an *unavailable* sample
   (a typed :class:`~repro.errors.DegradedNetworkError` record) instead of
   aborting the campaign.

The report is deterministic (no wall-clock fields; bootstrap resampling is
seeded) — identical invocations produce byte-identical JSON, which is what
lets ``results/campaign_512.json`` live in the repository.
"""

from __future__ import annotations

import os
import sys
from collections.abc import Callable

import numpy as np

from repro.core.config import HYBRID_FAMILIES, TopologySpec, WorkloadSpec
from repro.errors import ConfigError
from repro.sweep.plan import SweepCell, SweepPlan
from repro.sweep.runner import run_sweep
from repro.topology.timeline import TimelineSpec

#: Schema tag stamped on every campaign report; bump when the layout
#: changes.
CAMPAIGN_SCHEMA_VERSION = "repro-campaign-v1"


def parse_seed_range(spec: str) -> list[int]:
    """Expand a seed-range shorthand into the explicit seed list.

    ``"A:B"`` is the half-open range ``A..B-1`` (like Python slicing);
    a bare ``"N"`` is the single seed ``[N]``.  Shared by ``repro
    campaign`` and ``repro resilience --seeds``.
    """
    text = spec.strip()
    try:
        if ":" in text:
            lo_s, _, hi_s = text.partition(":")
            lo, hi = int(lo_s), int(hi_s)
            if lo < 0 or hi <= lo:
                raise ConfigError(
                    f"seed range {spec!r} must satisfy 0 <= A < B")
            return list(range(lo, hi))
        value = int(text)
    except ValueError:
        raise ConfigError(
            f"cannot parse seed range {spec!r}; expected 'A:B' "
            f"(half-open) or a single integer") from None
    if value < 0:
        raise ConfigError(f"seeds must be >= 0, got {value}")
    return [value]


def _bootstrap_ci(samples: list[float], *, resamples: int = 1000,
                  seed: int = 0) -> tuple[float, float]:
    """Seeded percentile-bootstrap 95% CI for the mean of ``samples``."""
    arr = np.asarray(samples, dtype=np.float64)
    n = arr.shape[0]
    if n == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng([seed, 0xB0])
    idx = rng.integers(0, n, size=(resamples, n))
    means = arr[idx].mean(axis=1)
    lo, hi = np.percentile(means, [2.5, 97.5])
    return float(lo), float(hi)


def _select_topologies(specs: list[TopologySpec],
                       wanted: list[str] | None) -> list[TopologySpec]:
    """Filter by family name *or* exact label (``"nesttree(2,4)"``)."""
    if not wanted:
        return specs
    chosen = [s for s in specs
              if s.family in wanted or s.label() in wanted]
    if not chosen:
        known = ", ".join(sorted({s.family for s in specs}
                                 | {s.label() for s in specs}))
        raise ConfigError(
            f"no design-space topology matches {wanted!r}; "
            f"choose families or labels from: {known}")
    return chosen


def run_campaign(*, endpoints: int, workload: WorkloadSpec,
                 topologies: list[TopologySpec], placement: str = "spread",
                 seeds: list[int], cables: int, uplinks: int = 0,
                 horizon_frac: float = 1.0, mttr_frac: float = 0.25,
                 fidelity: str = "approx", seed: int = 0,
                 routing: str = "deterministic",
                 jobs: int = 1,
                 checkpoint: str | os.PathLike | None = None,
                 resume: bool = False,
                 log: Callable[[str], None] | None = None,
                 cell_timeout: float | None = None,
                 metrics_path: str | os.PathLike | None = None,
                 bootstrap: int = 1000) -> dict:
    """Run a Monte-Carlo availability campaign and return its report.

    Parameters mirror the sweep runner's where they overlap; campaign-
    specific knobs:

    ``seeds``
        Timeline seeds, one Monte-Carlo sample each (see
        :func:`parse_seed_range`).
    ``cables`` / ``uplinks``
        Transient faults per timeline.  Uplink-port faults apply to the
        hybrid families only; they are dropped (not errors) elsewhere so
        one campaign can span hybrids and baselines.
    ``horizon_frac`` / ``mttr_frac``
        Failure-window length and mean-time-to-repair as fractions of
        each topology's *healthy* makespan; ``mttr_frac <= 0`` makes
        faults permanent.
    ``checkpoint``
        Base path: the healthy phase appends to ``<base>.healthy.jsonl``
        and the Monte-Carlo phase to ``<base>.mc.jsonl``, both resumable
        with ``resume=True``.
    """
    if not seeds:
        raise ConfigError("campaign needs at least one timeline seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigError("campaign seeds must be distinct")
    if cables < 0 or uplinks < 0:
        raise ConfigError(
            f"fault counts must be non-negative, got cables={cables}, "
            f"uplinks={uplinks}")
    if not cables and not uplinks:
        raise ConfigError(
            "campaign needs at least one transient fault per timeline "
            "(cables or uplinks)")
    if not horizon_frac > 0:
        raise ConfigError(
            f"horizon_frac must be positive, got {horizon_frac}")
    if bootstrap < 1:
        raise ConfigError(f"bootstrap must be >= 1, got {bootstrap}")

    # ---- phase 1: healthy references (also the timeline scale source)
    healthy_cells = tuple(
        SweepCell(workload=workload, topology=tspec, placement=placement,
                  routing=routing)
        for tspec in topologies)
    healthy_plan = SweepPlan(endpoints=endpoints, fidelity=fidelity,
                             seed=seed, cells=healthy_cells)
    if log is not None:
        log(f"phase 1/2: {len(healthy_cells)} healthy reference run(s)")
    healthy_records = run_sweep(
        healthy_plan, jobs=jobs,
        checkpoint=None if checkpoint is None
        else f"{os.fspath(checkpoint)}.healthy.jsonl",
        resume=resume and checkpoint is not None,
        log=log, cell_timeout=cell_timeout)
    healthy_by_label = {r.topology: r for r in healthy_records}

    # ---- phase 2: the Monte-Carlo fan-out, one timeline per seed
    mc_cells: list[SweepCell] = []
    cell_index: dict[str, tuple[str, int]] = {}   # key -> (label, seed)
    for tspec in topologies:
        label = tspec.label()
        healthy = healthy_by_label[label]
        horizon = healthy.makespan * horizon_frac
        mttr = healthy.makespan * mttr_frac if mttr_frac > 0 else None
        t_uplinks = uplinks if tspec.family in HYBRID_FAMILIES else 0
        if not cables and not t_uplinks:
            continue  # uplink-only campaign: nothing to fail on a baseline
        for tseed in seeds:
            cell = SweepCell(
                workload=workload, topology=tspec, placement=placement,
                routing=routing,
                timeline=TimelineSpec(cables=cables, uplinks=t_uplinks,
                                      seed=tseed, horizon=horizon,
                                      mttr=mttr))
            mc_cells.append(cell)
            cell_index[cell.key()] = (label, tseed)
    mc_plan = SweepPlan(endpoints=endpoints, fidelity=fidelity, seed=seed,
                        cells=tuple(mc_cells))
    if log is not None:
        log(f"phase 2/2: {len(mc_cells)} Monte-Carlo run(s) "
            f"({len(seeds)} seed(s) x {len(topologies)} topologies)")
    failures: dict[str, dict] = {}
    mc_records = run_sweep(
        mc_plan, jobs=jobs,
        checkpoint=None if checkpoint is None
        else f"{os.fspath(checkpoint)}.mc.jsonl",
        resume=resume and checkpoint is not None,
        log=log, keep_going=True,
        cell_timeout=cell_timeout, metrics_path=metrics_path,
        failures_out=failures)

    # ---- fold into the per-topology availability report
    by_cell = {(r.topology, r.timeline["seed"]): r for r in mc_records
               if r.timeline is not None}
    rows = []
    for tspec in topologies:
        label = tspec.label()
        healthy = healthy_by_label[label]
        samples = []     # (seed, record) of the completed runs
        failed = []      # {seed, error} of the unavailable ones
        for tseed in seeds:
            record = by_cell.get((label, tseed))
            if record is not None:
                samples.append((tseed, record))
                continue
            key = next((k for k, v in cell_index.items()
                        if v == (label, tseed)), None)
            err = failures.get(key, {}).get("error") if key else None
            failed.append({"seed": tseed, "error": err})
        slowdowns = [r.makespan / healthy.makespan for _, r in samples] \
            if healthy.makespan > 0 else []
        counters: dict[str, float] = {}
        for _, r in samples:
            for k, v in (r.transient or {}).items():
                counters[k] = counters.get(k, 0) + v
        row = {
            "topology": label,
            "family": tspec.family,
            "healthy_makespan_s": healthy.makespan,
            "runs": len(seeds),
            "completed": len(samples),
            "availability": len(samples) / len(seeds),
            "by_seed": [{"seed": s, "makespan_s": r.makespan,
                         "slowdown": r.makespan / healthy.makespan
                         if healthy.makespan > 0 else None,
                         "transient": r.transient}
                        for s, r in samples],
            "failed": failed,
            "transient_totals": counters,
        }
        if slowdowns:
            lo, hi = _bootstrap_ci(slowdowns, resamples=bootstrap, seed=seed)
            row["slowdown_mean"] = float(np.mean(slowdowns))
            row["slowdown_max"] = float(np.max(slowdowns))
            row["slowdown_ci95"] = [lo, hi]
        rows.append(row)

    return {
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "endpoints": endpoints,
        "workload": workload.name,
        "fidelity": fidelity,
        "routing": routing,
        "seed": seed,
        "seeds": list(seeds),
        "cables": cables,
        "uplinks": uplinks,
        "horizon_frac": horizon_frac,
        "mttr_frac": mttr_frac,
        "bootstrap": bootstrap,
        "topologies": rows,
    }


def campaign_table(report: dict) -> str:
    """Human-readable availability/slowdown summary of a campaign report."""
    lines = [
        f"Availability campaign: {report['workload']} @ "
        f"{report['endpoints']} endpoints, {report['cables']} transient "
        f"cable fault(s)"
        + (f" + {report['uplinks']} uplink fault(s) on hybrids"
           if report["uplinks"] else "")
        + f", {len(report['seeds'])} seeded timelines",
        f"{'topology':>16} {'avail':>7} {'slowdown':>9} "
        f"{'ci95':>15} {'max':>6} {'rerouted':>9} {'parked':>7}",
    ]
    for row in report["topologies"]:
        totals = row["transient_totals"]
        if "slowdown_mean" in row:
            lo, hi = row["slowdown_ci95"]
            stats = (f"{row['slowdown_mean']:>8.3f}x "
                     f"[{lo:6.3f},{hi:6.3f}] {row['slowdown_max']:>5.2f}x")
        else:
            stats = f"{'-':>9} {'-':>15} {'-':>6}"
        lines.append(
            f"{row['topology']:>16} {row['availability']:>6.1%} {stats} "
            f"{int(totals.get('flows_rerouted', 0)):>9} "
            f"{int(totals.get('flows_parked', 0)):>7}")
    return "\n".join(lines)


def write_campaign_report(report: dict,
                          path: str | os.PathLike) -> str:
    """Write a campaign report as deterministic, committed-artifact JSON."""
    import json

    text = json.dumps(report, indent=2, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return os.fspath(path)


def _default_log(message: str) -> None:  # pragma: no cover - CLI helper
    print(f"[campaign] {message}", file=sys.stderr, flush=True)
