"""Sweep plans: the declarative unit of a design-space run.

A :class:`SweepPlan` is the full cross product of one sweep — every
``(workload, topology)`` cell plus the global knobs (endpoints, fidelity,
seed) that make each cell reproducible in isolation.  Cells are addressed
by a stable string key, which is what the checkpoint store records and the
resume path matches against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._version import __version__ as ENGINE_VERSION
from repro.core.config import TopologySpec, WorkloadSpec
from repro.errors import ConfigError
from repro.topology.timeline import TimelineSpec


@dataclass(frozen=True)
class SweepCell:
    """One ``(workload, topology)`` simulation of a sweep.

    ``placement`` names the task->endpoint policy applied when the workload
    runs fewer tasks than there are endpoints (the identity placement is
    used when the counts match).

    ``fail_links``/``fail_uplinks``/``fail_seed`` inject faults: the cell
    runs on a :class:`~repro.topology.degraded.DegradedTopology` wrapping
    the built topology with ``FaultSet.sample(cables=fail_links,
    uplinks=fail_uplinks, seed=fail_seed)``.  All three default to the
    healthy machine.

    ``routing`` selects the candidate-selection policy
    (:data:`repro.routing.ROUTING_POLICIES`); the default keeps the
    engine's single-path behaviour and pre-existing checkpoint keys.

    ``timeline`` attaches a *transient* fault trace
    (:class:`~repro.topology.timeline.TimelineSpec`, built against the
    cell's topology at run time): the network degrades and heals mid-run
    and the record carries the recovery counters.  Mutually exclusive
    with the static fault knobs — a static set is just a timeline whose
    events all precede ``t=0``.
    """

    workload: WorkloadSpec
    topology: TopologySpec
    placement: str = "spread"
    fail_links: int = 0
    fail_uplinks: int = 0
    fail_seed: int = 0
    routing: str = "deterministic"
    timeline: TimelineSpec | None = None

    def __post_init__(self) -> None:
        if self.timeline is not None and self.has_faults():
            raise ConfigError(
                "a cell takes static faults or a transient timeline, not "
                "both; encode the static set as timeline events at t <= 0")

    def has_faults(self) -> bool:
        return bool(self.fail_links or self.fail_uplinks)

    def fault_fingerprint(self) -> dict | None:
        """Checkpoint-stable fault description; ``None`` when healthy."""
        if not self.has_faults():
            return None
        return {"cables": self.fail_links, "uplinks": self.fail_uplinks,
                "seed": self.fail_seed}

    def cache_key(self) -> str:
        """Route-cache partition: faulted routes never mix with healthy."""
        return f"{self.topology.label()}{self._fault_suffix()}"

    def _fault_suffix(self) -> str:
        if not self.has_faults():
            return ""  # healthy cells keep their pre-fault keys
        return (f"|faults({self.fail_links},{self.fail_uplinks},"
                f"s{self.fail_seed})")

    def _routing_suffix(self) -> str:
        if self.routing == "deterministic":
            return ""  # default-policy cells keep their pre-routing keys
        return f"|routing({self.routing})"

    def _timeline_suffix(self) -> str:
        if self.timeline is None:
            return ""  # static cells keep their pre-timeline keys
        return f"|{self.timeline.label()}"

    def fingerprint(self) -> dict:
        """Canonical content description of this cell's simulation.

        The single fingerprint shared by every identity the cell has:
        the checkpoint key (:meth:`key` is a stable string projection of
        the ``workload``/``tasks``/``topology``/``faults``/``routing``/
        ``timeline`` entries) and the service result store (which hashes
        this dict together with the plan globals into a content address,
        see :func:`repro.service.store.content_digest`).  It additionally
        carries the fields the checkpoint key deliberately omits: the
        placement policy (checkpoint keys predate it and must stay
        byte-identical) and the engine version, so a store populated by
        one engine release never answers for another.
        """
        return {
            "workload": self.workload.name,
            "tasks": self.workload.tasks,
            "topology": self.topology.label(),
            "placement": self.placement,
            "faults": self.fault_fingerprint(),
            "routing": self.routing,
            "timeline": (None if self.timeline is None
                         else self.timeline.fingerprint()),
            "engine": ENGINE_VERSION,
        }

    def key(self) -> str:
        """Stable checkpoint key (a projection of :meth:`fingerprint`).

        Includes the task count because the same workload name can run at
        different caps (``--quadratic-tasks``); a checkpoint written at one
        cap must not satisfy a sweep at another.  Includes the fault
        fingerprint for degraded cells so resume never mixes healthy and
        degraded runs, and the routing policy for non-default policies so
        resume never mixes policies.  Extra workload params are not
        fingerprinted — use a fresh checkpoint when overriding them.
        """
        fp = self.fingerprint()
        tasks = "all" if fp["tasks"] is None else fp["tasks"]
        return (f"{fp['workload']}@{tasks}|{fp['topology']}"
                f"{self._fault_suffix()}{self._routing_suffix()}"
                f"{self._timeline_suffix()}")


@dataclass(frozen=True)
class SweepPlan:
    """Every cell of a sweep plus the globals each cell needs to run."""

    endpoints: int
    fidelity: str
    seed: int
    cells: tuple[SweepCell, ...]

    def meta(self) -> dict:
        """Fingerprint checked against a checkpoint before resuming."""
        return {"endpoints": self.endpoints, "fidelity": self.fidelity,
                "seed": self.seed}

    def pending(self, done: set[str] | dict) -> list[SweepCell]:
        """Cells whose keys are not in ``done``, in plan order."""
        return [c for c in self.cells if c.key() not in done]
