"""Parallel, resumable design-space sweep execution.

:class:`~repro.sweep.plan.SweepPlan` declares the cells of a sweep,
:func:`~repro.sweep.runner.run_sweep` executes them (in-process or across a
process pool, with per-worker topology and route-cache reuse), and
:class:`~repro.sweep.checkpoint.SweepCheckpoint` persists completed cells
to an append-only JSONL file so interrupted sweeps resume instead of
restarting.  The explorer and the ``fig4``/``fig5`` CLI paths run on top of
this package; :func:`~repro.sweep.campaign.run_campaign` fans seeded
transient-fault timelines across the same runner for Monte-Carlo
availability studies.
"""

from repro.sweep.campaign import (CAMPAIGN_SCHEMA_VERSION, campaign_table,
                                  parse_seed_range, run_campaign,
                                  write_campaign_report)
from repro.sweep.checkpoint import SweepCheckpoint
from repro.sweep.plan import SweepCell, SweepPlan
from repro.sweep.runner import run_sweep

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "SweepCell",
    "SweepCheckpoint",
    "SweepPlan",
    "campaign_table",
    "parse_seed_range",
    "run_campaign",
    "run_sweep",
    "write_campaign_report",
]
