"""Parallel, resumable design-space sweep execution.

:class:`~repro.sweep.plan.SweepPlan` declares the cells of a sweep,
:func:`~repro.sweep.runner.run_sweep` executes them (in-process or across a
process pool, with per-worker topology and route-cache reuse), and
:class:`~repro.sweep.checkpoint.SweepCheckpoint` persists completed cells
to an append-only JSONL file so interrupted sweeps resume instead of
restarting.  The explorer and the ``fig4``/``fig5`` CLI paths run on top of
this package.
"""

from repro.sweep.checkpoint import SweepCheckpoint
from repro.sweep.plan import SweepCell, SweepPlan
from repro.sweep.runner import run_sweep

__all__ = ["SweepCell", "SweepCheckpoint", "SweepPlan", "run_sweep"]
