"""Append-only JSONL checkpoint store for sweep results.

File format (one JSON document per line):

* line 1 — header: ``{"magic": "repro-sweep-v1", "meta": {...}}`` where
  ``meta`` is the owning plan's fingerprint (endpoints, fidelity, seed);
* every other line — one completed cell:
  ``{"key": "<workload>@<tasks>|<topology>", "workload": ..., "topology":
  ..., "family": ..., "t": ..., "u": ..., "makespan": ..., "num_flows":
  ..., "events": ..., "reallocations": ..., "wall_seconds": ...}``.

Records are appended and flushed as each cell completes, so a killed sweep
loses at most the cells that were in flight.  A torn final line (the
process died mid-write) is skipped on load rather than failing the resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigError

MAGIC = "repro-sweep-v1"


class SweepCheckpoint:
    """One checkpoint file bound to one plan fingerprint."""

    def __init__(self, path: str | os.PathLike, meta: dict) -> None:
        self.path = Path(path)
        self.meta = dict(meta)

    # ------------------------------------------------------------------ read
    def load(self) -> dict[str, dict]:
        """Completed records by cell key; ``{}`` when the file is absent.

        Raises :class:`ConfigError` when the header belongs to a different
        plan (resuming a 512-endpoint checkpoint into a 2048-endpoint sweep
        would silently mix scales).
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        header = self._decode(lines[0])
        if (header is None or header.get("magic") != MAGIC
                or "meta" not in header):
            raise ConfigError(
                f"{self.path} is not a sweep checkpoint (bad header)")
        if header["meta"] != self.meta:
            raise ConfigError(
                f"checkpoint {self.path} was written by a different sweep: "
                f"{header['meta']} != {self.meta}")
        records: dict[str, dict] = {}
        for line in lines[1:]:
            record = self._decode(line)
            if record is None or "key" not in record:
                continue  # torn write from an interrupted run
            records[record["key"]] = record
        return records

    # ----------------------------------------------------------------- write
    def start(self, *, resume: bool) -> dict[str, dict]:
        """Open the checkpoint for a run and return the completed records.

        ``resume=False`` starts fresh (any existing file is replaced);
        ``resume=True`` loads and keeps existing records.
        """
        if resume:
            done = self.load()
            if not self.path.exists():
                self._write_header()
            return done
        self._write_header()
        return {}

    def append(self, record: dict) -> None:
        """Append one completed cell and flush it to disk."""
        with self.path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w") as fh:
            fh.write(json.dumps({"magic": MAGIC, "meta": self.meta}) + "\n")

    @staticmethod
    def _decode(line: str) -> dict | None:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            return None
        return doc if isinstance(doc, dict) else None
