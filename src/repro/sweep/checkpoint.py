"""Append-only JSONL checkpoint store for sweep results.

File format (one JSON document per line):

* line 1 — header: ``{"magic": "repro-sweep-v1", "meta": {...}}`` where
  ``meta`` is the owning plan's fingerprint (endpoints, fidelity, seed);
* every other line — one completed cell:
  ``{"key": "<workload>@<tasks>|<topology>[|faults(...)]", "workload": ...,
  "topology": ..., "family": ..., "t": ..., "u": ..., "faults": ...,
  "makespan": ..., "num_flows": ..., "events": ..., "reallocations": ...,
  "wall_seconds": ...}`` — plus an optional ``"metrics"`` key holding the
  cell's engine observability snapshot when the sweep ran with
  ``--metrics`` (extra keys are schema-valid, so checkpoints written with
  and without metrics interoperate) — or, for a cell that failed under
  ``keep_going``,
  a typed error record ``{"key": ..., "workload": ..., "topology": ...,
  "faults": ..., "error": {"type": ..., "message": ...}}``.

Records are appended and flushed as each cell completes, so a killed sweep
loses at most the cells that were in flight.  The loader is forgiving:
*any* undecodable or schema-invalid line — a torn final write, a corrupted
block in the middle of the file, a record from a future format — is
skipped and counted rather than failing the resume; the count is reported
through the optional ``log`` sink.  Error records are loaded but reported
separately from results, so a resumed sweep retries previously failed
cells instead of silently accepting their absence.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable
from pathlib import Path

from repro.errors import ConfigError

MAGIC = "repro-sweep-v1"

#: Fields every successful cell record must carry to be schema-valid.
RESULT_FIELDS = frozenset({
    "workload", "topology", "family", "makespan", "num_flows", "events",
    "reallocations", "wall_seconds",
})


class SweepCheckpoint:
    """One checkpoint file bound to one plan fingerprint."""

    def __init__(self, path: str | os.PathLike, meta: dict) -> None:
        self.path = Path(path)
        self.meta = dict(meta)

    # ------------------------------------------------------------------ read
    def load(self, *, log: Callable[[str], None] | None = None
             ) -> dict[str, dict]:
        """Records by cell key (results *and* error records); ``{}`` when
        the file is absent.

        Raises :class:`ConfigError` when the header belongs to a different
        plan (resuming a 512-endpoint checkpoint into a 2048-endpoint sweep
        would silently mix scales).  Damaged body lines are skipped and
        counted, never fatal.
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        header = self._decode(lines[0])
        if (header is None or header.get("magic") != MAGIC
                or "meta" not in header):
            raise ConfigError(
                f"{self.path} is not a sweep checkpoint (bad header)")
        if header["meta"] != self.meta:
            raise ConfigError(
                f"checkpoint {self.path} was written by a different sweep: "
                f"{header['meta']} != {self.meta}")
        records: dict[str, dict] = {}
        skipped = 0
        for line in lines[1:]:
            record = self._decode(line)
            if record is None or not self._schema_valid(record):
                skipped += 1
                continue
            records[record["key"]] = record
        if skipped and log is not None:
            log(f"checkpoint {self.path}: skipped {skipped} undecodable or "
                f"schema-invalid line(s); the affected cells will be re-run")
        return records

    # ----------------------------------------------------------------- write
    def start(self, *, resume: bool,
              log: Callable[[str], None] | None = None) -> dict[str, dict]:
        """Open the checkpoint for a run and return the stored records.

        ``resume=False`` starts fresh (any existing file is replaced);
        ``resume=True`` loads and keeps existing records.
        """
        if resume:
            done = self.load(log=log)
            if not self.path.exists():
                self._write_header()
            return done
        self._write_header()
        return {}

    def append(self, record: dict) -> None:
        """Append one completed cell and flush it to disk."""
        with self.path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w") as fh:
            fh.write(json.dumps({"magic": MAGIC, "meta": self.meta}) + "\n")

    @staticmethod
    def _decode(line: str) -> dict | None:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            return None
        return doc if isinstance(doc, dict) else None

    @staticmethod
    def _schema_valid(record: dict) -> bool:
        """A record is either a full result row or a typed error entry."""
        if not isinstance(record.get("key"), str):
            return False
        error = record.get("error")
        if error is not None:
            return (isinstance(error, dict)
                    and isinstance(error.get("type"), str)
                    and isinstance(error.get("message"), str))
        return RESULT_FIELDS <= record.keys()
