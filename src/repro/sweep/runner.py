"""Parallel, resumable sweep executor.

Executes every cell of a :class:`~repro.sweep.plan.SweepPlan`, either
in-process (``jobs=1``, preserving the serial explorer's exact behaviour
and log output) or across a pool of worker processes.

Parallel decomposition
----------------------
Topology construction and route computation dominate a sweep's warm-up
cost, so cells are grouped *by topology* and whole groups are assigned to
workers (greedy balance on cell counts).  Each worker builds each of its
topologies exactly once and keeps one route cache per topology, shared by
every workload it replays on that machine — the same warm-start the serial
explorer gets from its in-process caches.

Results stream back to the parent one cell at a time over a queue; the
parent appends each to the (optional) JSONL checkpoint the moment it
arrives, so a killed sweep loses only in-flight cells and ``resume=True``
re-runs only what is missing.  Simulation is deterministic, so serial and
parallel runs produce identical records (wall-clock fields aside).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from collections.abc import Callable

import numpy as np

from repro.core.explorer import RunRecord
from repro.engine import simulate
from repro.errors import SimulationError
from repro.mapping import placement as placement_mod
from repro.sweep.checkpoint import SweepCheckpoint
from repro.sweep.plan import SweepCell, SweepPlan
from repro.topology.base import Topology

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 1.0

#: Type of the per-worker workload cache: (name, tasks) -> prepared inputs.
_FlowsCache = dict[tuple[str, int | None], tuple]


def run_sweep(plan: SweepPlan, *,
              jobs: int = 1,
              checkpoint: str | os.PathLike | None = None,
              resume: bool = False,
              log: Callable[[str], None] | None = None,
              topology_provider: Callable[..., Topology] | None = None,
              ) -> list[RunRecord]:
    """Execute a sweep plan and return its records in plan order.

    Parameters
    ----------
    plan:
        The cells to run plus the sweep globals.
    jobs:
        Worker process count.  ``1`` runs in-process (no multiprocessing);
        higher values partition topology groups across workers.
    checkpoint:
        Optional JSONL checkpoint path.  Completed cells are appended as
        they finish; with ``resume=True`` cells already in the file are
        not recomputed (their stored records are returned instead).
        Without ``resume`` an existing file is replaced.
    resume:
        Skip cells present in ``checkpoint``.  Requires ``checkpoint``.
    log:
        Progress sink (one message per call); ``None`` silences progress.
    topology_provider:
        Serial mode only: ``(TopologySpec) -> Topology`` used to build (or
        fetch from a cache) each topology.  The explorer passes its caching
        builder so repeated ``run`` calls share constructed topologies.
        Worker processes always build their own.
    """
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    if resume and checkpoint is None:
        raise SimulationError("resume requires a checkpoint path")

    store = None
    done: dict[str, dict] = {}
    if checkpoint is not None:
        store = SweepCheckpoint(checkpoint, plan.meta())
        done = store.start(resume=resume)
    pending = plan.pending(done)
    if store is not None and log is not None:
        log(f"checkpoint {store.path}: {len(plan.cells) - len(pending)} of "
            f"{len(plan.cells)} cells already complete")

    if jobs == 1:
        records = _run_serial(plan, pending, store, log, topology_provider)
    else:
        records = _run_parallel(plan, pending, store, log, jobs)

    by_key = dict(done)
    by_key.update(records)
    missing = [c.key() for c in plan.cells if c.key() not in by_key]
    if missing:
        raise SimulationError(f"sweep finished with missing cells: {missing}")
    return [_to_record(by_key[c.key()]) for c in plan.cells]


# ---------------------------------------------------------------- cell work
def _prepare_workload(plan: SweepPlan, cell: SweepCell,
                      flows_cache: _FlowsCache) -> tuple:
    """Build (once per workload) the flow set and placement for a cell."""
    wspec = cell.workload
    key = (wspec.name, wspec.tasks)
    if key not in flows_cache:
        flows = wspec.build(plan.endpoints, seed=plan.seed).build()
        tasks = wspec.resolve_tasks(plan.endpoints)
        if tasks == plan.endpoints:
            placement = None  # identity
        else:
            placement = placement_mod.by_name(cell.placement, tasks,
                                              plan.endpoints, seed=plan.seed)
        flows_cache[key] = (flows, placement, tasks)
    return flows_cache[key]


def _run_cell(plan: SweepPlan, cell: SweepCell, topology: Topology,
              flows_cache: _FlowsCache,
              route_cache: dict[tuple[int, int], np.ndarray]) -> dict:
    """Simulate one cell and return its checkpointable record."""
    flows, placement, _ = _prepare_workload(plan, cell, flows_cache)
    t0 = time.perf_counter()
    result = simulate(topology, flows, placement=placement,
                      fidelity=plan.fidelity, route_cache=route_cache)
    wall = time.perf_counter() - t0
    return {
        "key": cell.key(),
        "workload": cell.workload.name,
        "topology": cell.topology.label(),
        "family": cell.topology.family,
        "t": cell.topology.params.get("t"),
        "u": cell.topology.params.get("u"),
        "makespan": result.makespan,
        "num_flows": result.num_flows,
        "events": result.events,
        "reallocations": result.reallocations,
        "wall_seconds": wall,
    }


def _to_record(doc: dict) -> RunRecord:
    return RunRecord(
        workload=doc["workload"], topology=doc["topology"],
        family=doc["family"], t=doc["t"], u=doc["u"],
        makespan=doc["makespan"], num_flows=doc["num_flows"],
        events=doc["events"], reallocations=doc["reallocations"],
        wall_seconds=doc["wall_seconds"])


def _cell_log_line(doc: dict) -> str:
    return (f"  {doc['topology']:>16}: {doc['makespan'] * 1e3:9.3f} ms "
            f"({doc['wall_seconds']:5.1f}s wall)")


# -------------------------------------------------------------- serial path
def _run_serial(plan: SweepPlan, pending: list[SweepCell],
                store: SweepCheckpoint | None,
                log: Callable[[str], None] | None,
                topology_provider: Callable[..., Topology] | None,
                ) -> dict[str, dict]:
    if topology_provider is None:
        topologies: dict[str, Topology] = {}

        def topology_provider(tspec):
            label = tspec.label()
            if label not in topologies:
                if log is not None:
                    log(f"building {label} @ {plan.endpoints} endpoints")
                topologies[label] = tspec.build(plan.endpoints)
            return topologies[label]

    flows_cache: _FlowsCache = {}
    route_caches: dict[str, dict] = {}
    records: dict[str, dict] = {}
    current_workload: tuple[str, int | None] | None = None
    for cell in pending:
        wkey = (cell.workload.name, cell.workload.tasks)
        if wkey != current_workload:
            flows, _, tasks = _prepare_workload(plan, cell, flows_cache)
            if log is not None:
                log(f"workload {cell.workload.name}: {flows.num_flows} "
                    f"flows, {tasks} tasks")
            current_workload = wkey
        topo = topology_provider(cell.topology)
        doc = _run_cell(plan, cell, topo, flows_cache,
                        route_caches.setdefault(cell.topology.label(), {}))
        records[doc["key"]] = doc
        if store is not None:
            store.append(doc)
        if log is not None:
            log(_cell_log_line(doc))
    return records


# ------------------------------------------------------------ parallel path
def _partition(pending: list[SweepCell], jobs: int
               ) -> list[list[tuple[SweepCell, list[SweepCell]]]]:
    """Group cells by topology and balance whole groups across workers.

    Returns one list of ``(representative cell, group cells)`` pairs per
    worker.  Greedy longest-group-first assignment to the least-loaded
    worker keeps cell counts even without splitting a topology (splitting
    would forfeit the per-worker topology/route-cache reuse).
    """
    groups: dict[str, list[SweepCell]] = {}
    for cell in pending:
        groups.setdefault(cell.topology.label(), []).append(cell)
    ordered = sorted(groups.values(), key=len, reverse=True)
    n = min(jobs, len(ordered)) or 1
    buckets: list[list[tuple[SweepCell, list[SweepCell]]]] = [[] for _ in range(n)]
    sizes = [0] * n
    for group in ordered:
        i = sizes.index(min(sizes))
        buckets[i].append((group[0], group))
        sizes[i] += len(group)
    return buckets


def _sweep_worker(plan: SweepPlan,
                  assignment: list[tuple[SweepCell, list[SweepCell]]],
                  out: mp.Queue, worker_id: int) -> None:
    """Worker loop: build each assigned topology once, run its cells."""
    try:
        flows_cache: _FlowsCache = {}
        for rep, cells in assignment:
            topology = rep.topology.build(plan.endpoints)
            route_cache: dict[tuple[int, int], np.ndarray] = {}
            for cell in cells:
                out.put(("ok", _run_cell(plan, cell, topology,
                                         flows_cache, route_cache)))
    except Exception:
        out.put(("error", worker_id, traceback.format_exc()))
    finally:
        out.put(("exit", worker_id))


def _run_parallel(plan: SweepPlan, pending: list[SweepCell],
                  store: SweepCheckpoint | None,
                  log: Callable[[str], None] | None,
                  jobs: int) -> dict[str, dict]:
    if not pending:
        return {}
    buckets = _partition(pending, jobs)
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    out: mp.Queue = ctx.Queue()
    workers = [ctx.Process(target=_sweep_worker, args=(plan, bucket, out, i),
                           daemon=True)
               for i, bucket in enumerate(buckets)]
    if log is not None:
        log(f"running {len(pending)} cells across {len(workers)} workers")
    for w in workers:
        w.start()

    records: dict[str, dict] = {}
    failure: str | None = None
    exited = 0
    try:
        while exited < len(workers):
            try:
                msg = out.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                dead = [i for i, w in enumerate(workers)
                        if not w.is_alive() and w.exitcode not in (0, None)]
                if dead:
                    raise SimulationError(
                        f"sweep worker(s) {dead} died "
                        f"(exit codes {[workers[i].exitcode for i in dead]})")
                continue
            if msg[0] == "ok":
                doc = msg[1]
                records[doc["key"]] = doc
                if store is not None:
                    store.append(doc)
                if log is not None:
                    log(f"[{doc['workload']}]" + _cell_log_line(doc))
            elif msg[0] == "error":
                failure = msg[2]
            else:  # "exit"
                exited += 1
    finally:
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            w.join()
    if failure is not None:
        raise SimulationError(f"sweep worker failed:\n{failure}")
    return records
