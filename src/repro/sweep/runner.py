"""Parallel, resumable, fault-tolerant sweep executor.

Executes every cell of a :class:`~repro.sweep.plan.SweepPlan`, either
in-process (``jobs=1``, preserving the serial explorer's exact behaviour
and log output) or across a pool of worker processes.

Parallel decomposition
----------------------
Topology construction and route computation dominate a sweep's warm-up
cost, so cells are grouped *by topology* and whole groups are placed on a
shared task queue (largest first).  Workers pull one group at a time,
build its topology once and keep one route cache per ``(topology, fault
set)``, shared by every workload replayed on that machine — the same
warm-start the serial explorer gets from its in-process caches.

Each worker talks to the parent over its own duplex pipe — the parent
assigns groups and the worker streams results back.  Nothing is shared
between workers (a shared queue's internal lock, held by a process at the
instant it is SIGKILLed, would deadlock every other user of the queue),
so one worker's death can never wedge the rest of the pool.  The parent
appends each result to the (optional) JSONL checkpoint the moment it
arrives, so a killed sweep loses only in-flight cells and ``resume=True``
re-runs only what is missing.  Simulation is deterministic, so serial and
parallel runs produce identical records (wall-clock fields aside) — fault
injection included, because each cell's
:class:`~repro.topology.degraded.FaultSet` is reproduced from the cell's
own ``(fail_links, fail_uplinks, fail_seed)`` triple wherever it runs.

Surviving worker failure
------------------------
Long degraded sweeps must not die with one worker.  When a worker
disappears without a clean exit (crash, OOM-kill, SIGKILL), the parent
requeues the unfinished cells of its in-flight group onto the surviving
workers and respawns a replacement, up to a bounded respawn budget.  The
cell that was running when the worker died is retried once; if it kills a
second worker it is marked failed instead of being retried forever.
``cell_timeout`` adds a wall-clock cap per cell: a worker stuck past the
cap is killed and the cell marked failed (other cells of its group are
requeued).  With ``keep_going=True`` per-cell failures — simulation
errors, disconnected degraded networks, crashes, timeouts — become typed
error records in the checkpoint and are reported at the end; without it
the first failure aborts the sweep, as before.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from collections.abc import Callable, MutableMapping
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

import numpy as np

from repro.core.explorer import RunRecord
from repro.engine import simulate
from repro.errors import ReproError, SimulationError
from repro.mapping import placement as placement_mod
from repro.routing.cache import RouteCacheConfig, make_route_cache
from repro.sweep.checkpoint import SweepCheckpoint
from repro.sweep.plan import SweepCell, SweepPlan
from repro.topology.base import Topology
from repro.topology.degraded import DegradedTopology, FaultSet

#: Seconds between liveness/timeout checks while waiting on worker results.
_POLL_SECONDS = 0.25

#: Replacement workers the parent may spawn per run after crashes.
DEFAULT_MAX_RESPAWNS = 3

#: Times a cell may be attempted when its worker keeps dying under it.
_MAX_CELL_ATTEMPTS = 2

#: Type of the per-worker workload cache: (name, tasks) -> prepared inputs.
_FlowsCache = dict[tuple[str, int | None], tuple]


def run_sweep(plan: SweepPlan, *,
              jobs: int = 1,
              checkpoint: str | os.PathLike | None = None,
              resume: bool = False,
              log: Callable[[str], None] | None = None,
              topology_provider: Callable[..., Topology] | None = None,
              keep_going: bool = False,
              cell_timeout: float | None = None,
              max_respawns: int = DEFAULT_MAX_RESPAWNS,
              metrics_path: str | os.PathLike | None = None,
              metrics_append: bool = False,
              failures_out: dict[str, dict] | None = None,
              results_out: dict[str, dict] | None = None,
              route_cache_config: RouteCacheConfig | None = None,
              ) -> list[RunRecord]:
    """Execute a sweep plan and return its records in plan order.

    Parameters
    ----------
    plan:
        The cells to run plus the sweep globals.
    jobs:
        Worker process count.  ``1`` runs in-process (no multiprocessing);
        higher values fan topology groups out over a worker pool that
        survives individual worker deaths (see module docstring).
    checkpoint:
        Optional JSONL checkpoint path.  Completed cells are appended as
        they finish; with ``resume=True`` cells already in the file are
        not recomputed (their stored records are returned instead).
        Without ``resume`` an existing file is replaced.
    resume:
        Skip cells present in ``checkpoint``.  Requires ``checkpoint``.
        Cells stored as *error* records are retried, not skipped.
    log:
        Progress sink (one message per call); ``None`` silences progress.
    topology_provider:
        Serial mode only: ``(TopologySpec) -> Topology`` used to build (or
        fetch from a cache) each topology.  The explorer passes its caching
        builder so repeated ``run`` calls share constructed topologies.
        Worker processes always build their own.
    keep_going:
        Record per-cell failures as typed error entries in the checkpoint
        and keep sweeping instead of aborting on the first failure.  Failed
        cells are reported through ``log`` at the end and omitted from the
        returned records.
    cell_timeout:
        Wall-clock seconds a single cell may run.  In parallel mode the
        offending worker is killed and the cell marked failed; in serial
        mode the cap is checked after the cell finishes (best effort — a
        single process cannot preempt itself).
    max_respawns:
        Replacement workers the parent may spawn after worker deaths
        before it stops replacing them (surviving workers still drain the
        queue; the sweep only aborts when none remain).
    metrics_path:
        Optional JSONL path; enables per-cell engine instrumentation (each
        cell simulates with a :class:`repro.obs.MetricsCollector`) and
        streams one schema-versioned metrics record per cell to this file.
        The file is regenerated every run: on resume, metrics stored in
        the checkpoint's cell records are replayed first, so a kill/resume
        cycle still yields exactly one record per cell.  Cells resumed
        from a checkpoint written *without* metrics have none to replay;
        they are counted and reported through ``log``.
    metrics_append:
        Open the ``metrics_path`` stream in append mode instead of
        regenerating it — long-lived callers (the service broker) fold
        many small sweeps into one observability file.
    failures_out:
        Optional dict the ``keep_going`` failure records are merged into,
        keyed by cell key — callers like the design search use it to mark
        candidates infeasible instead of only seeing them vanish from the
        returned records.
    results_out:
        Optional dict the raw checkpoint-shaped cell documents are merged
        into, keyed by cell key — resumed cells included.  The service
        result store persists these documents verbatim; the returned
        :class:`RunRecord` list is a narrower projection.
    route_cache_config:
        Explicit per-run route-cache policy
        (:class:`~repro.routing.cache.RouteCacheConfig`).  In parallel
        mode the config's resident-shard budget is the budget of the
        *whole pool*: each worker receives ``config.for_worker(...)`` —
        its even share — so a sweep's total resident set stays bounded
        regardless of ``jobs``.  ``None`` keeps the historical behaviour
        (each worker reads the ``REPRO_ROUTE_CACHE*`` env knobs).
    """
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    if resume and checkpoint is None:
        raise SimulationError("resume requires a checkpoint path")
    if cell_timeout is not None and cell_timeout <= 0:
        raise SimulationError(
            f"cell_timeout must be positive, got {cell_timeout}")
    if max_respawns < 0:
        raise SimulationError(
            f"max_respawns must be >= 0, got {max_respawns}")

    store = None
    done: dict[str, dict] = {}
    if checkpoint is not None:
        store = SweepCheckpoint(checkpoint, plan.meta())
        loaded = store.start(resume=resume, log=log)
        # error records from a previous --keep-going run are retried
        done = {k: doc for k, doc in loaded.items() if "error" not in doc}
        retries = len(loaded) - len(done)
        if retries and log is not None:
            log(f"checkpoint {store.path}: retrying {retries} cell(s) "
                f"previously recorded as failed")
    pending = plan.pending(done)
    if store is not None and log is not None:
        log(f"checkpoint {store.path}: {len(plan.cells) - len(pending)} of "
            f"{len(plan.cells)} cells already complete")

    stream = None
    if metrics_path is not None:
        from repro.obs import MetricsStream

        stream = MetricsStream(metrics_path, append=metrics_append)
        stream.open()
        # replay metrics of cells already complete in the checkpoint, so
        # the regenerated file covers the whole plan after a resume
        for doc in done.values():
            stream.write_cell(doc)
        if stream.skipped_no_metrics and log is not None:
            log(f"metrics {stream.path}: {stream.skipped_no_metrics} resumed "
                f"cell(s) carry no metrics (checkpoint written without "
                f"--metrics); they are absent from the metrics file")

    failures: dict[str, dict] = {}
    try:
        if jobs == 1:
            records = _run_serial(plan, pending, store, log,
                                  topology_provider, keep_going, cell_timeout,
                                  failures, stream, route_cache_config)
        else:
            records = _run_parallel(plan, pending, store, log, jobs,
                                    keep_going, cell_timeout, max_respawns,
                                    failures, stream, route_cache_config)
    finally:
        if stream is not None:
            stream.close()

    by_key = dict(done)
    by_key.update(records)
    missing = [c.key() for c in plan.cells
               if c.key() not in by_key and c.key() not in failures]
    if missing:
        raise SimulationError(f"sweep finished with missing cells: {missing}")
    if failures and log is not None:
        log(f"{len(failures)} cell(s) failed and were recorded as typed "
            f"error entries: {', '.join(sorted(failures))}")
    if failures_out is not None:
        failures_out.update(failures)
    if results_out is not None:
        results_out.update(by_key)
    return [_to_record(by_key[c.key()]) for c in plan.cells
            if c.key() in by_key]


# ---------------------------------------------------------------- cell work
def _prepare_workload(plan: SweepPlan, cell: SweepCell,
                      flows_cache: _FlowsCache) -> tuple:
    """Build (once per workload) the flow set and placement for a cell."""
    wspec = cell.workload
    key = (wspec.name, wspec.tasks)
    if key not in flows_cache:
        flows = wspec.build(plan.endpoints, seed=plan.seed).build()
        tasks = wspec.resolve_tasks(plan.endpoints)
        if tasks == plan.endpoints:
            placement = None  # identity
        else:
            placement = placement_mod.by_name(cell.placement, tasks,
                                              plan.endpoints, seed=plan.seed)
        flows_cache[key] = (flows, placement, tasks)
    return flows_cache[key]


def _cell_topology(cell: SweepCell, base: Topology,
                   degraded_cache: dict[str, Topology]) -> Topology:
    """The (possibly fault-wrapped) topology a cell simulates on."""
    if not cell.has_faults():
        return base
    key = cell.cache_key()
    if key not in degraded_cache:
        degraded_cache[key] = DegradedTopology(
            base, FaultSet.sample(base, cables=cell.fail_links,
                                  uplinks=cell.fail_uplinks,
                                  seed=cell.fail_seed))
    return degraded_cache[key]


def _run_cell(plan: SweepPlan, cell: SweepCell, topology: Topology,
              flows_cache: _FlowsCache,
              route_cache: dict[tuple[int, int], np.ndarray],
              collect_metrics: bool = False) -> dict:
    """Simulate one cell and return its checkpointable record.

    With ``collect_metrics`` the cell runs instrumented (fresh
    :class:`~repro.obs.MetricsCollector` per cell) and the record carries
    the engine's metrics snapshot under ``"metrics"`` — the checkpoint
    stores it, so resumed sweeps can replay metrics without re-simulating.
    """
    flows, placement, _ = _prepare_workload(plan, cell, flows_cache)
    collector = None
    if collect_metrics:
        from repro.obs import MetricsCollector

        collector = MetricsCollector(topology.links.num_links)
    # the spec is rebuilt against the concrete topology wherever the cell
    # runs, so serial and parallel runs sample the identical event trace
    timeline = cell.timeline.build(topology) if cell.timeline is not None \
        else None
    t0 = time.perf_counter()
    result = simulate(topology, flows, placement=placement,
                      fidelity=plan.fidelity, route_cache=route_cache,
                      metrics=collector, routing=cell.routing,
                      fault_timeline=timeline)
    wall = time.perf_counter() - t0
    doc = {
        "key": cell.key(),
        "workload": cell.workload.name,
        "topology": cell.topology.label(),
        "family": cell.topology.family,
        "t": cell.topology.params.get("t"),
        "u": cell.topology.params.get("u"),
        "faults": cell.fault_fingerprint(),
        "routing": cell.routing,
        "makespan": result.makespan,
        "num_flows": result.num_flows,
        "events": result.events,
        "reallocations": result.reallocations,
        "wall_seconds": wall,
    }
    if cell.timeline is not None:
        doc["timeline"] = cell.timeline.fingerprint()
    if result.transient is not None:
        doc["transient"] = result.transient
    if result.metrics is not None:
        doc["metrics"] = result.metrics
    return doc


def _error_doc(cell: SweepCell, error_type: str, message: str) -> dict:
    """Typed checkpoint entry for a cell that could not produce a result."""
    return {
        "key": cell.key(),
        "workload": cell.workload.name,
        "topology": cell.topology.label(),
        "faults": cell.fault_fingerprint(),
        "error": {"type": error_type, "message": message},
    }


def _to_record(doc: dict) -> RunRecord:
    return RunRecord(
        workload=doc["workload"], topology=doc["topology"],
        family=doc["family"], t=doc["t"], u=doc["u"],
        makespan=doc["makespan"], num_flows=doc["num_flows"],
        events=doc["events"], reallocations=doc["reallocations"],
        wall_seconds=doc["wall_seconds"], faults=doc.get("faults"),
        routing=doc.get("routing", "deterministic"),
        timeline=doc.get("timeline"), transient=doc.get("transient"))


def _cell_log_line(doc: dict) -> str:
    label = doc["topology"]
    if doc.get("faults"):
        f = doc["faults"]
        label += f"+{f['cables']}c/{f['uplinks']}u"
    if doc.get("timeline"):
        t = doc["timeline"]
        label += f"±{t.get('cables', '?')}c/{t.get('uplinks', '?')}u"
    if doc.get("routing", "deterministic") != "deterministic":
        label += f"~{doc['routing']}"
    return (f"  {label:>16}: {doc['makespan'] * 1e3:9.3f} ms "
            f"({doc['wall_seconds']:5.1f}s wall)")


def _failure_log_line(doc: dict) -> str:
    err = doc["error"]
    return (f"  {doc['topology']:>16}: FAILED "
            f"({err['type']}: {err['message']})")


# -------------------------------------------------------------- serial path
def _run_serial(plan: SweepPlan, pending: list[SweepCell],
                store: SweepCheckpoint | None,
                log: Callable[[str], None] | None,
                topology_provider: Callable[..., Topology] | None,
                keep_going: bool, cell_timeout: float | None,
                failures: dict[str, dict],
                stream=None,
                cache_config: RouteCacheConfig | None = None
                ) -> dict[str, dict]:
    collect = stream is not None
    if topology_provider is None:
        topologies: dict[str, Topology] = {}

        def topology_provider(tspec):
            label = tspec.label()
            if label not in topologies:
                if log is not None:
                    log(f"building {label} @ {plan.endpoints} endpoints")
                topologies[label] = tspec.build(plan.endpoints)
            return topologies[label]

    flows_cache: _FlowsCache = {}
    degraded_cache: dict[str, Topology] = {}
    route_caches: dict[str, MutableMapping] = {}
    records: dict[str, dict] = {}
    current_workload: tuple[str, int | None] | None = None

    def record_failure(doc: dict) -> None:
        failures[doc["key"]] = doc
        if store is not None:
            store.append(doc)
        if log is not None:
            log(_failure_log_line(doc))

    for cell in pending:
        wkey = (cell.workload.name, cell.workload.tasks)
        if wkey != current_workload:
            flows, _, tasks = _prepare_workload(plan, cell, flows_cache)
            if log is not None:
                log(f"workload {cell.workload.name}: {flows.num_flows} "
                    f"flows, {tasks} tasks")
            current_workload = wkey
        try:
            topo = _cell_topology(cell, topology_provider(cell.topology),
                                  degraded_cache)
            doc = _run_cell(plan, cell, topo, flows_cache,
                            route_caches.setdefault(
                                cell.cache_key(),
                                make_route_cache(plan.endpoints,
                                                 config=cache_config,
                                                 namespace=cell.cache_key())),
                            collect_metrics=collect)
        except ReproError as exc:
            if not keep_going:
                raise
            record_failure(_error_doc(cell, type(exc).__name__, str(exc)))
            continue
        if cell_timeout is not None and doc["wall_seconds"] > cell_timeout:
            # a single process cannot preempt itself; flag after the fact
            err = _error_doc(
                cell, "CellTimeout",
                f"cell took {doc['wall_seconds']:.1f}s, over the "
                f"{cell_timeout:g}s cell timeout")
            if not keep_going:
                raise SimulationError(err["error"]["message"])
            record_failure(err)
            continue
        records[doc["key"]] = doc
        if store is not None:
            store.append(doc)
        if stream is not None:
            stream.write_cell(doc)
        if log is not None:
            log(_cell_log_line(doc))
    return records


# ------------------------------------------------------------ parallel path
def _group_cells(pending: list[SweepCell]) -> list[list[SweepCell]]:
    """Cells grouped by topology label, largest group first.

    A group is the unit of worker assignment: one worker runs a whole
    group so the topology is built once and its route caches are reused
    across every workload (and fault set) replayed on it.
    """
    groups: dict[str, list[SweepCell]] = {}
    for cell in pending:
        groups.setdefault(cell.topology.label(), []).append(cell)
    return sorted(groups.values(), key=len, reverse=True)


def _sweep_worker(plan: SweepPlan, conn, worker_id: int,
                  collect_metrics: bool = False,
                  cache_config: RouteCacheConfig | None = None) -> None:
    """Worker loop: receive topology groups, build once, run their cells.

    The worker owns one end of a duplex pipe.  The parent sends
    ``("run", gid, cells)`` / ``("stop",)``; the worker streams back
    ``start`` / ``ok`` / ``cellerror`` / ``groupdone`` messages.  Per-cell
    :class:`~repro.errors.ReproError` failures are reported as
    ``cellerror`` and the loop continues; anything else is a bug and
    aborts via a ``fatal`` message.
    """
    try:
        flows_cache: _FlowsCache = {}
        current_label: str | None = None
        base: Topology | None = None
        degraded_cache: dict[str, Topology] = {}
        route_caches: dict[str, MutableMapping] = {}
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent is gone
                return
            if msg[0] == "stop":
                break
            gid, cells = msg[1], msg[2]
            for cell in cells:
                conn.send(("start", cell.key()))
                try:
                    label = cell.topology.label()
                    if label != current_label:
                        base = cell.topology.build(plan.endpoints)
                        current_label = label
                        degraded_cache = {}
                        route_caches = {}
                    topo = _cell_topology(cell, base, degraded_cache)
                    doc = _run_cell(
                        plan, cell, topo, flows_cache,
                        route_caches.setdefault(
                            cell.cache_key(),
                            make_route_cache(plan.endpoints,
                                             config=cache_config,
                                             namespace=cell.cache_key())),
                        collect_metrics=collect_metrics)
                except ReproError as exc:
                    conn.send(("cellerror",
                               _error_doc(cell, type(exc).__name__,
                                          str(exc))))
                    continue
                conn.send(("ok", doc))
            conn.send(("groupdone", gid))
    except Exception:
        conn.send(("fatal", traceback.format_exc()))
    finally:
        try:
            conn.send(("exit",))
        except Exception:  # pipe already torn down mid-shutdown
            pass


@dataclass
class _WorkerState:
    proc: mp.process.BaseProcess
    conn: mp_connection.Connection
    group: int | None = None
    current: str | None = None
    started: float = field(default_factory=time.monotonic)
    broken: bool = False   # pipe raised mid-recv; treat as dead
    finished: bool = False  # sent its final "exit" message


def _run_parallel(plan: SweepPlan, pending: list[SweepCell],
                  store: SweepCheckpoint | None,
                  log: Callable[[str], None] | None,
                  jobs: int, keep_going: bool, cell_timeout: float | None,
                  max_respawns: int, failures: dict[str, dict],
                  stream=None,
                  cache_config: RouteCacheConfig | None = None
                  ) -> dict[str, dict]:
    if not pending:
        return {}
    collect = stream is not None
    groups = _group_cells(pending)
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)

    groups_by_id: dict[int, list[SweepCell]] = dict(enumerate(groups))
    group_queue: deque[int] = deque(groups_by_id)
    next_gid = len(groups)

    workers: dict[int, _WorkerState] = {}
    next_wid = 0

    def spawn() -> None:
        nonlocal next_wid
        parent_conn, child_conn = ctx.Pipe()
        # each worker gets its slice of the pool-wide route-cache budget
        worker_cache = None if cache_config is None \
            else cache_config.for_worker(next_wid, jobs)
        proc = ctx.Process(target=_sweep_worker,
                           args=(plan, child_conn, next_wid, collect,
                                 worker_cache),
                           daemon=True)
        proc.start()
        child_conn.close()
        workers[next_wid] = _WorkerState(proc=proc, conn=parent_conn)
        next_wid += 1

    for _ in range(min(jobs, len(groups))):
        spawn()
    if log is not None:
        log(f"running {len(pending)} cells across {len(workers)} workers "
            f"({len(groups)} topology groups)")

    outstanding: dict[str, SweepCell] = {c.key(): c for c in pending}
    records: dict[str, dict] = {}
    attempts: dict[str, int] = {}
    respawns_used = 0
    reaped: list[_WorkerState] = []
    failure: str | None = None

    def record_failure(doc: dict) -> None:
        nonlocal failure
        key = doc["key"]
        outstanding.pop(key, None)
        if keep_going:
            failures[key] = doc
            if store is not None:
                store.append(doc)
            if log is not None:
                log(_failure_log_line(doc))
        else:
            err = doc["error"]
            failure = (f"sweep cell {key} failed: "
                       f"{err['type']}: {err['message']}")

    def handle(state: _WorkerState, msg: tuple) -> None:
        nonlocal failure
        kind = msg[0]
        if kind == "ok":
            doc = msg[1]
            records[doc["key"]] = doc
            outstanding.pop(doc["key"], None)
            state.current = None
            if store is not None:
                store.append(doc)
            if stream is not None:
                stream.write_cell(doc)
            if log is not None:
                log(f"[{doc['workload']}]" + _cell_log_line(doc))
        elif kind == "cellerror":
            state.current = None
            record_failure(msg[1])
        elif kind == "start":
            state.current = msg[1]
            state.started = time.monotonic()
        elif kind == "groupdone":
            state.group = None
            state.current = None
        elif kind == "fatal":
            failure = f"sweep worker failed:\n{msg[1]}"
        else:  # "exit"
            state.finished = True

    def drain(state: _WorkerState) -> None:
        """Pump every message the worker has delivered so far.

        A pipe torn mid-write by a dying worker can raise on ``recv``
        (EOF, OSError, or an unpickling error); the worker is then marked
        broken and reaped on the next liveness check.
        """
        while not state.broken:
            try:
                if not state.conn.poll():
                    return
                msg = state.conn.recv()
            except Exception:
                state.broken = True
                return
            handle(state, msg)

    def dispatch() -> None:
        for state in workers.values():
            if not group_queue:
                return
            if state.group is None and not state.broken and not state.finished:
                gid = group_queue.popleft()
                try:
                    state.conn.send(("run", gid, groups_by_id[gid]))
                except Exception:
                    state.broken = True
                    group_queue.appendleft(gid)
                    continue
                state.group = gid

    def reap_dead_workers() -> None:
        nonlocal respawns_used, next_gid, failure
        for wid, state in list(workers.items()):
            if not state.broken and state.proc.is_alive():
                continue
            # dead: crash, OOM-kill, or our timeout kill below — salvage
            # results still buffered in its pipe, then its in-flight group
            workers.pop(wid)
            drain(state)
            state.conn.close()
            state.proc.join(timeout=5.0)
            reaped.append(state)
            crashed = state.current if state.current in outstanding else None
            requeue = []
            if state.group is not None:
                requeue = [c for c in groups_by_id[state.group]
                           if c.key() in outstanding]
            if crashed is not None:
                attempts[crashed] = attempts.get(crashed, 0) + 1
                if attempts[crashed] >= _MAX_CELL_ATTEMPTS:
                    record_failure(_error_doc(
                        outstanding[crashed], "WorkerCrashed",
                        f"worker died {attempts[crashed]} times running "
                        f"this cell (last exit code {state.proc.exitcode})"))
                    requeue = [c for c in requeue if c.key() != crashed]
            if state.finished and not requeue:
                continue  # clean shutdown, nothing lost
            if log is not None:
                log(f"worker {wid} died (exit code {state.proc.exitcode}); "
                    f"requeueing {len(requeue)} unfinished cell(s)")
            if requeue:
                groups_by_id[next_gid] = requeue
                group_queue.append(next_gid)
                next_gid += 1
            if respawns_used < max_respawns and outstanding:
                respawns_used += 1
                spawn()
            if not workers and outstanding and failure is None:
                failure = (f"all sweep workers died and the respawn budget "
                           f"({max_respawns}) is exhausted; "
                           f"{len(outstanding)} cells unfinished")

    def kill_timed_out_workers() -> None:
        if cell_timeout is None:
            return
        now = time.monotonic()
        for wid, state in list(workers.items()):
            if (state.current is not None
                    and state.current in outstanding
                    and now - state.started > cell_timeout):
                cell = outstanding[state.current]
                state.proc.kill()
                state.current = None  # failed here, not a crash retry
                record_failure(_error_doc(
                    cell, "CellTimeout",
                    f"cell exceeded the {cell_timeout:g}s cell timeout in "
                    f"worker {wid}; worker killed"))

    try:
        while outstanding and failure is None:
            dispatch()
            conns = {state.conn: state for state in workers.values()
                     if not state.broken}
            for ready in mp_connection.wait(list(conns),
                                            timeout=_POLL_SECONDS):
                drain(conns[ready])
                if failure is not None:
                    break
            if failure is not None or not outstanding:
                break
            kill_timed_out_workers()
            reap_dead_workers()
    finally:
        for state in workers.values():
            try:
                state.conn.send(("stop",))
            except Exception:
                state.broken = True
        deadline = time.monotonic() + 5.0
        for state in workers.values():
            state.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if state.proc.is_alive():
                state.proc.terminate()
                state.proc.join()
            state.conn.close()
    if failure is not None:
        raise SimulationError(failure)
    return records
