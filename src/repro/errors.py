"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library problems without also
swallowing programming errors (``TypeError`` and friends propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Raised when a topology cannot be constructed from the given parameters
    (non-factorable sizes, invalid uplink densities, odd subtorus sides...)."""


class RoutingError(ReproError):
    """Raised when a routing function is asked for an impossible path
    (unknown vertices, unreachable destination under the routing rule)."""


class WorkloadError(ReproError):
    """Raised when a workload cannot be generated for the requested task
    count (e.g. a 3D-grid workload on a non-cubic task count)."""


class SimulationError(ReproError):
    """Raised when the flow engine detects an inconsistent state
    (deadlocked dependency graph, flow over a missing link, ...)."""


class ConfigError(ReproError):
    """Raised for invalid experiment configurations."""


class ServiceError(ReproError):
    """Raised by the simulation service layer (broker, store, protocol)."""


class ProtocolError(ServiceError):
    """Raised for malformed or invalid service requests/responses.

    The HTTP front-end maps this to a 400 response whose body names the
    offending field, mirroring the CLI's exit-2 validation style.
    """


class QueueFullError(ServiceError):
    """Raised when the bounded service queue rejects a submission.

    The typed backpressure signal: the HTTP front-end maps it to a 429
    response carrying the queue ``capacity`` and current ``depth`` so
    clients can back off instead of retrying blind.
    """

    def __init__(self, *, capacity: int, depth: int,
                 tenant: str | None = None) -> None:
        self.capacity = capacity
        self.depth = depth
        self.tenant = tenant
        who = f" (tenant {tenant!r})" if tenant else ""
        super().__init__(
            f"service queue is full{who}: {depth} of {capacity} slots "
            f"occupied; retry after in-flight work drains")


class DegradedNetworkError(ReproError):
    """Raised when injected faults physically disconnect endpoint pairs.

    ``pairs`` lists the ``(src, dst)`` endpoint pairs for which no surviving
    path exists — rerouting cannot save them, only repairing the network can.
    """

    def __init__(self, pairs: list[tuple[int, int]], *,
                 faults: str | None = None) -> None:
        self.pairs = list(pairs)
        shown = ", ".join(f"{s}->{d}" for s, d in self.pairs[:8])
        if len(self.pairs) > 8:
            shown += f", ... ({len(self.pairs)} pairs)"
        message = f"network disconnected under faults: no path for {shown}"
        if faults:
            message += f" [{faults}]"
        super().__init__(message)
