"""Abstract topology interface.

Vertex-id convention (dense ints, shared by every topology):

* ``0 .. num_endpoints-1``         — endpoints (QFDBs),
* ``num_endpoints .. +num_switches`` — switches,
* two *virtual NIC* vertices per endpoint after that — sources/sinks of the
  injection and consumption links.

Every route produced by :meth:`Topology.route` starts with the source
endpoint's injection link and ends with the destination endpoint's
consumption link, both at the nominal link rate.  This models the QFDB's
finite injection/ejection bandwidth uniformly across all topologies — it is
what serialises the ``Reduce`` hot-spot identically everywhere (paper §5.2:
"the consumption port at the root becomes the bottleneck").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import RoutingError
from repro.topology.linktable import LinkTable
from repro.units import DEFAULT_LINK_CAPACITY

#: Cap on the candidate routes a single pair may expose.  Candidate sets
#: are enumerated deterministic-first, so truncation keeps the
#: deterministic route and an unbiased prefix of the alternatives; without
#: a cap the hybrid cross products (tied uplinks x upper-fabric walks) can
#: explode combinatorially at large arities.
MAX_ROUTE_CANDIDATES = 64


class Topology(ABC):
    """A network topology with a deterministic routing function.

    Subclasses build all *network* links in their constructor and finish by
    calling :meth:`_finalize`, which appends the per-endpoint NIC links and
    freezes the link table.
    """

    #: Human-readable topology family name; subclasses override.
    name: str = "topology"

    def __init__(self, num_endpoints: int, num_switches: int,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        if num_endpoints <= 0:
            raise RoutingError("topology needs at least one endpoint")
        self.num_endpoints = num_endpoints
        self.num_switches = num_switches
        self.link_capacity = float(link_capacity)
        # NIC link rate defaults to the network rate; raising it is the
        # ablation that de-serialises the Reduce hot-spot (paper §5.2)
        self.nic_capacity = float(nic_capacity if nic_capacity is not None
                                  else link_capacity)
        self.links = LinkTable()
        self._inj: np.ndarray | None = None
        self._cons: np.ndarray | None = None
        self._tier_names: tuple[str, ...] | None = None
        self._tier_index: np.ndarray | None = None

    # ----------------------------------------------------------- construction
    def _finalize(self) -> None:
        """Append NIC (injection/consumption) links and freeze the table."""
        base = self.num_endpoints + self.num_switches
        inj, cons = [], []
        for e in range(self.num_endpoints):
            nic_in = base + e                      # virtual source vertex
            nic_out = base + self.num_endpoints + e  # virtual sink vertex
            inj.append(self.links.add(nic_in, e, self.nic_capacity))
            cons.append(self.links.add(e, nic_out, self.nic_capacity))
        self._inj = np.asarray(inj, dtype=np.int64)
        self._cons = np.asarray(cons, dtype=np.int64)
        self.links.freeze()

    # ---------------------------------------------------------------- routing
    @abstractmethod
    def vertex_path(self, src: int, dst: int) -> list[int]:
        """Deterministic vertex walk from endpoint ``src`` to endpoint ``dst``.

        Returns vertex ids starting with ``src`` and ending with ``dst``
        (``[src]`` when they coincide).  Every consecutive pair must be a
        registered link.
        """

    def route(self, src: int, dst: int) -> list[int]:
        """Link ids traversed by a flow ``src -> dst``, NIC links included."""
        if self._inj is None or self._cons is None:
            raise RoutingError("topology not finalised; call _finalize()")
        self._check_endpoint(src)
        self._check_endpoint(dst)
        body = self.links.path_to_links(self.vertex_path(src, dst))
        return [int(self._inj[src]), *body, int(self._cons[dst])]

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """Every minimal vertex walk ``src -> dst``, deterministic first.

        Index 0 is always :meth:`vertex_path` — the deterministic route —
        and every other entry has the same hop count (all candidates are
        minimal under the family's routing rule).  The default is the
        single deterministic walk; families with routing freedom (wrap-tie
        tori, redundant tree ancestors, e-cube dimension orders, hybrid
        uplink/fabric combinations) override this.
        """
        return [self.vertex_path(src, dst)]

    def route_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal link-id routes ``src -> dst``, NIC links included.

        ``route(src, dst) == route_candidates(src, dst)[0]`` always holds:
        candidate 0 is the deterministic route, and the
        :mod:`~repro.routing.policy` layer relies on that as the escape
        path.  Candidates are deduplicated and capped at
        :data:`MAX_ROUTE_CANDIDATES`.
        """
        if self._inj is None or self._cons is None:
            raise RoutingError("topology not finalised; call _finalize()")
        self._check_endpoint(src)
        self._check_endpoint(dst)
        inj, cons = int(self._inj[src]), int(self._cons[dst])
        out: list[list[int]] = []
        seen: set[tuple[int, ...]] = set()
        for walk in self.vertex_path_candidates(src, dst):
            key = tuple(walk)
            if key in seen:
                continue
            seen.add(key)
            out.append([inj, *self.links.path_to_links(walk), cons])
            if len(out) >= MAX_ROUTE_CANDIDATES:
                break
        return out

    def hops(self, src: int, dst: int) -> int:
        """Network hop count of the routed path (NIC links excluded)."""
        return len(self.vertex_path(src, dst)) - 1

    # ------------------------------------------------------------- inspection
    @property
    def injection_links(self) -> np.ndarray:
        """Per-endpoint injection link ids."""
        if self._inj is None:
            raise RoutingError("topology not finalised")
        return self._inj

    @property
    def consumption_links(self) -> np.ndarray:
        """Per-endpoint consumption link ids."""
        if self._cons is None:
            raise RoutingError("topology not finalised")
        return self._cons

    @property
    def num_network_links(self) -> int:
        """Directed network links (NIC links excluded)."""
        return self.links.num_links - 2 * self.num_endpoints

    def link_tiers(self) -> tuple[tuple[str, ...], np.ndarray]:
        """Per-link architectural-tier metadata.

        Returns ``(names, index)`` where ``names[index[i]]`` is the tier of
        link ``i``.  Tiers partition the link table; the observability
        layer and the static analyzer aggregate per-link quantities (bits,
        busy time, load) over them.  Flat topologies expose ``("network",
        "nic")``; hybrids refine ``network`` into ``lower_torus`` /
        ``uplinks`` / ``upper_fabric`` (see
        :meth:`~repro.topology.hybrid.NestedTopology._classify_links`).
        Computed once after finalisation and cached.
        """
        if self._tier_names is None:
            if self._inj is None:
                raise RoutingError("topology not finalised; call _finalize()")
            names, index = self._classify_links()
            index = np.asarray(index, dtype=np.int64)
            index.setflags(write=False)
            self._tier_names = tuple(names)
            self._tier_index = index
        assert self._tier_index is not None
        return self._tier_names, self._tier_index

    def _classify_links(self) -> tuple[tuple[str, ...], np.ndarray]:
        """Default classification: NIC links vs everything else."""
        nic_base = self.num_endpoints + self.num_switches
        srcs = np.asarray(self.links.sources, dtype=np.int64)
        dsts = np.asarray(self.links.destinations, dtype=np.int64)
        nic = (srcs >= nic_base) | (dsts >= nic_base)
        return ("network", "nic"), nic.astype(np.int64)

    def describe(self) -> str:
        """One-line summary used by reports and reprs."""
        return (f"{self.name}: {self.num_endpoints} endpoints, "
                f"{self.num_switches} switches, "
                f"{self.num_network_links} directed network links")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"

    def to_networkx(self):
        """Undirected networkx view of the network graph (tests/analysis).

        NIC links are omitted; each duplex pair collapses to one edge.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_endpoints + self.num_switches))
        nic_base = self.num_endpoints + self.num_switches
        for u, v in zip(self.links.sources, self.links.destinations):
            if u < nic_base and v < nic_base:
                g.add_edge(u, v)
        return g

    # ---------------------------------------------------------------- helpers
    def _check_endpoint(self, e: int) -> None:
        if not 0 <= e < self.num_endpoints:
            raise RoutingError(
                f"endpoint {e} out of range [0, {self.num_endpoints})")
