"""Transient fault timelines: seeded failure/repair event sequences.

The static fault model (:class:`~repro.topology.degraded.FaultSet`) fixes
the broken machine before a simulation starts.  At the paper's
131,072-QFDB scale, component MTBF guarantees faults arrive *during* jobs:
this module provides the reproducible event sequences the transient engine
(:mod:`repro.engine.transient`) merges with flow completions, so the
network degrades and heals mid-run.

A :class:`FaultTimeline` is an ordered sequence of :class:`FaultEvent`
records with absolute timestamps.  Events at or before t=0 describe the
machine's state at job start (equivalent to a static fault set); later
events fire inside the event loop.  :meth:`FaultTimeline.epochs` folds the
events into cumulative :class:`TimelineEpoch` states — each carrying the
full :class:`~repro.topology.degraded.FaultSet` in force from its start
time — which is what the engine and the route-cache keys consume: a
repaired machine's epoch has a *smaller* fault set, and a fully-healed
epoch reuses the healthy cache partition outright.

:class:`TimelineSpec` is the declarative form a
:class:`~repro.sweep.plan.SweepCell` embeds: a seeded sampling recipe
(``cables`` uniform failure times over ``[0, horizon)``, exponential
repairs with mean ``mttr``) that reproduces the same timeline wherever the
cell runs — the Monte-Carlo campaign runner fans one spec per seed across
the sweep workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.degraded import FaultSet, validate_fault_ids
from repro.topology.hybrid import NestedTopology


@dataclass(frozen=True)
class FaultEvent:
    """Everything that happens to the machine at one instant.

    ``fail_links``/``repair_links`` hold *directed* link ids — like
    :class:`~repro.topology.degraded.FaultSet`, always both directions of
    each cable.  ``fail_uplinks``/``repair_uplinks`` hold endpoint ids
    whose upper-tier port dies/returns (hybrids only).
    """

    time: float
    fail_links: frozenset[int] = frozenset()
    fail_uplinks: frozenset[int] = frozenset()
    repair_links: frozenset[int] = frozenset()
    repair_uplinks: frozenset[int] = frozenset()

    @property
    def empty(self) -> bool:
        return not (self.fail_links or self.fail_uplinks
                    or self.repair_links or self.repair_uplinks)


@dataclass(frozen=True)
class TimelineEpoch:
    """The cumulative fault state in force from ``start`` onwards."""

    start: float
    faults: FaultSet


class FaultTimeline:
    """A reproducible, time-ordered sequence of fault and repair events.

    Events are sorted by time and same-instant events are merged on
    construction; :meth:`epochs` materialises the cumulative fault states.
    An empty timeline is the healthy machine —
    :func:`repro.engine.simulate` treats it exactly like no timeline at
    all (bitwise-identical results).
    """

    def __init__(self, events=(), *,
                 provenance: tuple | None = None) -> None:
        merged: dict[float, list[frozenset[int]]] = {}
        for ev in events:
            if ev.empty:
                continue
            slot = merged.setdefault(float(ev.time),
                                     [frozenset(), frozenset(),
                                      frozenset(), frozenset()])
            slot[0] |= ev.fail_links
            slot[1] |= ev.fail_uplinks
            slot[2] |= ev.repair_links
            slot[3] |= ev.repair_uplinks
        out = []
        for t in sorted(merged):
            fl, fu, rl, ru = merged[t]
            both = (fl & rl) | (fu & ru)
            if both:
                raise TopologyError(
                    f"timeline fails and repairs the same component(s) "
                    f"{sorted(both)[:8]} at t={t:g}")
            out.append(FaultEvent(t, fl, fu, rl, ru))
        self.events: tuple[FaultEvent, ...] = tuple(out)
        self.provenance = provenance
        self._epochs: tuple[TimelineEpoch, ...] | None = None

    # -------------------------------------------------------------- sampling
    @classmethod
    def sample(cls, topology: Topology, *, cables: int = 0, uplinks: int = 0,
               seed: int = 0, horizon: float,
               mttr: float | None = None) -> FaultTimeline:
        """Draw a seeded timeline of transient faults over ``[0, horizon)``.

        ``cables`` distinct duplex cables (NIC links never fail) and
        ``uplinks`` distinct uplink ports (hybrids only) each fail at a
        uniform time in ``[0, horizon)``; with ``mttr`` each failure is
        repaired after an independent Exp(``mttr``) delay, otherwise
        failures are permanent.  Reproducible: the same ``(topology,
        cables, uplinks, seed, horizon, mttr)`` always yields the same
        timeline, wherever it is rebuilt (the campaign workers rely on
        this).
        """
        if cables < 0 or uplinks < 0:
            raise TopologyError(
                f"fault counts must be non-negative, got cables={cables}, "
                f"uplinks={uplinks}")
        if not horizon > 0:
            raise TopologyError(
                f"timeline horizon must be positive, got {horizon}")
        if mttr is not None and not mttr > 0:
            raise TopologyError(
                f"mttr must be positive (or None for permanent faults), "
                f"got {mttr}")
        events: list[FaultEvent] = []
        if cables:
            pairs = _duplex_cables(topology)
            if cables > len(pairs):
                raise TopologyError(
                    f"cannot fail {cables} cables; only {len(pairs)} exist")
            # independent sub-streams: cable identity, failure times and
            # repair delays never perturb each other across parameter changes
            rng = np.random.default_rng([seed, 0x71])
            chosen = rng.choice(len(pairs), size=cables, replace=False)
            times = rng.uniform(0.0, horizon, size=cables)
            delays = rng.exponential(mttr, size=cables) if mttr else None
            for i in range(cables):
                lids = frozenset(pairs[int(chosen[i])])
                t = float(times[i])
                events.append(FaultEvent(t, fail_links=lids))
                if delays is not None:
                    events.append(FaultEvent(t + float(delays[i]),
                                             repair_links=lids))
        if uplinks:
            if not isinstance(topology, NestedTopology):
                raise TopologyError(
                    "uplink-port faults only apply to hybrid topologies, "
                    f"not {topology.name!r}")
            ports = [s * topology.plan.nodes + local
                     for s in range(topology.num_subtori)
                     for local in topology.plan.uplinked]
            if uplinks > len(ports):
                raise TopologyError(
                    f"cannot fail {uplinks} uplink ports; only "
                    f"{len(ports)} exist")
            rng = np.random.default_rng([seed, 0x7A])
            chosen = rng.choice(len(ports), size=uplinks, replace=False)
            times = rng.uniform(0.0, horizon, size=uplinks)
            delays = rng.exponential(mttr, size=uplinks) if mttr else None
            for i in range(uplinks):
                port = frozenset({ports[int(chosen[i])]})
                t = float(times[i])
                events.append(FaultEvent(t, fail_uplinks=port))
                if delays is not None:
                    events.append(FaultEvent(t + float(delays[i]),
                                             repair_uplinks=port))
        return cls(events, provenance=(
            cables, uplinks, seed, float(horizon),
            None if mttr is None else float(mttr)))

    @classmethod
    def from_fault_set(cls, faults: FaultSet,
                       time: float = 0.0) -> FaultTimeline:
        """A timeline equivalent to a static fault set from ``time`` on.

        With ``time <= 0`` and no further events, a transient run matches
        the static ``DegradedTopology`` run exactly (the regression suite
        asserts this).
        """
        if faults.empty:
            return cls(())
        return cls((FaultEvent(time, fail_links=faults.failed_links,
                               fail_uplinks=faults.failed_uplinks),))

    # ------------------------------------------------------------- inspection
    @property
    def empty(self) -> bool:
        return not self.events

    def epochs(self) -> tuple[TimelineEpoch, ...]:
        """Cumulative fault states, one per event instant, in time order.

        Strict bookkeeping: failing an already-failed component or
        repairing a healthy one raises — a hand-built timeline that does
        either is almost certainly mis-specified, and silently coalescing
        would make the repair/failure counts lie.
        """
        if self._epochs is None:
            links: set[int] = set()
            uplinks: set[int] = set()
            out = []
            for ev in self.events:
                double = ev.fail_links & links
                if double:
                    raise TopologyError(
                        f"timeline fails already-failed link(s) "
                        f"{sorted(double)[:8]} at t={ev.time:g}")
                ghost = ev.repair_links - links
                if ghost:
                    raise TopologyError(
                        f"timeline repairs link(s) {sorted(ghost)[:8]} that "
                        f"are not failed at t={ev.time:g}")
                double_u = ev.fail_uplinks & uplinks
                if double_u:
                    raise TopologyError(
                        f"timeline fails already-dead uplink port(s) "
                        f"{sorted(double_u)[:8]} at t={ev.time:g}")
                ghost_u = ev.repair_uplinks - uplinks
                if ghost_u:
                    raise TopologyError(
                        f"timeline repairs uplink port(s) "
                        f"{sorted(ghost_u)[:8]} that are not dead at "
                        f"t={ev.time:g}")
                links -= ev.repair_links
                links |= ev.fail_links
                uplinks -= ev.repair_uplinks
                uplinks |= ev.fail_uplinks
                out.append(TimelineEpoch(ev.time,
                                         FaultSet(frozenset(links),
                                                  frozenset(uplinks))))
            self._epochs = tuple(out)
        return self._epochs

    def validate(self, topology: Topology) -> None:
        """Range-check every event against ``topology`` and the bookkeeping.

        Raises :class:`~repro.errors.TopologyError` naming the offending
        ids — the same checks :class:`~repro.topology.degraded
        .DegradedTopology` applies to a static fault set at wrap time.
        """
        for ev in self.events:
            validate_fault_ids(topology, ev.fail_links, ev.fail_uplinks)
            validate_fault_ids(topology, ev.repair_links, ev.repair_uplinks)
        self.epochs()

    def fingerprint(self) -> dict:
        """Checkpoint-stable description of this timeline."""
        if self.provenance is not None:
            cables, uplinks, seed, horizon, mttr = self.provenance
            return {"cables": cables, "uplinks": uplinks, "seed": seed,
                    "horizon": horizon, "mttr": mttr}
        return {"events": [
            [ev.time, sorted(ev.fail_links), sorted(ev.fail_uplinks),
             sorted(ev.repair_links), sorted(ev.repair_uplinks)]
            for ev in self.events]}

    def describe(self) -> str:
        fails = sum(len(ev.fail_links) // 2 + len(ev.fail_uplinks)
                    for ev in self.events)
        repairs = sum(len(ev.repair_links) // 2 + len(ev.repair_uplinks)
                      for ev in self.events)
        if not self.events:
            return "empty timeline"
        span = (self.events[0].time, self.events[-1].time)
        return (f"{fails} failures, {repairs} repairs over "
                f"[{span[0]:g}s, {span[1]:g}s]")


def _duplex_cables(topology: Topology) -> list[tuple[int, ...]]:
    """Directed-link-id pairs of every network cable, in id order.

    The same enumeration :func:`repro.topology.faults.sample_link_failures`
    uses, kept separate because the timeline needs the *grouping* (a repair
    restores the whole cable, not one direction).
    """
    pairs: dict[tuple[int, int], list[int]] = {}
    nic_base = topology.num_endpoints + topology.num_switches
    for lid in range(topology.links.num_links):
        u, v = topology.links.endpoints_of(lid)
        if u >= nic_base or v >= nic_base:
            continue  # NIC link
        key = (min(u, v), max(u, v))
        pairs.setdefault(key, []).append(lid)
    return [tuple(lids) for lids in pairs.values()]


@dataclass(frozen=True)
class TimelineSpec:
    """Declarative, hashable sampling recipe for a :class:`FaultTimeline`.

    The sweep-cell form of a timeline: small enough to pickle to workers
    and to fingerprint into checkpoint keys, rebuilt into the identical
    timeline wherever the cell runs (sampling is seeded).  ``horizon`` and
    ``mttr`` are absolute seconds — the campaign runner derives them from
    each topology's healthy makespan.
    """

    cables: int = 0
    uplinks: int = 0
    seed: int = 0
    horizon: float = 1.0
    mttr: float | None = None

    def build(self, topology: Topology) -> FaultTimeline:
        return FaultTimeline.sample(
            topology, cables=self.cables, uplinks=self.uplinks,
            seed=self.seed, horizon=self.horizon, mttr=self.mttr)

    def fingerprint(self) -> dict:
        return {"cables": self.cables, "uplinks": self.uplinks,
                "seed": self.seed, "horizon": self.horizon,
                "mttr": self.mttr}

    def label(self) -> str:
        """Checkpoint-key suffix; %.9g keeps float horizons stable."""
        mttr = "-" if self.mttr is None else f"{self.mttr:.9g}"
        return (f"tl({self.cables},{self.uplinks},s{self.seed},"
                f"h{self.horizon:.9g},r{mttr})")
