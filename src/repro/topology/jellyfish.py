"""Jellyfish topology (related-work comparator).

The paper's related work covers Jellyfish (Singla et al., NSDI'12): a
random regular graph of switches that is incrementally expandable and can
beat tree-like topologies, at the price of unstructured routing and
wiring.  This implementation uses a seeded ``networkx`` random regular
graph, ``p`` endpoints per switch, and deterministic shortest-path routing
(per-source BFS trees with sorted neighbour order, computed lazily and
cached per source switch) — so, unlike the structured families, routes
here are data-driven rather than algebraic, which is exactly the
practicality drawback the paper points out.
"""

from __future__ import annotations

from repro.errors import RoutingError, TopologyError
from repro.topology.base import Topology
from repro.units import DEFAULT_LINK_CAPACITY


class JellyfishTopology(Topology):
    """Random ``degree``-regular switch graph with ``p`` endpoints each."""

    name = "jellyfish"

    def __init__(self, num_switches: int, degree: int,
                 ports_per_switch: int, *, seed: int = 0,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        if num_switches < 2 or ports_per_switch < 1:
            raise TopologyError("need >= 2 switches and >= 1 port each")
        if degree >= num_switches or degree < 2 or \
                (num_switches * degree) % 2:
            raise TopologyError(
                f"no {degree}-regular graph on {num_switches} switches")
        super().__init__(num_switches * ports_per_switch, num_switches,
                         link_capacity, nic_capacity)
        self.degree = degree
        self.ports_per_switch = ports_per_switch
        self.seed = seed
        self._switch_offset = self.num_endpoints

        # networkx is an optional extra; only constructing a jellyfish
        # (sampling the random regular graph) needs it
        from repro.topology.faults import _require_networkx
        nx = _require_networkx("the jellyfish comparator")
        graph = nx.random_regular_graph(degree, num_switches, seed=seed)
        if not nx.is_connected(graph):  # rare at these degrees; re-seed
            for retry in range(1, 64):
                graph = nx.random_regular_graph(degree, num_switches,
                                                seed=seed + retry * 7919)
                if nx.is_connected(graph):
                    break
            else:  # pragma: no cover - probability ~0 for degree >= 3
                raise TopologyError("could not sample a connected jellyfish")
        # sorted adjacency makes the BFS routing deterministic
        self._adj: list[list[int]] = [
            sorted(graph.neighbors(s)) for s in range(num_switches)]
        for s in range(num_switches):
            for t in self._adj[s]:
                if t > s:
                    self.links.add_duplex(self._switch_offset + s,
                                          self._switch_offset + t,
                                          link_capacity)
        for e in range(self.num_endpoints):
            self.links.add_duplex(e, self._switch_offset + e // ports_per_switch,
                                  link_capacity)
        self._finalize()
        self._bfs_parent: dict[int, list[int]] = {}

    # ---------------------------------------------------------------- routing
    def _parents_from(self, root: int) -> list[int]:
        """BFS parent array rooted at switch ``root`` (lazily cached)."""
        cached = self._bfs_parent.get(root)
        if cached is not None:
            return cached
        parent = [-1] * self.num_switches
        parent[root] = root
        frontier = [root]
        while frontier:
            nxt = []
            for s in frontier:
                for t in self._adj[s]:
                    if parent[t] == -1:
                        parent[t] = s
                        nxt.append(t)
            frontier = nxt
        if any(p == -1 for p in parent):  # pragma: no cover
            raise RoutingError("jellyfish switch graph is disconnected")
        self._bfs_parent[root] = parent
        return parent

    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        s_src = src // self.ports_per_switch
        s_dst = dst // self.ports_per_switch
        if s_src == s_dst:
            return [src, self._switch_offset + s_src, dst]
        # walk dst -> src up the BFS tree rooted at the source switch, so
        # paths from one source fan out along one shortest-path tree
        parent = self._parents_from(s_src)
        chain = [s_dst]
        while chain[-1] != s_src:
            chain.append(parent[chain[-1]])
        switches = [self._switch_offset + s for s in reversed(chain)]
        return [src, *switches, dst]

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        """Exact: BFS eccentricity maximised over all switches, plus access."""
        worst = 0
        for root in range(self.num_switches):
            parent = self._parents_from(root)
            depth = [0] * self.num_switches
            order = sorted(range(self.num_switches),
                           key=lambda s: self._depth(parent, s))
            for s in order:
                if s != root:
                    depth[s] = depth[parent[s]] + 1
            worst = max(worst, max(depth))
        return worst + 2

    @staticmethod
    def _depth(parent: list[int], s: int) -> int:
        d = 0
        while parent[s] != s:
            s = parent[s]
            d += 1
        return d

    def describe(self) -> str:
        base = super().describe()
        return (f"{base} [degree={self.degree}, "
                f"{self.ports_per_switch} ports/switch, seed={self.seed}]")
