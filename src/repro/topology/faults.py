"""Fault-tolerance analysis (paper future work).

The paper's conclusions list "mechanisms for fault tolerance" and extending
the topology analyses "to incorporate ... fault tolerance" as future work.
This module provides that analysis for every shipped topology:

* **routed-path vulnerability** — the deterministic routing functions of
  the paper (DOR, UP*/DOWN* with d-mod-k, e-cube, nested) offer exactly one
  path per pair, so a pair *breaks* when any of its links fails.
  :func:`vulnerability` measures the broken-pair fraction under sampled
  random link failures.
* **physical resilience** — how many of those broken pairs remain
  physically connected (an adaptive/rerouting layer could save them).
* **uplink fail-over for hybrids** — a concrete rerouting mechanism:
  when the *uplink port* of a node's designated uplink fails (the node
  itself stays alive and keeps routing torus traffic), traffic falls back
  to the nearest subtorus node with a surviving uplink
  (:func:`reroute_uplinks`), quantifying how much of the hybrid's
  vulnerability an implementable mechanism recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, TopologyError
from repro.routing import dor
from repro.topology.base import Topology
from repro.topology.hybrid import NestedTopology


def _require_networkx(purpose: str = "fault analysis"):
    """Import networkx or fail fast with an actionable message.

    networkx is an optional extra: only the static fault *analysis* and
    the jellyfish comparator need it (the dynamic degraded-routing layer
    in :mod:`repro.topology.degraded` does not).  Failing here, before
    any sampling work, beats an ``ImportError`` surfacing deep inside the
    pair loop.
    """
    try:
        import networkx as nx
    except ImportError as exc:
        raise ReproError(
            f"install networkx for {purpose} "
            f"(pip install 'repro[faults]')") from exc
    return nx


@dataclass(frozen=True)
class VulnerabilityReport:
    """Outcome of a sampled link-failure experiment."""

    failed_links: int
    pairs_sampled: int
    broken_pairs: int          # routed path crosses a failed link
    disconnected_pairs: int    # no physical path at all remains

    @property
    def broken_fraction(self) -> float:
        return self.broken_pairs / self.pairs_sampled if self.pairs_sampled else 0.0

    @property
    def reroutable_fraction(self) -> float:
        """Broken pairs an adaptive routing layer could still serve."""
        if self.broken_pairs == 0:
            return 0.0
        return 1.0 - self.disconnected_pairs / self.broken_pairs

    def summary(self) -> str:
        return (f"{self.failed_links} failed links: "
                f"{self.broken_fraction * 100:.2f}% of pairs broken, "
                f"{self.reroutable_fraction * 100:.1f}% of those reroutable")


def sample_link_failures(topology: Topology, count: int, *,
                         seed: int = 0) -> set[int]:
    """Pick ``count`` random failed *duplex* cables (both directions die).

    NIC links never fail (a dead NIC is a dead node, a different model).
    """
    pairs = {}
    nic_base = topology.num_endpoints + topology.num_switches
    for lid in range(topology.links.num_links):
        u, v = topology.links.endpoints_of(lid)
        if u >= nic_base or v >= nic_base:
            continue  # NIC link
        key = (min(u, v), max(u, v))
        pairs.setdefault(key, []).append(lid)
    if count > len(pairs):
        raise TopologyError(
            f"cannot fail {count} cables; only {len(pairs)} exist")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=count, replace=False)
    keys = list(pairs)
    failed: set[int] = set()
    for i in chosen:
        failed.update(pairs[keys[int(i)]])
    return failed


def route_survives(topology: Topology, src: int, dst: int,
                   failed_links: set[int]) -> bool:
    """True when the deterministic route avoids every failed link."""
    return not any(l in failed_links for l in topology.route(src, dst))


def vulnerability(topology: Topology, failed_links: set[int], *,
                  pairs: int = 1000, seed: int = 0) -> VulnerabilityReport:
    """Sampled broken-pair fraction under a set of failed links."""
    nx = _require_networkx()

    n = topology.num_endpoints
    rng = np.random.default_rng(seed)
    graph = topology.to_networkx()
    for lid in failed_links:
        u, v = topology.links.endpoints_of(lid)
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)

    broken = 0
    disconnected = 0
    for _ in range(pairs):
        s = int(rng.integers(n))
        d = int(rng.integers(n - 1))
        if d >= s:
            d += 1
        if not route_survives(topology, s, d, failed_links):
            broken += 1
            if not nx.has_path(graph, s, d):
                disconnected += 1
    return VulnerabilityReport(failed_links=len(failed_links) // 2,
                               pairs_sampled=pairs, broken_pairs=broken,
                               disconnected_pairs=disconnected)


def reroute_uplinks(topology: NestedTopology, src: int, dst: int,
                    failed_uplink_nodes: set[int]) -> list[int]:
    """Hybrid uplink fail-over: route around dead uplink *ports*.

    ``failed_uplink_nodes`` lists endpoints whose upper-tier port has
    failed; the endpoints themselves stay alive (they still forward torus
    traffic and may appear as transit hops).  Produces a vertex path like
    ``vertex_path`` but, whenever the designated uplink of either endpoint
    is in the failed set, substitutes the nearest surviving uplinked node
    of the same subtorus (DOR distance, lowest local id breaking ties).
    Raises when a subtorus has no surviving uplink (that subtorus is cut
    off from the upper tier).
    """
    if not isinstance(topology, NestedTopology):
        raise TopologyError("uplink fail-over only applies to hybrids")
    if topology.subtorus_of(src) == topology.subtorus_of(dst):
        return topology.vertex_path(src, dst)  # never uses uplinks

    us = _designated_or_fallback(topology, src, failed_uplink_nodes)
    ud = _designated_or_fallback(topology, dst, failed_uplink_nodes)
    up = topology._local_path(src, us)
    switches = [topology._switch_offset + s
                for s in topology.fabric.port_path(topology.port_of(us),
                                                   topology.port_of(ud))]
    down = topology._local_path(ud, dst)
    return up + switches + down


def _designated_or_fallback(topology: NestedTopology, endpoint: int,
                            failed: set[int]) -> int:
    designated = topology.designated_uplink(endpoint)
    if designated not in failed:
        return designated
    plan = topology.plan
    s, local = divmod(endpoint, plan.nodes)
    base = s * plan.nodes
    my_coord = dor.index_to_coord(local, plan.dims)
    best: tuple[int, int] | None = None  # (distance, local id)
    for candidate in plan.uplinked:
        node = base + candidate
        if node in failed:
            continue
        dist = dor.distance(my_coord, dor.index_to_coord(candidate, plan.dims),
                            plan.dims)
        key = (dist, candidate)
        if best is None or key < best:
            best = key
    if best is None:
        raise TopologyError(
            f"subtorus {s} has no surviving uplink; upper tier unreachable")
    return base + best[1]


def failover_coverage(topology: NestedTopology, failed_uplink_nodes: set[int],
                      *, pairs: int = 500, seed: int = 0) -> float:
    """Fraction of inter-subtorus pairs served after uplink fail-over.

    A pair counts as served when :func:`reroute_uplinks` produces a valid
    walk that enters the upper tier through a surviving uplink port (the
    failed nodes may still appear as torus transit hops — only their
    upper-tier ports are dead).
    """
    n = topology.num_endpoints
    rng = np.random.default_rng(seed)
    served = 0
    total = 0
    for _ in range(pairs):
        s = int(rng.integers(n))
        d = int(rng.integers(n - 1))
        if d >= s:
            d += 1
        if topology.subtorus_of(s) == topology.subtorus_of(d):
            continue
        total += 1
        try:
            path = reroute_uplinks(topology, s, d, failed_uplink_nodes)
        except TopologyError:
            continue
        if not _uses_failed_port(topology, path, failed_uplink_nodes):
            served += 1
    return served / total if total else 1.0


def _uses_failed_port(topology: NestedTopology, path: list[int],
                      failed: set[int]) -> bool:
    """True when the walk crosses an endpoint<->switch hop of a dead port."""
    switch_lo = topology.num_endpoints
    for a, b in zip(path, path[1:]):
        if a in failed and b >= switch_lo:
            return True
        if b in failed and a >= switch_lo:
            return True
    return False
