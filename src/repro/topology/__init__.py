"""Network topologies of the paper's design space.

Concrete families:

* :class:`~repro.topology.torus.TorusTopology` — the Torus3D baseline,
* :class:`~repro.topology.fattree.FatTreeTopology` — the Fattree baseline,
* :class:`~repro.topology.ghc.GHCTopology` — standalone generalised hypercube,
* :class:`~repro.topology.nesttree.NestTree` — subtori nested in a fattree,
* :class:`~repro.topology.nestghc.NestGHC` — subtori nested in a GHC.

Plus the analysis (:mod:`~repro.topology.analysis`) and cost
(:mod:`~repro.topology.cost`) models behind the paper's Tables 1 and 2.
"""

from repro.topology.analysis import PathStats, path_length_stats, routing_diameter
from repro.topology.base import Topology
from repro.topology.bisection import (bisection_bandwidth, bisection_cables,
                                      bisection_per_endpoint)
from repro.topology.cost import CostModel, overhead_row
from repro.topology.degraded import (DegradedTopology, FaultSet, degrade,
                                     validate_fault_ids)
from repro.topology.dragonfly import DragonflyTopology, plan_dragonfly
from repro.topology.energy import EnergyModel, EnergyReport
from repro.topology.fattree import FatTreeFabric, FatTreeTopology
from repro.topology.faults import (VulnerabilityReport, failover_coverage,
                                   reroute_uplinks, sample_link_failures,
                                   vulnerability)
from repro.topology.ghc import GHCFabric, GHCTopology
from repro.topology.hybrid import NestedTopology, SubtorusPlan
from repro.topology.jellyfish import JellyfishTopology
from repro.topology.linktable import LinkTable
from repro.topology.nestghc import NestGHC
from repro.topology.nesttree import NestTree
from repro.topology.registry import available, build, register
from repro.topology.thintree import ThinTreeFabric, ThinTreeTopology
from repro.topology.timeline import (FaultEvent, FaultTimeline, TimelineEpoch,
                                     TimelineSpec)
from repro.topology.torus import TorusTopology

__all__ = [
    "CostModel",
    "bisection_bandwidth",
    "bisection_cables",
    "bisection_per_endpoint",
    "EnergyModel",
    "EnergyReport",
    "DegradedTopology",
    "FaultEvent",
    "FaultSet",
    "FaultTimeline",
    "TimelineEpoch",
    "TimelineSpec",
    "VulnerabilityReport",
    "degrade",
    "validate_fault_ids",
    "failover_coverage",
    "reroute_uplinks",
    "sample_link_failures",
    "vulnerability",
    "DragonflyTopology",
    "FatTreeFabric",
    "FatTreeTopology",
    "JellyfishTopology",
    "plan_dragonfly",
    "GHCFabric",
    "GHCTopology",
    "LinkTable",
    "NestGHC",
    "NestTree",
    "NestedTopology",
    "PathStats",
    "SubtorusPlan",
    "ThinTreeFabric",
    "ThinTreeTopology",
    "Topology",
    "TorusTopology",
    "available",
    "build",
    "overhead_row",
    "path_length_stats",
    "register",
    "routing_diameter",
]
