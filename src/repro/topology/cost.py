"""Cost and power overhead model (paper Table 2).

The paper estimates the overhead of the upper-tier switches relative to a
system that only uses the hard-wired torus.  Back-solving its Table 2
percentages against its switch counts gives an exactly linear model:

* one upper-tier switch costs **0.75** of a QFDB,
* one upper-tier switch consumes **0.25** of a QFDB's power

(e.g. the full fattree: ``9216 * 0.75 / 131072 = 5.27%`` cost and
``9216 * 0.25 / 131072 = 1.76%`` power — the exact reference values the
paper prints).  The model is parameterised so other assumptions can be
explored in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Linear overhead model, in units of one QFDB's cost/power."""

    switch_cost: float = 0.75
    switch_power: float = 0.25

    def __post_init__(self) -> None:
        if self.switch_cost < 0 or self.switch_power < 0:
            raise ConfigError("cost/power coefficients must be non-negative")

    def cost_increase(self, num_switches: int, num_endpoints: int) -> float:
        """Fractional cost overhead of the upper tier vs the bare torus."""
        if num_endpoints <= 0:
            raise ConfigError("need a positive endpoint count")
        return num_switches * self.switch_cost / num_endpoints

    def power_increase(self, num_switches: int, num_endpoints: int) -> float:
        """Fractional power overhead of the upper tier vs the bare torus."""
        if num_endpoints <= 0:
            raise ConfigError("need a positive endpoint count")
        return num_switches * self.switch_power / num_endpoints


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table 2."""

    label: str
    switches: int
    cost_increase: float
    power_increase: float

    def formatted(self) -> str:
        return (f"{self.label:>12} {self.switches:>8} "
                f"{self.cost_increase * 100:>7.2f}% {self.power_increase * 100:>7.2f}%")


def overhead_row(label: str, num_switches: int, num_endpoints: int,
                 model: CostModel | None = None) -> OverheadRow:
    """Evaluate the model for one configuration."""
    model = model or CostModel()
    return OverheadRow(
        label=label,
        switches=num_switches,
        cost_increase=model.cost_increase(num_switches, num_endpoints),
        power_increase=model.power_increase(num_switches, num_endpoints),
    )


def fattree_switch_count(ports: int, stages: int = 3) -> int:
    """Planned switch count of the upper-tier fattree for ``ports`` uplinks."""
    from repro.routing.updown import switch_count
    from repro.topology.planner import fattree_arities

    return switch_count(fattree_arities(ports, stages))


def ghc_switch_count(ports: int, ports_per_switch: int = 16,
                     dims: int = 4) -> int:
    """Planned switch count of the upper-tier GHC for ``ports`` uplinks."""
    from repro.topology.ghc import GHCFabric

    return GHCFabric.for_ports(ports, ports_per_switch, dims).num_switches


def upper_tier_switches(family: str, num_endpoints: int,
                        u: int | None = None) -> int:
    """Planned upper-tier switch count of any evaluated family.

    The cost/power objectives are a pure function of the design point —
    no topology build required — so Table 2 and the search optimizer share
    this planner-only helper.  The bare torus has no upper tier.
    """
    if family == "torus":
        return 0
    if family == "fattree":
        return fattree_switch_count(num_endpoints)
    if family in ("nesttree", "nestghc"):
        if u is None or num_endpoints % u:
            raise ConfigError(
                f"{family}: uplink density u={u!r} must divide "
                f"{num_endpoints} endpoints")
        ports = num_endpoints // u
        if family == "nestghc":
            return ghc_switch_count(ports)
        return fattree_switch_count(ports)
    raise ConfigError(f"no upper-tier switch planner for family {family!r}")
