"""Generalised k-ary n-tree (fattree) fabric and endpoint topology.

The fabric is reusable: the standalone :class:`FatTreeTopology` attaches one
endpoint per leaf port (the paper's Fattree baseline), while
:class:`~repro.topology.nesttree.NestTree` attaches *uplinked QFDBs* to the
same ports.  See :mod:`repro.routing.updown` for the switch-identity scheme
and the minimal UP*/DOWN* routing rule.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TopologyError
from repro.routing import updown
from repro.topology.base import Topology
from repro.topology.linktable import LinkTable
from repro.topology.planner import fattree_arities
from repro.units import DEFAULT_LINK_CAPACITY


class FatTreeFabric:
    """Switch-level structure of a generalised fattree.

    Local switch ids are dense in ``[0, num_switches)``, ordered by level and
    then by (subtree, intra-subtree digits).  The owner topology adds a
    vertex offset to obtain global vertex ids.
    """

    def __init__(self, arities: Sequence[int]) -> None:
        arities = tuple(int(k) for k in arities)
        if not arities or any(k < 2 for k in arities):
            raise TopologyError(f"invalid fattree arities {arities}")
        self.arities = arities
        self.num_ports = updown.leaf_count(arities)
        self.num_stages = len(arities)
        # subtree sizes K_l = k_1 * ... * k_l and per-level switch-id offsets
        self._group: list[int] = [1]
        for k in arities:
            self._group.append(self._group[-1] * k)
        self._level_offset: list[int] = [0, 0]  # 1-based levels
        for level in range(1, self.num_stages):
            self._level_offset.append(
                self._level_offset[level] + self.num_ports // arities[level - 1])
        self.num_switches = updown.switch_count(arities)

    # -------------------------------------------------------------- indexing
    def switch_index(self, sw: updown.Switch) -> int:
        """Dense local id of a switch."""
        per_subtree = self._group[sw.level - 1]  # k_1 * ... * k_{l-1}
        digit_value = 0
        for d, k in zip(reversed(sw.digits), reversed(self.arities[: sw.level - 1])):
            digit_value = digit_value * k + d
        return self._level_offset[sw.level] + sw.subtree * per_subtree + digit_value

    def port_switch(self, port: int) -> int:
        """Local id of the level-1 switch owning a leaf port."""
        if not 0 <= port < self.num_ports:
            raise TopologyError(f"fattree port {port} out of range")
        return port // self.arities[0]

    # ------------------------------------------------------------------ build
    def build_links(self, links: LinkTable, offset: int, capacity: float) -> None:
        """Register every duplex switch-to-switch link, ids offset by ``offset``."""
        for level in range(1, self.num_stages):
            k_up = self.arities[level - 1]       # up-ports of a level-l switch
            subtrees = self.num_ports // self._group[level]
            for subtree in range(subtrees):
                for digit_value in range(self._group[level - 1]):
                    digits = self._digits_of(digit_value, level)
                    lo = updown.Switch(level, subtree, digits)
                    for x in range(k_up):
                        hi = updown.Switch(level + 1,
                                           subtree // self.arities[level],
                                           digits + (x,))
                        links.add_duplex(offset + self.switch_index(lo),
                                         offset + self.switch_index(hi),
                                         capacity)

    def _digits_of(self, value: int, level: int) -> tuple[int, ...]:
        digits = []
        for k in self.arities[: level - 1]:
            digits.append(value % k)
            value //= k
        return tuple(digits)

    # ---------------------------------------------------------------- routing
    def port_path(self, src_port: int, dst_port: int) -> list[int]:
        """Local switch-id sequence between two distinct leaf ports."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [a]
        switches = updown.switch_path(src_port, dst_port, self.arities)
        return [self.switch_index(s) for s in switches]

    def port_paths(self, src_port: int, dst_port: int) -> list[list[int]]:
        """All minimal switch-id walks (every NCA choice), deterministic first."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [[a]]
        return [[self.switch_index(s) for s in walk]
                for walk in updown.switch_paths(src_port, dst_port, self.arities)]

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        """Worst-case port-to-port hop count (access links included)."""
        return 2 * self.num_stages


class FatTreeTopology(Topology):
    """The paper's Fattree baseline: one endpoint per leaf port."""

    name = "fattree"

    def __init__(self, arities: Sequence[int], *,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        fabric = FatTreeFabric(arities)
        super().__init__(fabric.num_ports, fabric.num_switches,
                         link_capacity, nic_capacity)
        self.fabric = fabric
        offset = self.num_endpoints
        fabric.build_links(self.links, offset, link_capacity)
        for e in range(self.num_endpoints):
            self.links.add_duplex(e, offset + fabric.port_switch(e), link_capacity)
        self._switch_offset = offset
        self._finalize()

    @classmethod
    def for_ports(cls, ports: int, stages: int = 3, **kwargs) -> "FatTreeTopology":
        """Build with planner-chosen arities (paper rule at full scale)."""
        return cls(fattree_arities(ports, stages), **kwargs)

    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        body = [self._switch_offset + s for s in self.fabric.port_path(src, dst)]
        return [src, *body, dst]

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal UP*/DOWN* walks (one per common-ancestor switch)."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [[src]]
        return [[src, *(self._switch_offset + s for s in body), dst]
                for body in self.fabric.port_paths(src, dst)]

    def routing_diameter(self) -> int:
        """Worst-case endpoint-to-endpoint hop count (``2 * stages``)."""
        return self.fabric.routing_diameter()
