"""Hybrid multi-tier machinery: subtorus partitioning and uplink placement.

The paper's hybrid topologies keep the hardware-imposed torus at the lower
tier, but *partition* it: the system is a collection of independent
``t x t x t`` subtori, and all inter-subtorus traffic crosses an upper-tier
fabric (a fattree for NestTree, a GHC for NestGHC).

Uplink density follows Fig. 3 of the paper: one uplink per ``u`` QFDBs,
``u in {1, 2, 4, 8}``, placed within each 2x2x2 subgrid of the subtorus:

* ``u = 1`` — every node is uplinked,
* ``u = 2`` — nodes with even X; the others reach one in a single X hop,
* ``u = 4`` — two opposite vertices of each 2x2x2 subgrid, so every node is
  at most one hop from its designated uplink,
* ``u = 8`` — the subgrid root only; up to three hops away.

Routing (paper Section 4.2): intra-subtorus traffic *always stays inside the
subtorus* (DOR); inter-subtorus traffic goes DOR to the source's designated
uplink node, minimally across the upper fabric, then DOR from the
destination's designated uplink node to the destination.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import TopologyError
from repro.routing import dor
from repro.topology.base import MAX_ROUTE_CANDIDATES, Topology
from repro.topology.linktable import LinkTable
from repro.units import DEFAULT_LINK_CAPACITY

#: Densities supported by the paper's placement rules.
VALID_DENSITIES = (1, 2, 4, 8)


class UpperFabric(Protocol):
    """What a hybrid needs from its upper tier (fattree or GHC)."""

    num_ports: int
    num_switches: int

    def build_links(self, links: LinkTable, offset: int, capacity: float) -> None: ...
    def port_switch(self, port: int) -> int: ...
    def port_path(self, src_port: int, dst_port: int) -> list[int]: ...
    def port_paths(self, src_port: int, dst_port: int) -> list[list[int]]: ...
    def routing_diameter(self) -> int: ...


class SubtorusPlan:
    """Geometry of one subtorus: uplinked nodes and designated uplinks.

    Local node ids linearise ``(x, y, z)`` with x fastest; the same plan is
    replicated across every subtorus of the system.
    """

    def __init__(self, t: int, u: int) -> None:
        if u not in VALID_DENSITIES:
            raise TopologyError(f"uplink density u={u} not in {VALID_DENSITIES}")
        if t < 1:
            raise TopologyError(f"subtorus side t={t} must be positive")
        if u > 1 and t % 2:
            raise TopologyError(
                f"density u={u} needs an even subtorus side, got t={t}")
        self.t = t
        self.u = u
        self.dims = (t, t, t)
        self.nodes = t ** 3
        if self.nodes % u:
            raise TopologyError(f"subtorus of {self.nodes} nodes not divisible by u={u}")

        uplinked: list[int] = []
        designated: list[int] = []
        for local in range(self.nodes):
            x, y, z = dor.index_to_coord(local, self.dims)
            if self._is_uplinked(x, y, z):
                uplinked.append(local)
            designated.append(dor.coord_to_index(self._designated(x, y, z), self.dims))
        self.uplinked = uplinked                      # ascending local ids
        self.designated = designated                  # local id -> local uplink id
        self.uplink_rank = {l: i for i, l in enumerate(uplinked)}
        if len(uplinked) != self.nodes // u:          # placement-rule sanity
            raise TopologyError(
                f"placement produced {len(uplinked)} uplinks, expected {self.nodes // u}")

        # All uplinked nodes at minimal DOR distance from each node,
        # designated uplink first.  These are the candidate exits for
        # adaptive/ecmp routing: any of them reaches the upper fabric in the
        # same number of lower-tier hops, so substituting one keeps the
        # lower-tier leg minimal (the total route is still length-filtered
        # against the deterministic route, because the upper-fabric leg may
        # differ between exit ports).
        self.tied_uplinks: list[tuple[int, ...]] = []
        coords = [dor.index_to_coord(l, self.dims) for l in range(self.nodes)]
        for local in range(self.nodes):
            des = self.designated[local]
            d0 = dor.distance(coords[local], coords[des], self.dims)
            ties = [des]
            for up in uplinked:
                if up != des and dor.distance(coords[local], coords[up],
                                              self.dims) == d0:
                    ties.append(up)
            self.tied_uplinks.append(tuple(ties))

    # ------------------------------------------------------------- placement
    def _is_uplinked(self, x: int, y: int, z: int) -> bool:
        if self.u == 1:
            return True
        if self.u == 2:
            return x % 2 == 0
        if self.u == 4:
            return (x % 2, y % 2, z % 2) in ((0, 0, 0), (1, 1, 1))
        return x % 2 == 0 and y % 2 == 0 and z % 2 == 0  # u == 8

    def _designated(self, x: int, y: int, z: int) -> tuple[int, int, int]:
        """The uplinked node this node routes through (Fig. 3 arrows)."""
        if self.u == 1:
            return (x, y, z)
        bx, by, bz = x - x % 2, y - y % 2, z - z % 2  # 2x2x2 subgrid base
        if self.u == 2:
            return (bx, y, z)
        if self.u == 4:
            # nearest of the two opposite subgrid vertices (<= 1 hop)
            if (x % 2) + (y % 2) + (z % 2) <= 1:
                return (bx, by, bz)
            return (bx + 1, by + 1, bz + 1)
        return (bx, by, bz)  # u == 8: subgrid root

    # --------------------------------------------------------------- metrics
    def max_hops_to_uplink(self) -> int:
        """Worst-case DOR hops from a node to its designated uplink."""
        return max(
            dor.distance(dor.index_to_coord(l, self.dims),
                         dor.index_to_coord(d, self.dims), self.dims)
            for l, d in enumerate(self.designated)
        )

    def intra_diameter(self) -> int:
        """DOR diameter of the subtorus itself."""
        return sum(k // 2 for k in self.dims)


class NestedTopology(Topology):
    """A system of independent subtori nested under an upper fabric.

    Endpoint ids: subtorus ``s``, local node ``l`` -> ``s * t^3 + l``.
    Upper-fabric port ``p`` enumerates uplinked nodes subtorus-major, in
    ascending local id.
    """

    name = "nested"

    def __init__(self, num_endpoints: int, plan: SubtorusPlan,
                 fabric: UpperFabric, *,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        if num_endpoints % plan.nodes:
            raise TopologyError(
                f"{num_endpoints} endpoints do not tile {plan.nodes}-node subtori")
        num_subtori = num_endpoints // plan.nodes
        ports_needed = num_subtori * len(plan.uplinked)
        if fabric.num_ports != ports_needed:
            raise TopologyError(
                f"fabric has {fabric.num_ports} ports, hybrid needs {ports_needed}")
        super().__init__(num_endpoints, fabric.num_switches,
                         link_capacity, nic_capacity)
        self.plan = plan
        self.fabric = fabric
        self.num_subtori = num_subtori
        self._switch_offset = num_endpoints

        # lower tier: one independent torus per subtorus
        for s in range(num_subtori):
            base = s * plan.nodes
            for local in range(plan.nodes):
                coord = dor.index_to_coord(local, plan.dims)
                for nb in dor.neighbors(coord, plan.dims):
                    self.links.add(base + local,
                                   base + dor.coord_to_index(nb, plan.dims),
                                   link_capacity)
        # upper tier fabric + uplink access links
        fabric.build_links(self.links, self._switch_offset, link_capacity)
        uplinks_per_subtorus = len(plan.uplinked)
        for s in range(num_subtori):
            base = s * plan.nodes
            for rank, local in enumerate(plan.uplinked):
                port = s * uplinks_per_subtorus + rank
                self.links.add_duplex(base + local,
                                      self._switch_offset + fabric.port_switch(port),
                                      link_capacity)
        self._finalize()

    # ---------------------------------------------------------------- helpers
    def subtorus_of(self, endpoint: int) -> int:
        """Which subtorus an endpoint belongs to."""
        self._check_endpoint(endpoint)
        return endpoint // self.plan.nodes

    def port_of(self, endpoint: int) -> int:
        """Upper-fabric port of an *uplinked* endpoint."""
        s, local = divmod(endpoint, self.plan.nodes)
        try:
            rank = self.plan.uplink_rank[local]
        except KeyError:
            raise TopologyError(f"endpoint {endpoint} has no uplink") from None
        return s * len(self.plan.uplinked) + rank

    def designated_uplink(self, endpoint: int) -> int:
        """The uplinked endpoint that carries this endpoint's upper-tier traffic."""
        s, local = divmod(endpoint, self.plan.nodes)
        return s * self.plan.nodes + self.plan.designated[local]

    def _local_path(self, a: int, b: int) -> list[int]:
        """DOR walk between two endpoints of the same subtorus (global ids)."""
        s = a // self.plan.nodes
        base = s * self.plan.nodes
        coords = dor.path(dor.index_to_coord(a - base, self.plan.dims),
                          dor.index_to_coord(b - base, self.plan.dims),
                          self.plan.dims)
        return [base + dor.coord_to_index(c, self.plan.dims) for c in coords]

    def _local_paths(self, a: int, b: int) -> list[list[int]]:
        """All minimal DOR walks between same-subtorus endpoints (global ids)."""
        base = (a // self.plan.nodes) * self.plan.nodes
        walks = dor.paths(dor.index_to_coord(a - base, self.plan.dims),
                          dor.index_to_coord(b - base, self.plan.dims),
                          self.plan.dims)
        return [[base + dor.coord_to_index(c, self.plan.dims) for c in walk]
                for walk in walks]

    def tied_uplinks_of(self, endpoint: int) -> list[int]:
        """Uplinked endpoints at minimal DOR distance, designated first."""
        s, local = divmod(endpoint, self.plan.nodes)
        base = s * self.plan.nodes
        return [base + up for up in self.plan.tied_uplinks[local]]

    # ---------------------------------------------------------------- routing
    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        if self.subtorus_of(src) == self.subtorus_of(dst):
            return self._local_path(src, dst)  # never leaves the subtorus
        us = self.designated_uplink(src)
        ud = self.designated_uplink(dst)
        up = self._local_path(src, us)
        switches = [self._switch_offset + s
                    for s in self.fabric.port_path(self.port_of(us), self.port_of(ud))]
        down = self._local_path(ud, dst)
        return up + switches + down

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal nested walks ``src -> dst``.

        Intra-subtorus pairs expose every minimal DOR walk.  Inter-subtorus
        pairs cross every combination of (tied exit uplink) x (minimal DOR
        leg to it) x (minimal upper-fabric walk) x (tied entry uplink) x
        (minimal DOR leg from it), filtered to the deterministic route's
        total length — an alternate exit port can sit closer to or further
        from the entry port in the upper fabric, and only same-length
        combinations are minimal.  The deterministic route (designated
        uplinks, d-mod-k fabric walk, positive wrap tie-breaks) comes first.
        """
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [[src]]
        if self.subtorus_of(src) == self.subtorus_of(dst):
            return self._local_paths(src, dst)
        det_len = len(self.vertex_path(src, dst))
        out: list[list[int]] = []
        for us in self.tied_uplinks_of(src):
            for ud in self.tied_uplinks_of(dst):
                fabric_walks = self.fabric.port_paths(self.port_of(us),
                                                      self.port_of(ud))
                for up in self._local_paths(src, us):
                    for body in fabric_walks:
                        switches = [self._switch_offset + s for s in body]
                        for down in self._local_paths(ud, dst):
                            walk = up + switches + down
                            if len(walk) != det_len:
                                continue
                            out.append(walk)
                            if len(out) >= MAX_ROUTE_CANDIDATES:
                                return out
        return out

    # --------------------------------------------------------------- analysis
    def _classify_links(self):
        """Refine ``network`` into the hybrid's three architectural tiers.

        ``lower_torus`` — links between two endpoints (intra-subtorus DOR
        cables); ``uplinks`` — endpoint <-> upper-tier switch access links;
        ``upper_fabric`` — switch <-> switch links of the fattree/GHC.
        """
        import numpy as np

        ep = self.num_endpoints
        nic_base = ep + self.num_switches
        srcs = np.asarray(self.links.sources, dtype=np.int64)
        dsts = np.asarray(self.links.destinations, dtype=np.int64)
        nic = (srcs >= nic_base) | (dsts >= nic_base)
        lower = (srcs < ep) & (dsts < ep)
        upper = ~nic & (srcs >= ep) & (dsts >= ep)
        index = np.ones(srcs.shape[0], dtype=np.int64)  # default: uplinks
        index[lower] = 0
        index[upper] = 2
        index[nic] = 3
        return ("lower_torus", "uplinks", "upper_fabric", "nic"), index

    def routing_diameter(self) -> int:
        """Exact worst-case hop count under the nested routing rule."""
        to_uplink = self.plan.max_hops_to_uplink()
        inter = to_uplink + 1 + self.fabric.routing_diameter() - 2 + 1 + to_uplink
        if self.num_subtori == 1:
            return self.plan.intra_diameter()
        return max(self.plan.intra_diameter(), inter)
