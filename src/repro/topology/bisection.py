"""Closed-form bisection widths of the shipped topologies.

The bisection width — the minimum number of duplex cables crossing any
balanced cut of the endpoints — is the classic static predictor for the
paper's *Bisection* workload (random pair-wise exchanges stress exactly
this cut).  Closed forms:

* **torus** ``k_1 x ... x k_d``: cutting across the largest dimension
  crosses two wrap boundaries of ``N / k_max`` cables each;
* **fattree** (non-oversubscribed): full bisection, ``N / 2``;
* **GHC**: along the dimension minimising it, each row of radix ``k``
  contributes ``floor(k/2) * ceil(k/2)`` row links across the cut;
* **hybrids**: subtori are pairwise independent, so a cut that splits the
  *subtori* in half only crosses the upper tier — the hybrid inherits its
  fabric's bisection (over ``N/u`` ports), never more.

These are widths of the specific natural cuts (upper bounds on the true
minimum); for these regular families the natural cut is known to be
optimal, and the test suite validates the small cases against brute force.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.fattree import FatTreeTopology
from repro.topology.ghc import GHCFabric, GHCTopology
from repro.topology.hybrid import NestedTopology
from repro.topology.nesttree import NestTree
from repro.topology.torus import TorusTopology


def torus_bisection(dims: tuple[int, ...], *, wraparound: bool = True) -> int:
    """Duplex cables across the balanced cut of a torus/mesh."""
    n = 1
    for k in dims:
        n *= k
    kmax = max(dims)
    per_boundary = n // kmax
    return per_boundary * (2 if wraparound and kmax > 2 else 1)


def fattree_bisection(ports: int) -> int:
    """A non-oversubscribed fattree delivers full bisection."""
    return ports // 2


def ghc_bisection(radices: tuple[int, ...], ports_per_switch: int) -> int:
    """Minimum over dimensions of the row-cut width of a GHC."""
    if not radices:
        # single switch: the "cut" passes through the switch backplane;
        # model it as the access links of half the ports
        return max(1, ports_per_switch // 2)
    n = 1
    for k in radices:
        n *= k
    best = None
    for k in radices:
        rows = n // k
        width = rows * (k // 2) * (k - k // 2)
        if best is None or width < best:
            best = width
    assert best is not None
    return best


def bisection_cables(topology: Topology) -> int:
    """Bisection width (duplex cables) of any shipped topology."""
    if isinstance(topology, TorusTopology):
        return torus_bisection(topology.dims, wraparound=topology.wraparound)
    if isinstance(topology, FatTreeTopology):
        return fattree_bisection(topology.num_endpoints)
    if isinstance(topology, GHCTopology):
        return ghc_bisection(topology.fabric.radices,
                             topology.fabric.ports_per_switch)
    if isinstance(topology, NestedTopology):
        fabric = topology.fabric
        if isinstance(fabric, GHCFabric):
            return ghc_bisection(fabric.radices, fabric.ports_per_switch)
        return fattree_bisection(fabric.num_ports)
    raise TopologyError(f"no bisection model for {type(topology).__name__}")


def bisection_bandwidth(topology: Topology) -> float:
    """Aggregate one-direction bandwidth across the cut, bits/s."""
    return bisection_cables(topology) * topology.link_capacity


def bisection_per_endpoint(topology: Topology) -> float:
    """Normalised bisection: cables per endpoint (1/2 = full bisection)."""
    return bisection_cables(topology) / topology.num_endpoints


def is_nesttree(topology: Topology) -> bool:
    """Convenience: classify hybrids by upper-tier family (reporting)."""
    return isinstance(topology, NestTree)
