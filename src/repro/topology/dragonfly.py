"""Dragonfly topology (related-work comparator).

The paper's related work singles out the Dragonfly (Kim et al., ISCA'08;
Cray Cascade) as "one of the latest network organizations that is getting
a great interest from the community" and notes its sensitivity to adverse
patterns.  This implementation lets the design-space sweeps include it:

* ``a`` routers per group, fully meshed (one local hop within a group),
* ``p`` endpoints per router,
* ``h`` global ports per router; group pairs are connected by exactly one
  cable using the *absolute* arrangement (group ``i``'s port towards group
  ``j`` is ``j`` minus one if ``j > i``), supporting any group count up to
  the canonical ``a*h + 1``.

Routing is minimal: local hop to the gateway router, one global hop, local
hop to the destination router — diameter 5 including access links.  The
pathological behaviour the paper mentions (adversarial group-to-group
traffic saturating single global cables) emerges naturally and is covered
by tests.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import DEFAULT_LINK_CAPACITY


def plan_dragonfly(num_endpoints: int) -> tuple[int, int, int, int]:
    """Choose balanced-ish ``(p, a, h, groups)`` for an endpoint count.

    Uses the classic balancing rule ``a = 2h, p = h`` with the smallest
    ``h`` in {1, 2, 4, 8, 16} whose group size divides ``num_endpoints``
    into an admissible group count (``2 <= groups <= a*h + 1``).
    """
    for h in (1, 2, 4, 8, 16):
        a, p = 2 * h, h
        group_size = p * a
        if num_endpoints % group_size:
            continue
        groups = num_endpoints // group_size
        if 2 <= groups <= a * h + 1:
            return p, a, h, groups
    raise TopologyError(
        f"no balanced dragonfly tiles {num_endpoints} endpoints")


class DragonflyTopology(Topology):
    """Canonical one-cable-per-group-pair dragonfly."""

    name = "dragonfly"

    def __init__(self, p: int, a: int, h: int, groups: int, *,
                 valiant: bool = False,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        if min(p, a, h, groups) < 1 or groups < 2:
            raise TopologyError(
                f"invalid dragonfly parameters p={p} a={a} h={h} g={groups}")
        if groups > a * h + 1:
            raise TopologyError(
                f"{groups} groups exceed the {a * h} global ports per group "
                f"(max {a * h + 1})")
        super().__init__(p * a * groups, a * groups, link_capacity,
                         nic_capacity)
        self.p, self.a, self.h, self.groups = p, a, h, groups
        self.valiant = valiant
        if valiant:
            self.name = "dragonfly-valiant"
        self._switch_offset = self.num_endpoints

        # intra-group full mesh
        for g in range(groups):
            for r1 in range(a):
                for r2 in range(r1 + 1, a):
                    self.links.add_duplex(self._router(g, r1),
                                          self._router(g, r2), link_capacity)
        # one global cable per group pair (absolute arrangement)
        for gi in range(groups):
            for gj in range(gi + 1, groups):
                self.links.add_duplex(self._gateway(gi, gj),
                                      self._gateway(gj, gi), link_capacity)
        # endpoint access links
        for e in range(self.num_endpoints):
            self.links.add_duplex(e, self._router_of(e), link_capacity)
        self._finalize()

    # ---------------------------------------------------------------- layout
    def _router(self, group: int, router: int) -> int:
        return self._switch_offset + group * self.a + router

    def _router_of(self, endpoint: int) -> int:
        return self._switch_offset + endpoint // self.p

    def group_of(self, endpoint: int) -> int:
        """Which dragonfly group an endpoint belongs to."""
        self._check_endpoint(endpoint)
        return endpoint // (self.p * self.a)

    def _gateway(self, src_group: int, dst_group: int) -> int:
        """The router of ``src_group`` holding the cable to ``dst_group``."""
        port = dst_group - 1 if dst_group > src_group else dst_group
        return self._router(src_group, port // self.h)

    # ---------------------------------------------------------------- routing
    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        r_src, r_dst = self._router_of(src), self._router_of(dst)
        if r_src == r_dst:
            return [src, r_src, dst]
        g_src, g_dst = self.group_of(src), self.group_of(dst)
        if g_src == g_dst:
            return [src, r_src, r_dst, dst]  # one local hop
        if self.valiant and self.groups > 2:
            via = self._intermediate_group(src, dst, g_src, g_dst)
            routers = (self._group_crossing(r_src, g_src, via)
                       + self._group_crossing(self._gateway(via, g_src),
                                              via, g_dst))
            routers = self._dedupe(routers + [r_dst])
        else:
            routers = self._dedupe(
                self._group_crossing(r_src, g_src, g_dst) + [r_dst])
        return [src, *routers, dst]

    def _group_crossing(self, at_router: int, group: int,
                        to_group: int) -> list[int]:
        """Routers visited from ``at_router`` up to arrival in ``to_group``."""
        ga = self._gateway(group, to_group)
        gb = self._gateway(to_group, group)
        if ga == at_router:
            return [at_router, gb]
        return [at_router, ga, gb]

    def _intermediate_group(self, src: int, dst: int,
                            g_src: int, g_dst: int) -> int:
        """Deterministic per-pair random-ish intermediate group (Valiant)."""
        via = (src * 2654435761 + dst * 40503 + 12345) % self.groups
        while via in (g_src, g_dst):
            via = (via + 1) % self.groups
        return via

    @staticmethod
    def _dedupe(vertices: list[int]) -> list[int]:
        out = [vertices[0]]
        for v in vertices[1:]:
            if v != out[-1]:
                out.append(v)
        return out

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        """Worst-case hop count including the two access links."""
        if self.groups < 2:
            return 3
        if self.valiant and self.groups > 2:
            return 7  # up to 3 local + 2 global router hops
        return 5

    def describe(self) -> str:
        base = super().describe()
        return (f"{base} [p={self.p}, a={self.a}, h={self.h}, "
                f"{self.groups} groups]")
