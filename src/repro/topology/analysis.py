"""Routing-aware topological analysis (paper Table 1).

The paper reports *average distance for uniform traffic* and *diameter*
under each topology's actual routing function — not graph-theoretic
shortest paths (hybrid routing is deliberately non-minimal: intra-subtorus
traffic never uses the upper tier).  This module therefore measures the
routing functions themselves:

* exact enumeration of all ordered distinct pairs for small systems,
* seeded uniform pair sampling for full-scale (131,072-endpoint) systems,
* the exact worst case from each topology's ``routing_diameter()`` method
  (validated against brute force in the test suite).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.topology.base import Topology

#: Above this many ordered pairs the analysis switches to sampling.
EXACT_PAIR_LIMIT = 4_000_000


@dataclass
class PathStats:
    """Distance statistics of a topology under its routing function."""

    topology: str
    num_endpoints: int
    average: float
    maximum: int          # observed maximum (== diameter when exact)
    exact: bool           # full enumeration vs sampling
    pairs_measured: int
    histogram: dict[int, int] = field(default_factory=dict)

    def distribution(self) -> dict[int, float]:
        """Hop-count histogram normalised to probabilities."""
        total = sum(self.histogram.values())
        return {h: c / total for h, c in sorted(self.histogram.items())}


def path_length_stats(topo: Topology, *, max_pairs: int = 100_000,
                      seed: int = 0) -> PathStats:
    """Average/maximum routed hop count over uniform endpoint pairs.

    Enumerates every ordered distinct pair when that costs no more routing
    calls than ``max_pairs`` (capped at :data:`EXACT_PAIR_LIMIT`); otherwise
    samples ``max_pairs`` distinct-pair draws with a seeded generator.
    """
    n = topo.num_endpoints
    total_pairs = n * (n - 1)
    hist: Counter[int] = Counter()
    if total_pairs <= min(max_pairs, EXACT_PAIR_LIMIT):
        exact = True
        for s in range(n):
            for d in range(n):
                if s != d:
                    hist[topo.hops(s, d)] += 1
        measured = total_pairs
    else:
        exact = False
        rng = np.random.default_rng(seed)
        measured = min(max_pairs, total_pairs)
        src = rng.integers(0, n, size=measured)
        dst = rng.integers(0, n - 1, size=measured)
        dst = np.where(dst >= src, dst + 1, dst)  # uniform over distinct pairs
        for s, d in zip(src.tolist(), dst.tolist()):
            hist[topo.hops(s, d)] += 1
    total = sum(hist.values())
    avg = sum(h * c for h, c in hist.items()) / total if total else 0.0
    return PathStats(topology=topo.name, num_endpoints=n, average=avg,
                     maximum=max(hist) if hist else 0, exact=exact,
                     pairs_measured=measured, histogram=dict(hist))


def routing_diameter(topo: Topology) -> int:
    """Exact diameter under routing.

    Uses the topology's closed-form ``routing_diameter()`` when available
    (all shipped topologies provide one), falling back to brute force.
    """
    method = getattr(topo, "routing_diameter", None)
    if method is not None:
        return int(method())
    n = topo.num_endpoints
    return max(topo.hops(s, d) for s in range(n) for d in range(n) if s != d)


def shortest_path_check(topo: Topology, *, pairs: int = 200,
                        seed: int = 0) -> float:
    """Average routed stretch vs graph shortest paths (sampled).

    1.0 means the routing function is minimal on every sampled pair; hybrid
    topologies exceed 1.0 by design.  Used by tests and the ablation bench.
    """
    import networkx as nx

    g = topo.to_networkx()
    rng = np.random.default_rng(seed)
    n = topo.num_endpoints
    stretches = []
    for _ in range(pairs):
        s = int(rng.integers(n))
        d = int(rng.integers(n - 1))
        if d >= s:
            d += 1
        opt = nx.shortest_path_length(g, s, d)
        stretches.append(topo.hops(s, d) / opt if opt else 1.0)
    return float(np.mean(stretches))
