"""Sizing helpers: factorising port counts into stage arities and radices.

The paper under-specifies the exact switch configurations, but its Table 2
switch counts pin the full-scale fattree arities down to ``(32, 32, 128)``
for 131,072 ports (and ``(32, 32, P/1024)`` for the thinner upper tiers).
This module reproduces that sizing rule at full scale and falls back to a
balanced factorisation for scaled-down systems, so experiments behave the
same shape-wise at any power-of-two size.
"""

from __future__ import annotations

from repro.errors import TopologyError


def prime_factors(n: int) -> list[int]:
    """Prime factorisation of ``n`` (ascending, with multiplicity)."""
    if n < 1:
        raise TopologyError(f"cannot factorise {n}")
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        out.append(n)
    return out


def balanced_factors(n: int, parts: int) -> tuple[int, ...]:
    """Split ``n`` into ``parts`` factors as close to equal as possible.

    Greedy: assign prime factors (largest first) to the currently smallest
    bucket.  Returns factors sorted ascending; factors of 1 are allowed only
    when ``n`` has fewer prime factors than ``parts``.
    """
    if parts < 1:
        raise TopologyError("parts must be >= 1")
    buckets = [1] * parts
    for p in sorted(prime_factors(n), reverse=True):
        buckets.sort()
        buckets[0] *= p
    return tuple(sorted(buckets))


def fattree_arities(ports: int, stages: int = 3) -> tuple[int, ...]:
    """Down-arities ``(k_1, .., k_n)`` of the upper-tier fattree.

    Uses the paper's full-scale rule — two radix-32 lower stages and a top
    stage absorbing the rest — whenever it applies (this reproduces Table 2's
    switch counts exactly); otherwise falls back to a balanced split.
    """
    if ports < 2:
        raise TopologyError(f"a fattree needs at least 2 ports, got {ports}")
    # the paper's full-scale configurations: (32, 32, 16..128) covers its
    # u = 8..1 upper tiers; smaller systems get a balanced split instead
    if stages == 3 and ports % 1024 == 0 and 16 <= ports // 1024 <= 128:
        return (32, 32, ports // 1024)
    arities = balanced_factors(ports, stages)
    if arities[0] < 2:
        # too few prime factors for this many stages; drop empty stages
        arities = tuple(k for k in arities if k > 1)
        if not arities:
            raise TopologyError(f"cannot build a fattree over {ports} ports")
    return arities


def ghc_radices(num_vertices: int, dims: int = 4) -> tuple[int, ...]:
    """Mixed radices of the upper-tier generalised hypercube.

    The paper's Table 1 diameters imply a 4-dimensional GHC upper tier at
    every density (endpoint-to-endpoint diameter 6 at u=1 means 4 switch
    hops), so the default is four near-balanced dimensions.  Dimensions of
    radix 1 are dropped for small vertex counts.
    """
    if num_vertices < 1:
        raise TopologyError(f"a GHC needs at least 1 vertex, got {num_vertices}")
    if num_vertices == 1:
        return ()  # degenerate single-switch fabric (no GHC links)
    return tuple(k for k in balanced_factors(num_vertices, dims) if k > 1)


def torus_dims(num_endpoints: int, dims: int = 3) -> tuple[int, ...]:
    """Near-balanced torus dimensions (full scale: 131072 -> 32x64x64).

    Sorted ascending so the reference 131,072-endpoint system matches the
    paper's torus (diameter 80, average distance ~40).
    """
    shape = balanced_factors(num_endpoints, dims)
    if shape[0] < 2:
        raise TopologyError(
            f"{num_endpoints} endpoints cannot fill a {dims}-D torus")
    return shape
