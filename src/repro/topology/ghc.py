"""Generalised hypercube (GHC) fabric and endpoint topology.

A GHC over mixed radices ``(k_1, ..., k_d)`` fully connects each dimension:
two switches are linked whenever their coordinates differ in exactly one
position, so one hop corrects an entire coordinate (Bhuyan & Agrawal, 1984).
Routing is e-cube (dimensions corrected in ascending order).

As in BCube-style deployments (the paper's stated inspiration for its GHC
upper tier), several endpoints share one GHC switch; the default of 16
endpoints per switch reproduces the paper's full-scale switch count of
8,192 for 131,072 uplinks at density u=1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TopologyError
from repro.routing import ecube
from repro.topology.base import Topology
from repro.topology.linktable import LinkTable
from repro.topology.planner import ghc_radices
from repro.units import DEFAULT_LINK_CAPACITY

#: Endpoints attached to each GHC switch (ExaNeSt full scale: 131072/8192).
DEFAULT_PORTS_PER_SWITCH = 16


class GHCFabric:
    """Switch-level structure of a generalised hypercube.

    Local switch ids are the mixed-radix linearisation of the coordinates
    (dimension 0 fastest-varying).  ``ports_per_switch`` consecutive ports
    share each switch.
    """

    def __init__(self, radices: Sequence[int], ports_per_switch: int) -> None:
        radices = tuple(int(k) for k in radices)
        if any(k < 2 for k in radices):
            raise TopologyError(f"invalid GHC radices {radices}")
        # an empty radix tuple is the degenerate single-switch fabric
        # (all ports on one switch; no GHC links)
        if ports_per_switch < 1:
            raise TopologyError("ports_per_switch must be >= 1")
        self.radices = radices
        self.ports_per_switch = ports_per_switch
        self.num_switches = 1
        for k in radices:
            self.num_switches *= k
        self.num_ports = self.num_switches * ports_per_switch

    @classmethod
    def for_ports(cls, ports: int,
                  ports_per_switch: int | None = None,
                  dims: int = 4) -> "GHCFabric":
        """Plan radices for ``ports`` uplinks.

        With ``ports_per_switch=None`` (the default) the attach density is
        chosen automatically: the largest density ``<= 16`` whose fabric
        degree is at least twice the density.  At the paper's full scale
        this picks 16 endpoints per switch (8192 switches for 131,072
        uplinks, degree 36 — Table 2's u=1 row); at scaled-down sizes it
        keeps the fabric provisioned in the same proportion instead of
        collapsing onto a handful of low-degree switches.

        An explicit ``ports_per_switch`` is honoured (lowered to the
        largest divisor of ``ports`` so every switch hosts the same count).
        """
        if ports_per_switch is not None:
            pps = min(ports_per_switch, ports)
            while ports % pps:
                pps -= 1
            return cls(ghc_radices(ports // pps, dims), pps)
        best = 1
        for pps in range(min(DEFAULT_PORTS_PER_SWITCH, ports), 0, -1):
            if ports % pps:
                continue
            radices = ghc_radices(ports // pps, dims)
            if sum(k - 1 for k in radices) >= 2 * pps:
                best = pps
                break
            best = max(best, 1)
        return cls(ghc_radices(ports // best, dims), best)

    # -------------------------------------------------------------- indexing
    def coord_of(self, switch: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of a local switch id."""
        if not 0 <= switch < self.num_switches:
            raise TopologyError(f"GHC switch {switch} out of range")
        coord = []
        for k in self.radices:
            coord.append(switch % k)
            switch //= k
        return tuple(coord)

    def index_of(self, coord: Sequence[int]) -> int:
        """Inverse of :meth:`coord_of`."""
        idx = 0
        for c, k in zip(reversed(tuple(coord)), reversed(self.radices)):
            if not 0 <= c < k:
                raise TopologyError(f"GHC coordinate {coord} out of range")
            idx = idx * k + c
        return idx

    def port_switch(self, port: int) -> int:
        """Local switch id owning a port."""
        if not 0 <= port < self.num_ports:
            raise TopologyError(f"GHC port {port} out of range")
        return port // self.ports_per_switch

    # ------------------------------------------------------------------ build
    def build_links(self, links: LinkTable, offset: int, capacity: float) -> None:
        """Register every duplex switch-to-switch link, ids offset by ``offset``."""
        for sw in range(self.num_switches):
            coord = self.coord_of(sw)
            stride = 1
            for dim, k in enumerate(self.radices):
                for v in range(coord[dim] + 1, k):
                    other = sw + (v - coord[dim]) * stride
                    links.add_duplex(offset + sw, offset + other, capacity)
                stride *= k

    # ---------------------------------------------------------------- routing
    def port_path(self, src_port: int, dst_port: int) -> list[int]:
        """Local switch-id sequence between two distinct ports (e-cube)."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [a]
        coords = ecube.path(self.coord_of(a), self.coord_of(b), self.radices)
        return [self.index_of(c) for c in coords]

    def port_paths(self, src_port: int, dst_port: int) -> list[list[int]]:
        """All minimal switch-id walks (every dimension-correction order)."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [[a]]
        walks = ecube.paths(self.coord_of(a), self.coord_of(b), self.radices)
        return [[self.index_of(c) for c in walk] for walk in walks]

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        """Worst-case port-to-port hop count (access links included)."""
        return len(self.radices) + 2

    def switch_degree(self) -> int:
        """Network degree of each switch (fabric links only)."""
        return ecube.degree(self.radices)


class GHCTopology(Topology):
    """Standalone generalised hypercube with endpoints attached to switches."""

    name = "ghc"

    def __init__(self, radices: Sequence[int],
                 ports_per_switch: int = DEFAULT_PORTS_PER_SWITCH, *,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        fabric = GHCFabric(radices, ports_per_switch)
        super().__init__(fabric.num_ports, fabric.num_switches,
                         link_capacity, nic_capacity)
        self.fabric = fabric
        offset = self.num_endpoints
        fabric.build_links(self.links, offset, link_capacity)
        for e in range(self.num_endpoints):
            self.links.add_duplex(e, offset + fabric.port_switch(e), link_capacity)
        self._switch_offset = offset
        self._finalize()

    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        body = [self._switch_offset + s for s in self.fabric.port_path(src, dst)]
        return [src, *body, dst]

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal e-cube walks (every dimension-correction order)."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [[src]]
        return [[src, *(self._switch_offset + s for s in body), dst]
                for body in self.fabric.port_paths(src, dst)]

    def routing_diameter(self) -> int:
        """Worst-case endpoint-to-endpoint hop count."""
        return self.fabric.routing_diameter()
