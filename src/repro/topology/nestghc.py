"""NestGHC(t, u): subtori nested into a generalised-hypercube upper tier."""

from __future__ import annotations

from repro.topology.ghc import GHCFabric
from repro.topology.hybrid import NestedTopology, SubtorusPlan
from repro.units import DEFAULT_LINK_CAPACITY


class NestGHC(NestedTopology):
    """The paper's NestGHC(t, u) hybrid.

    Same lower tier as :class:`~repro.topology.nesttree.NestTree`; the upper
    tier is a 4-dimensional generalised hypercube of switches, each hosting
    ``ports_per_switch`` uplinked QFDBs.  The default (None) sizes the
    attach density automatically: 16 per switch at the paper's full scale —
    reproducing its 8,192 switches for 131,072 uplinks at u=1 — and
    proportionally fewer on scaled-down systems so the fabric keeps the
    same degree-to-density provisioning.  The 4-D default matches the
    diameters implied by Table 1 (endpoint diameter 6 at u=1).
    """

    name = "nestghc"

    def __init__(self, num_endpoints: int, t: int, u: int, *,
                 ports_per_switch: int | None = None,
                 ghc_dims: int = 4,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        plan = SubtorusPlan(t, u)
        fabric = GHCFabric.for_ports(num_endpoints // u,
                                     ports_per_switch, ghc_dims)
        super().__init__(num_endpoints, plan, fabric,
                         link_capacity=link_capacity,
                         nic_capacity=nic_capacity)
        self.t = t
        self.u = u

    def describe(self) -> str:
        base = super().describe()
        return (f"{base} [t={self.t}, u={self.u}, "
                f"upper GHC radices {self.fabric.radices}, "
                f"{self.fabric.ports_per_switch} uplinks/switch]")
