"""Energy estimation for workloads on a topology (paper future work).

The paper's conclusions list "a revamp of our simulation tools so to be
able to perform energy estimation at the scale we are interested in" as
future work.  This module provides that estimation on top of the static
analyser: energy splits into

* **dynamic** energy — every bit pays a per-traversal cost on each link it
  crosses (transceiver + SerDes) and through each switch (buffering +
  crossbar), taken from the per-link byte loads of a
  :class:`~repro.engine.results.LinkLoadReport`;
* **static** energy — idle power of the QFDBs and upper-tier switches
  integrated over the workload's duration, with the switch/QFDB power
  ratio matching the calibrated Table 2 cost model (switch = 0.25 QFDB).

Default coefficients are representative of 10 Gbps FPGA transceivers and
embedded-class boards; every coefficient is a constructor parameter so the
energy ablation bench can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.results import LinkLoadReport
from repro.errors import ConfigError
from repro.topology.base import Topology


@dataclass(frozen=True)
class EnergyModel:
    """Linear energy model: joules per bit-hop plus idle watts."""

    #: Dynamic energy per bit per link traversal (transceiver pair).
    link_energy_per_bit: float = 15e-12
    #: Dynamic energy per bit through a switch (buffers + crossbar).
    switch_energy_per_bit: float = 20e-12
    #: Idle power of one QFDB (4x Zynq Ultrascale+ board), watts.
    qfdb_idle_power: float = 120.0
    #: Idle power of one upper-tier switch, watts (0.25 x QFDB, matching
    #: the Table 2 power calibration).
    switch_idle_power: float = 30.0

    def __post_init__(self) -> None:
        if min(self.link_energy_per_bit, self.switch_energy_per_bit,
               self.qfdb_idle_power, self.switch_idle_power) < 0:
            raise ConfigError("energy coefficients must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one workload execution."""

    dynamic_joules: float
    static_joules: float
    duration: float
    bits_delivered: float

    @property
    def total_joules(self) -> float:
        return self.dynamic_joules + self.static_joules

    @property
    def joules_per_bit(self) -> float:
        """Total energy divided by delivered payload bits."""
        if self.bits_delivered <= 0:
            return 0.0
        return self.total_joules / self.bits_delivered

    def summary(self) -> str:
        return (f"total={self.total_joules:.4g}J "
                f"(dynamic={self.dynamic_joules:.4g}J, "
                f"static={self.static_joules:.4g}J) "
                f"over {self.duration:.4g}s, "
                f"{self.joules_per_bit * 1e12:.2f} pJ/bit")


def estimate(topology: Topology, report: LinkLoadReport, duration: float,
             *, model: EnergyModel | None = None,
             payload_bits: float | None = None) -> EnergyReport:
    """Estimate the energy of a workload execution.

    Parameters
    ----------
    topology:
        The network the workload ran on (for device counts and vertex
        classification).
    report:
        Static link-load analysis of the same workload (bits per link).
    duration:
        Execution time in seconds (use the dynamic simulation's makespan).
    model:
        Energy coefficients; defaults are 10 Gbps-transceiver class.
    payload_bits:
        Delivered payload for the J/bit metric; defaults to the total NIC
        consumption-side traffic.
    """
    if duration < 0:
        raise ConfigError("duration must be non-negative")
    model = model or EnergyModel()

    num_ep = topology.num_endpoints
    switch_lo = num_ep
    switch_hi = num_ep + topology.num_switches
    srcs = topology.links.sources
    dsts = topology.links.destinations

    link_bits = 0.0
    switch_bits = 0.0
    for lid in range(topology.links.num_links):
        bits = float(report.loads[lid])
        if bits == 0.0:
            continue
        link_bits += bits
        # bits entering a switch pay the crossbar cost there
        if switch_lo <= dsts[lid] < switch_hi:
            switch_bits += bits
        _ = srcs  # (sources kept for symmetry / future per-device accounting)

    dynamic = (link_bits * model.link_energy_per_bit
               + switch_bits * model.switch_energy_per_bit)
    static = duration * (num_ep * model.qfdb_idle_power
                         + topology.num_switches * model.switch_idle_power)
    if payload_bits is None:
        payload_bits = float(report.loads[topology.consumption_links].sum())
    return EnergyReport(dynamic_joules=dynamic, static_joules=static,
                        duration=duration, bits_delivered=payload_bits)


def compare(topologies: dict[str, Topology], flows, *,
            model: EnergyModel | None = None,
            fidelity: str = "approx") -> dict[str, EnergyReport]:
    """Energy of one workload on several topologies (convenience driver).

    Runs the dynamic simulation for the duration and the static analyser
    for the loads, then applies the model.  Returns reports keyed like the
    input dict.
    """
    from repro.engine import analyze, simulate

    out: dict[str, EnergyReport] = {}
    for label, topo in topologies.items():
        # the dynamic run and the static pass route the same pairs on the
        # same machine; one shared cache routes each pair once
        route_cache: dict = {}
        sim = simulate(topo, flows, fidelity=fidelity,
                       route_cache=route_cache)
        loads = analyze(topo, flows, route_cache=route_cache)
        out[label] = estimate(topo, loads, sim.makespan, model=model)
    return out
