"""Degraded-network simulation layer (paper future work: fault tolerance).

:mod:`repro.topology.faults` answers the *static* question — how many pairs
break when links die.  This module answers the *dynamic* one the paper
leaves open: how much slower do the topologies actually run on a broken
machine?  :class:`DegradedTopology` wraps any built topology plus a
:class:`FaultSet` and presents the full :class:`~repro.topology.base.Topology`
interface, so the flow engine and the static analyzer simulate a degraded
network without knowing it — rerouted paths load links exactly like healthy
routes.

Fault taxonomy (see ``docs/fault-model.md``):

* **failed duplex cables** — both directed links of a network cable die.
  NIC (injection/consumption) links never fail: a dead NIC is a dead node,
  a different fault model.
* **failed uplink ports** (hybrids only) — the upper-tier port of an
  uplinked endpoint dies; the endpoint itself stays alive and keeps
  forwarding subtorus traffic.

Rerouting semantics, in order:

1. the topology's deterministic route, when it survives the fault set;
2. for hybrids with dead uplink ports, the paper-style fail-over of
   :func:`repro.topology.faults.reroute_uplinks` (nearest surviving uplink
   of the same subtorus);
3. a minimal detour — deterministic BFS over the surviving network graph;
4. :class:`~repro.errors.DegradedNetworkError` naming the disconnected
   pair when no physical path remains.  Never a silent drop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import DegradedNetworkError, TopologyError
from repro.topology import faults as faults_mod
from repro.topology.base import Topology
from repro.topology.hybrid import NestedTopology


@dataclass(frozen=True)
class FaultSet:
    """A reproducible set of injected faults.

    ``failed_links`` holds *directed* link ids, always both directions of
    each failed cable.  ``failed_uplinks`` holds endpoint ids whose
    upper-tier port is dead (hybrids only).  ``provenance`` records the
    ``(cables, uplinks, seed)`` triple when the set was sampled, so sweep
    checkpoints can fingerprint the faults without storing every id.
    """

    failed_links: frozenset[int] = frozenset()
    failed_uplinks: frozenset[int] = frozenset()
    provenance: tuple[int, int, int] | None = None

    @classmethod
    def sample(cls, topology: Topology, *, cables: int = 0, uplinks: int = 0,
               seed: int = 0) -> FaultSet:
        """Draw ``cables`` failed cables and ``uplinks`` dead uplink ports.

        Reproducible: the same ``(topology, cables, uplinks, seed)`` always
        yields the same fault set.  Uplink-port faults require a hybrid
        (:class:`NestedTopology`); other families have no uplink ports.
        """
        if cables < 0 or uplinks < 0:
            raise TopologyError(
                f"fault counts must be non-negative, got cables={cables}, "
                f"uplinks={uplinks}")
        failed_links: frozenset[int] = frozenset()
        if cables:
            failed_links = frozenset(
                faults_mod.sample_link_failures(topology, cables, seed=seed))
        failed_uplinks: frozenset[int] = frozenset()
        if uplinks:
            if not isinstance(topology, NestedTopology):
                raise TopologyError(
                    "uplink-port faults only apply to hybrid topologies, "
                    f"not {topology.name!r}")
            ports = [s * topology.plan.nodes + local
                     for s in range(topology.num_subtori)
                     for local in topology.plan.uplinked]
            if uplinks > len(ports):
                raise TopologyError(
                    f"cannot fail {uplinks} uplink ports; only "
                    f"{len(ports)} exist")
            # independent sub-stream so cable and port draws never collide
            rng = np.random.default_rng([seed, 0xFA])
            chosen = rng.choice(len(ports), size=uplinks, replace=False)
            failed_uplinks = frozenset(ports[int(i)] for i in chosen)
        return cls(failed_links, failed_uplinks, (cables, uplinks, seed))

    @property
    def empty(self) -> bool:
        return not (self.failed_links or self.failed_uplinks)

    def fingerprint(self) -> dict:
        """Checkpoint-stable description of this fault set."""
        if self.provenance is not None:
            cables, uplinks, seed = self.provenance
            return {"cables": cables, "uplinks": uplinks, "seed": seed}
        return {"links": sorted(self.failed_links),
                "uplink_ports": sorted(self.failed_uplinks)}

    def cache_token(self) -> tuple:
        """Hashable identity of this fault set, for route-cache keys.

        Two fault sets with the same token produce identical reroutes on
        the same base topology; distinct tokens keep a shared route cache
        from leaking routes across differently-degraded wrappers.
        """
        if self.provenance is not None:
            return ("sampled", *self.provenance)
        return ("explicit", tuple(sorted(self.failed_links)),
                tuple(sorted(self.failed_uplinks)))

    def describe(self) -> str:
        return (f"{len(self.failed_links) // 2} failed cables, "
                f"{len(self.failed_uplinks)} dead uplink ports")


def validate_fault_ids(topology: Topology, failed_links, failed_uplinks
                       ) -> None:
    """Range-check fault ids against ``topology``, naming the offenders.

    A fault set sampled on one topology and applied to another used to
    surface as an opaque ``unknown link id`` from the link table (or worse,
    silently degrade the wrong cables when the ids happened to be in
    range on both machines — same count, different wiring).  This is the
    single validation path: :class:`DegradedTopology` runs it at wrap time
    and :meth:`~repro.topology.timeline.FaultTimeline.validate` per event.
    """
    links = topology.links
    num_links = links.num_links
    nic_base = topology.num_endpoints + topology.num_switches
    unknown = sorted(lid for lid in failed_links
                     if not 0 <= int(lid) < num_links)
    if unknown:
        raise TopologyError(
            f"fault set names unknown link id(s) {unknown[:8]} "
            f"(this topology has {num_links} links); was it sampled on a "
            f"different topology?")
    for lid in failed_links:
        u, v = links.endpoints_of(lid)
        if u >= nic_base or v >= nic_base:
            raise TopologyError(
                f"failed link {lid} is a NIC link; NIC faults are a "
                f"different model (dead node)")
        if links.id_of(v, u) not in failed_links:
            raise TopologyError(
                f"failed link {lid} ({u}->{v}) without its reverse; "
                f"cables fail as whole duplex pairs")
    if failed_uplinks:
        if not isinstance(topology, NestedTopology):
            raise TopologyError(
                "uplink-port faults only apply to hybrid topologies")
        foreign = sorted(e for e in failed_uplinks
                         if not 0 <= int(e) < topology.num_endpoints)
        if foreign:
            raise TopologyError(
                f"fault set names unknown endpoint id(s) {foreign[:8]} as "
                f"dead uplink ports (this topology has "
                f"{topology.num_endpoints} endpoints); was it sampled on a "
                f"different topology?")
        portless = sorted(
            e for e in failed_uplinks
            if (int(e) % topology.plan.nodes) not in topology.plan.uplink_rank)
        if portless:
            raise TopologyError(
                f"endpoint(s) {portless[:8]} have no uplink port to fail")


class DegradedTopology(Topology):
    """A topology with injected faults, routed around where possible.

    Shares the base topology's frozen link table instead of building a new
    one, so link ids — and therefore engine capacity vectors, route caches
    and static link-load reports — stay directly comparable with the
    healthy machine.  Unknown attributes delegate to the base topology
    (``subtorus_of``, ``plan``, ... keep working on wrapped hybrids).
    """

    def __init__(self, base: Topology, faults: FaultSet) -> None:
        if isinstance(base, DegradedTopology):
            raise TopologyError(
                "cannot wrap an already-degraded topology; merge the fault "
                "sets instead")
        # deliberately not calling Topology.__init__: the wrapper borrows
        # the base's finalized link table rather than constructing one
        self.base = base
        self.faults = faults
        self.name = f"{base.name}+faults"
        self.num_endpoints = base.num_endpoints
        self.num_switches = base.num_switches
        self.link_capacity = base.link_capacity
        self.nic_capacity = base.nic_capacity
        self.links = base.links
        self._inj = base.injection_links
        self._cons = base.consumption_links
        self._adjacency: list[list[int]] | None = None
        self._disabled_mask: np.ndarray | None = None
        validate_fault_ids(base, faults.failed_links, faults.failed_uplinks)

    # ------------------------------------------------------------ inspection
    def disabled_link_mask(self) -> np.ndarray:
        """Boolean per-link mask of links this fault set makes unusable.

        Failed cables plus every endpoint<->switch link of a dead uplink
        port; NIC links never appear.  The link-level ground truth of
        :meth:`_walk_survives` — the transient engine uses it to find the
        in-flight flows a fault event just cut, and the property tests use
        it to assert candidate routes stay on surviving links.  Built
        lazily once (O(links)); cached per wrapper.
        """
        if self._disabled_mask is None:
            mask = np.zeros(self.links.num_links, dtype=bool)
            if self.faults.failed_links:
                mask[np.fromiter(self.faults.failed_links,
                                 dtype=np.int64)] = True
            dead = self.faults.failed_uplinks
            if dead:
                ep = self.num_endpoints
                nic_base = ep + self.num_switches
                srcs = self.links.sources
                dsts = self.links.destinations
                dead_arr = np.fromiter(dead, dtype=np.int64)
                sw_src = (srcs >= ep) & (srcs < nic_base)
                sw_dst = (dsts >= ep) & (dsts < nic_base)
                mask |= (srcs < ep) & sw_dst & np.isin(srcs, dead_arr)
                mask |= (dsts < ep) & sw_src & np.isin(dsts, dead_arr)
            self._disabled_mask = mask
        return self._disabled_mask

    # ---------------------------------------------------------------- routing
    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        path = self.base.vertex_path(src, dst)
        if self._walk_survives(path):
            return path
        # hybrids first try the paper's uplink fail-over mechanism
        if (self.faults.failed_uplinks
                and isinstance(self.base, NestedTopology)):
            try:
                rerouted = faults_mod.reroute_uplinks(
                    self.base, src, dst, set(self.faults.failed_uplinks))
            except TopologyError:
                rerouted = None
            if rerouted is not None and self._walk_survives(rerouted):
                return rerouted
        # minimal detour over whatever physically survives
        detour = self._detour(src, dst)
        if detour is None:
            raise DegradedNetworkError([(src, dst)],
                                       faults=self.faults.describe())
        return detour

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """Surviving minimal candidates, rerouted deterministic walk first.

        Candidate 0 is :meth:`vertex_path` — which may be a fail-over or
        BFS detour when the deterministic route is cut.  The remaining
        entries are the base topology's minimal candidates that survive the
        fault set, so adaptive/ecmp selection keeps its spreading freedom
        on the links that are still up.
        """
        det = self.vertex_path(src, dst)
        out = [det]
        for walk in self.base.vertex_path_candidates(src, dst):
            if walk != det and self._walk_survives(walk):
                out.append(walk)
        return out

    def _walk_survives(self, path: list[int]) -> bool:
        """True when the walk avoids failed cables and dead uplink ports."""
        failed = self.faults.failed_links
        dead_ports = self.faults.failed_uplinks
        ep = self.num_endpoints
        for a, b in zip(path, path[1:]):
            if self.links.id_of(a, b) in failed:
                return False
            if dead_ports:
                # entering/leaving the upper tier through a dead port
                if (a < ep <= b and a in dead_ports) or \
                        (b < ep <= a and b in dead_ports):
                    return False
        return True

    def _surviving_adjacency(self) -> list[list[int]]:
        """Adjacency over endpoints+switches, failed hops removed.

        Neighbour lists are sorted so the BFS detour is deterministic.
        Built lazily once — healthy routes never pay for it.
        """
        if self._adjacency is None:
            n = self.num_endpoints + self.num_switches
            ep = self.num_endpoints
            failed = self.faults.failed_links
            dead_ports = self.faults.failed_uplinks
            adj: list[list[int]] = [[] for _ in range(n)]
            for lid, (u, v) in enumerate(zip(self.links.sources,
                                             self.links.destinations)):
                if u >= n or v >= n:
                    continue  # NIC link
                if lid in failed:
                    continue
                if (u < ep <= v and u in dead_ports) or \
                        (v < ep <= u and v in dead_ports):
                    continue
                adj[u].append(v)
            for neighbours in adj:
                neighbours.sort()
            self._adjacency = adj
        return self._adjacency

    def _endpoint_can_transit(self, endpoint: int, src: int, dst: int) -> bool:
        """Whether a third-party endpoint may forward ``src -> dst`` traffic.

        Switches always forward; endpoints only where the architecture
        makes them routers: everywhere on a switchless direct network
        (torus/mesh — the endpoints *are* the routers), and inside the
        source or destination subtorus of a hybrid (lower-tier DOR
        forwarding).  Leaf endpoints of indirect networks (trees, GHC,
        dragonfly, jellyfish) terminate traffic — a detour through one
        would be unimplementable on the real machine.
        """
        if self.num_switches == 0:
            return True
        if isinstance(self.base, NestedTopology):
            return self.base.subtorus_of(endpoint) in (
                self.base.subtorus_of(src), self.base.subtorus_of(dst))
        return False

    def _detour(self, src: int, dst: int) -> list[int] | None:
        """Deterministic shortest surviving walk, or ``None`` if cut off.

        Intermediate vertices are restricted to those that can actually
        forward traffic (see :meth:`_endpoint_can_transit`): without the
        restriction the BFS happily routed through third-party endpoints'
        NICs, producing walks no real network could realise.
        """
        adj = self._surviving_adjacency()
        ep = self.num_endpoints
        parent = {src: src}
        frontier = deque([src])
        while frontier:
            vertex = frontier.popleft()
            if vertex == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parent[path[-1]])
                return path[::-1]
            for neighbour in adj[vertex]:
                if neighbour in parent:
                    continue
                if (neighbour < ep and neighbour != dst
                        and not self._endpoint_can_transit(neighbour, src, dst)):
                    continue
                parent[neighbour] = vertex
                frontier.append(neighbour)
        return None

    # ------------------------------------------------------------- inspection
    def link_tiers(self):
        """Tier metadata of the wrapped machine (shared link table)."""
        return self.base.link_tiers()

    def describe(self) -> str:
        return f"{self.base.describe()} [degraded: {self.faults.describe()}]"

    def __getattr__(self, name: str):
        # only reached when normal lookup fails; delegates hybrid helpers
        # (subtorus_of, plan, fabric, ...) to the wrapped topology
        if name.startswith("_") or "base" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.base, name)


def degrade(topology: Topology, *, cables: int = 0, uplinks: int = 0,
            seed: int = 0) -> Topology:
    """Wrap ``topology`` with sampled faults; identity when both counts are 0."""
    if not cables and not uplinks:
        return topology
    return DegradedTopology(
        topology, FaultSet.sample(topology, cables=cables, uplinks=uplinks,
                                  seed=seed))
