"""Name-based topology construction for configs, CLI and sweeps.

Specs are ``(family, params)`` pairs; the registry turns them into concrete
:class:`~repro.topology.base.Topology` objects for a given endpoint count.
The four families of the paper's evaluation are pre-registered.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import ConfigError
from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology, plan_dragonfly
from repro.topology.jellyfish import JellyfishTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.ghc import GHCTopology
from repro.topology.nestghc import NestGHC
from repro.topology.nesttree import NestTree
from repro.topology.planner import ghc_radices
from repro.topology.thintree import ThinTreeTopology
from repro.topology.torus import TorusTopology

Builder = Callable[[int, Mapping[str, Any]], Topology]

_REGISTRY: dict[str, Builder] = {}


def register(name: str, builder: Builder) -> None:
    """Register a topology family under a unique name."""
    if name in _REGISTRY:
        raise ConfigError(f"topology family {name!r} already registered")
    _REGISTRY[name] = builder


def available() -> list[str]:
    """Sorted names of all registered families."""
    return sorted(_REGISTRY)


def build(name: str, num_endpoints: int, **params: Any) -> Topology:
    """Construct a topology by family name.

    >>> build("nesttree", 4096, t=2, u=4).name
    'nesttree'
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown topology {name!r}; available: {available()}") from None
    return builder(num_endpoints, params)


# --------------------------------------------------------------------- stock
def _torus(n: int, p: Mapping[str, Any]) -> Topology:
    extra = {k: v for k, v in p.items() if k not in ("dims",)}
    if "dims" in p and not isinstance(p["dims"], int):
        return TorusTopology(p["dims"], **extra)
    return TorusTopology.cubic(n, p.get("dims", 3), **extra)


def _fattree(n: int, p: Mapping[str, Any]) -> Topology:
    extra = {k: v for k, v in p.items() if k not in ("arities", "stages")}
    if "arities" in p:
        return FatTreeTopology(p["arities"], **extra)
    return FatTreeTopology.for_ports(n, p.get("stages", 3), **extra)


def _ghc(n: int, p: Mapping[str, Any]) -> Topology:
    pps = p.get("ports_per_switch", 16)
    extra = {k: v for k, v in p.items()
             if k not in ("radices", "ports_per_switch", "dims")}
    if "radices" in p:
        return GHCTopology(p["radices"], pps, **extra)
    if n % pps:
        raise ConfigError(f"{n} endpoints not divisible by {pps} per switch")
    return GHCTopology(ghc_radices(n // pps, p.get("dims", 4)), pps, **extra)


def _thintree(n: int, p: Mapping[str, Any]) -> Topology:
    from repro.topology.planner import fattree_arities

    extra = {k: v for k, v in p.items()
             if k not in ("down_arities", "up_arities", "oversubscription")}
    if "down_arities" in p:
        return ThinTreeTopology(p["down_arities"], p["up_arities"], **extra)
    down = fattree_arities(n, 3)
    ratio = int(p.get("oversubscription", 2))
    up = tuple(max(1, k // ratio) for k in down[:-1])
    return ThinTreeTopology(down, up, **extra)


def _nesttree(n: int, p: Mapping[str, Any]) -> Topology:
    return NestTree(n, **dict(p))


def _nestghc(n: int, p: Mapping[str, Any]) -> Topology:
    return NestGHC(n, **dict(p))


def _dragonfly(n: int, p: Mapping[str, Any]) -> Topology:
    extra = {k: v for k, v in p.items()
             if k not in ("p", "a", "h", "groups")}
    if {"p", "a", "h", "groups"} <= set(p):
        return DragonflyTopology(p["p"], p["a"], p["h"], p["groups"], **extra)
    return DragonflyTopology(*plan_dragonfly(n), **extra)


def _jellyfish(n: int, p: Mapping[str, Any]) -> Topology:
    pps = p.get("ports_per_switch", 4)
    degree = p.get("degree", 8)
    extra = {k: v for k, v in p.items()
             if k not in ("degree", "ports_per_switch")}
    if n % pps:
        raise ConfigError(f"{n} endpoints not divisible by {pps} per switch")
    return JellyfishTopology(n // pps, degree, pps, **extra)


register("torus", _torus)
register("fattree", _fattree)
register("thintree", _thintree)
register("ghc", _ghc)
register("nesttree", _nesttree)
register("nestghc", _nestghc)
register("dragonfly", _dragonfly)
register("jellyfish", _jellyfish)
