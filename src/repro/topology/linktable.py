"""Directed-link registry shared by all topologies.

The flow engine never manipulates graph structure: it only sees *link ids*
and a capacity vector.  :class:`LinkTable` is the bridge — topologies
register every directed link (network links, plus one injection and one
consumption link per endpoint) and translate vertex paths into link-id
arrays.

Links are directed: a full-duplex cable between vertices ``u`` and ``v`` is
two independent links, matching the paper's transceiver model where each
direction carries 10 Gbps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError


class LinkTable:
    """Registry mapping directed vertex pairs to dense link ids."""

    def __init__(self) -> None:
        self._ids: dict[tuple[int, int], int] = {}
        self._src: list[int] = []
        self._dst: list[int] = []
        self._cap: list[float] = []
        self._frozen: np.ndarray | None = None
        self._src_arr: np.ndarray | None = None
        self._dst_arr: np.ndarray | None = None

    # ------------------------------------------------------------------ build
    def add(self, u: int, v: int, capacity: float) -> int:
        """Register the directed link ``u -> v`` and return its id.

        Re-registering an existing pair is an error: topologies are expected
        to enumerate their links exactly once.
        """
        if self._frozen is not None:
            raise TopologyError("LinkTable is frozen; no more links may be added")
        if capacity <= 0:
            raise TopologyError(f"link capacity must be positive, got {capacity}")
        key = (u, v)
        if key in self._ids:
            raise TopologyError(f"duplicate link {u} -> {v}")
        link_id = len(self._src)
        self._ids[key] = link_id
        self._src.append(u)
        self._dst.append(v)
        self._cap.append(capacity)
        return link_id

    def add_duplex(self, u: int, v: int, capacity: float) -> tuple[int, int]:
        """Register both directions of a full-duplex cable."""
        return self.add(u, v, capacity), self.add(v, u, capacity)

    def freeze(self) -> None:
        """Finalise the table; capacities become an immutable numpy vector."""
        if self._frozen is None:
            self._frozen = np.asarray(self._cap, dtype=np.float64)
            self._frozen.setflags(write=False)

    # ----------------------------------------------------------------- lookup
    def id_of(self, u: int, v: int) -> int:
        """Link id of the directed pair ``u -> v``; raises if absent."""
        try:
            return self._ids[(u, v)]
        except KeyError:
            raise TopologyError(f"no link {u} -> {v}") from None

    def has(self, u: int, v: int) -> bool:
        """True when the directed link ``u -> v`` exists."""
        return (u, v) in self._ids

    def endpoints_of(self, link_id: int) -> tuple[int, int]:
        """The ``(src, dst)`` vertex pair of a link id."""
        if not 0 <= link_id < len(self._src):
            raise TopologyError(f"unknown link id {link_id}")
        return self._src[link_id], self._dst[link_id]

    def path_to_links(self, vertices: list[int]) -> list[int]:
        """Translate a vertex walk into the list of traversed link ids."""
        ids = self._ids
        try:
            return [ids[(vertices[i], vertices[i + 1])] for i in range(len(vertices) - 1)]
        except KeyError as exc:
            raise TopologyError(f"walk uses missing link {exc.args[0]}") from None

    # ------------------------------------------------------------- properties
    @property
    def num_links(self) -> int:
        """Total number of directed links registered."""
        return len(self._src)

    @property
    def capacities(self) -> np.ndarray:
        """Immutable per-link capacity vector (bits/s); freezes the table."""
        self.freeze()
        assert self._frozen is not None
        return self._frozen

    @property
    def sources(self) -> np.ndarray:
        """Source vertex per link id (read-only array indexable by link id).

        Like :meth:`pairs`, this never exposes the internal mutable state:
        callers get an immutable view (cached once the table is frozen, a
        fresh read-only copy while it is still being built), so the link
        registry cannot be corrupted after freeze.
        """
        if self._frozen is not None:
            if self._src_arr is None:
                self._src_arr = self._readonly(self._src)
            return self._src_arr
        return self._readonly(self._src)

    @property
    def destinations(self) -> np.ndarray:
        """Destination vertex per link id (read-only array, see
        :attr:`sources`)."""
        if self._frozen is not None:
            if self._dst_arr is None:
                self._dst_arr = self._readonly(self._dst)
            return self._dst_arr
        return self._readonly(self._dst)

    @staticmethod
    def _readonly(values: list[int]) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        arr.setflags(write=False)
        return arr

    def pairs(self) -> dict[tuple[int, int], int]:
        """A copy of the ``(u, v) -> id`` mapping (for tests/analysis)."""
        return dict(self._ids)
