"""Thin trees: k:k'-ary n-trees (over-subscribed fattrees).

The paper deliberately applies *no* over-subscription to its fattrees
(Section 4.2), citing the authors' own thin-tree work (Navaridas et al.,
"Reducing complexity in tree-like computer interconnection networks").
This module implements that cited family so the cost/performance knob can
actually be explored: a level-``l`` switch has ``k_l`` down-ports but only
``u_l <= k_l`` up-ports, thinning the tree towards the root by the
over-subscription ratio ``prod(k_l / u_l)``.

Construction generalises the fattree's switch-identity scheme
(:mod:`repro.routing.updown`): intra-subtree switch digits at level ``l``
range over ``u_1 x ... x u_{l-1}`` instead of ``k_1 x ... x k_{l-1}``, and
the d-mod-k up-port choice reduces the destination digit modulo ``u_l``.
With ``u == k`` the layout and routes coincide with the fattree exactly
(property-tested).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.linktable import LinkTable
from repro.units import DEFAULT_LINK_CAPACITY


class ThinTreeFabric:
    """Switch-level structure of a k:k'-ary n-tree.

    ``down_arities[l]`` is the number of children per level-``l+1`` switch
    (``k``); ``up_arities[l]`` the number of up-ports of a level-``l+1``
    switch (``k'``), with the top stage having none.
    """

    def __init__(self, down_arities: Sequence[int],
                 up_arities: Sequence[int]) -> None:
        down = tuple(int(k) for k in down_arities)
        up = tuple(int(k) for k in up_arities)
        if len(up) != len(down) - 1:
            raise TopologyError(
                "need one up-arity per non-top stage "
                f"(got {len(up)} for {len(down)} stages)")
        if not down or any(k < 2 for k in down):
            raise TopologyError(f"invalid down arities {down}")
        if any(u < 1 for u in up):
            raise TopologyError(f"invalid up arities {up}")
        if any(u > k for u, k in zip(up, down)):
            raise TopologyError(
                f"thin tree cannot widen: up {up} exceeds down {down}")
        self.down = down
        self.up = up
        self.num_stages = len(down)
        self.num_ports = 1
        for k in down:
            self.num_ports *= k
        # group[l] = leaves per level-l subtree; digits[l] = switches per
        # level-l subtree (product of up-arities below)
        self._group = [1]
        for k in down:
            self._group.append(self._group[-1] * k)
        self._digits = [1]
        for u in up:
            self._digits.append(self._digits[-1] * u)
        self._level_offset = [0, 0]
        for level in range(1, self.num_stages):
            count = (self.num_ports // self._group[level]) * self._digits[level - 1]
            self._level_offset.append(self._level_offset[level] + count)
        self.num_switches = sum(
            (self.num_ports // self._group[level]) * self._digits[level - 1]
            for level in range(1, self.num_stages + 1))

    # -------------------------------------------------------------- indexing
    def switch_id(self, level: int, subtree: int, digits: tuple[int, ...]) -> int:
        """Dense local id of switch ``(level, subtree, digits)``."""
        value = 0
        for d, u in zip(reversed(digits), reversed(self.up[: level - 1])):
            value = value * u + d
        return (self._level_offset[level]
                + subtree * self._digits[level - 1] + value)

    def port_switch(self, port: int) -> int:
        if not 0 <= port < self.num_ports:
            raise TopologyError(f"thin-tree port {port} out of range")
        return port // self.down[0]

    # ------------------------------------------------------------------ build
    def build_links(self, links: LinkTable, offset: int, capacity: float) -> None:
        """Register every duplex switch-to-switch link."""
        for level in range(1, self.num_stages):
            subtrees = self.num_ports // self._group[level]
            for subtree in range(subtrees):
                for value in range(self._digits[level - 1]):
                    digits = self._digits_of(value, level)
                    lo = self.switch_id(level, subtree, digits)
                    for x in range(self.up[level - 1]):
                        hi = self.switch_id(level + 1,
                                            subtree // self.down[level],
                                            digits + (x,))
                        links.add_duplex(offset + lo, offset + hi, capacity)

    def _digits_of(self, value: int, level: int) -> tuple[int, ...]:
        digits = []
        for u in self.up[: level - 1]:
            digits.append(value % u)
            value //= u
        return tuple(digits)

    # ---------------------------------------------------------------- routing
    def nca_level(self, a: int, b: int) -> int:
        if a == b:
            raise TopologyError("identical ports share no switch path")
        for level in range(1, self.num_stages + 1):
            if a // self._group[level] == b // self._group[level]:
                return level
        raise TopologyError("ports outside the tree")  # pragma: no cover

    def port_path(self, src_port: int, dst_port: int) -> list[int]:
        """Local switch-id sequence (minimal UP*/DOWN*, d-mod-k thinned)."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [a]
        m = self.nca_level(src_port, dst_port)
        # destination digits reduced modulo the up-arities
        dst_digits = []
        rem = dst_port
        for k, u in zip(self.down[:-1], self.up):
            dst_digits.append((rem % k) % u)
            rem //= k

        path = []
        subtree = src_port // self.down[0]
        digits: tuple[int, ...] = ()
        path.append(self.switch_id(1, subtree, digits))
        for level in range(1, m):
            digits = digits + (dst_digits[level - 1],)
            subtree //= self.down[level]
            path.append(self.switch_id(level + 1, subtree, digits))
        for level in range(m - 1, 0, -1):
            path.append(self.switch_id(level,
                                       dst_port // self._group[level],
                                       digits[: level - 1]))
        return path

    def port_paths(self, src_port: int, dst_port: int) -> list[list[int]]:
        """All minimal switch-id walks: every up-digit choice per climb level,
        with the deterministic d-mod-k combination first."""
        if src_port == dst_port:
            raise TopologyError("no switch path between identical ports")
        a, b = self.port_switch(src_port), self.port_switch(dst_port)
        if a == b:
            return [[a]]
        m = self.nca_level(src_port, dst_port)
        dst_digits = []
        rem = dst_port
        for k, u in zip(self.down[:-1], self.up):
            dst_digits.append((rem % k) % u)
            rem //= k
        choices = []
        for level in range(1, m):
            det = dst_digits[level - 1]
            choices.append((det, *(x for x in range(self.up[level - 1])
                                   if x != det)))

        out: list[list[int]] = []
        for combo in itertools.product(*choices):
            path = []
            subtree = src_port // self.down[0]
            digits: tuple[int, ...] = ()
            path.append(self.switch_id(1, subtree, digits))
            for level in range(1, m):
                digits = digits + (combo[level - 1],)
                subtree //= self.down[level]
                path.append(self.switch_id(level + 1, subtree, digits))
            for level in range(m - 1, 0, -1):
                path.append(self.switch_id(level,
                                           dst_port // self._group[level],
                                           digits[: level - 1]))
            out.append(path)
        return out

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        return 2 * self.num_stages

    def oversubscription(self) -> float:
        """Aggregate down/up bandwidth ratio at the most thinned stage."""
        worst = 1.0
        for k, u in zip(self.down, self.up):
            worst = max(worst, k / u)
        return worst


class ThinTreeTopology(Topology):
    """Endpoints attached to a thin tree (one per leaf port)."""

    name = "thintree"

    def __init__(self, down_arities: Sequence[int],
                 up_arities: Sequence[int], *,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        fabric = ThinTreeFabric(down_arities, up_arities)
        super().__init__(fabric.num_ports, fabric.num_switches,
                         link_capacity, nic_capacity)
        self.fabric = fabric
        offset = self.num_endpoints
        fabric.build_links(self.links, offset, link_capacity)
        for e in range(self.num_endpoints):
            self.links.add_duplex(e, offset + fabric.port_switch(e),
                                  link_capacity)
        self._switch_offset = offset
        self._finalize()

    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [src]
        body = [self._switch_offset + s
                for s in self.fabric.port_path(src, dst)]
        return [src, *body, dst]

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal UP*/DOWN* walks over the thinned up-ports."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return [[src]]
        return [[src, *(self._switch_offset + s for s in body), dst]
                for body in self.fabric.port_paths(src, dst)]

    def routing_diameter(self) -> int:
        return self.fabric.routing_diameter()
