"""NestTree(t, u): subtori nested into a generalised fattree upper tier."""

from __future__ import annotations

from repro.topology.fattree import FatTreeFabric
from repro.topology.hybrid import NestedTopology, SubtorusPlan
from repro.topology.planner import fattree_arities
from repro.units import DEFAULT_LINK_CAPACITY


class NestTree(NestedTopology):
    """The paper's NestTree(t, u) hybrid.

    ``t`` is the subtorus side (subtorus = t x t x t nodes) and ``1/u`` the
    uplink density (one upper-tier connection per ``u`` QFDBs).  The upper
    tier is a non-oversubscribed 3-stage generalised fattree sized by the
    planner — at the paper's full scale (131,072 QFDBs) this reproduces the
    Table 2 switch counts of 9216/5120/3072/2048 for u = 1/2/4/8.
    """

    name = "nesttree"

    def __init__(self, num_endpoints: int, t: int, u: int, *,
                 stages: int = 3,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        plan = SubtorusPlan(t, u)
        fabric = FatTreeFabric(fattree_arities(num_endpoints // u, stages))
        super().__init__(num_endpoints, plan, fabric,
                         link_capacity=link_capacity,
                         nic_capacity=nic_capacity)
        self.t = t
        self.u = u

    def describe(self) -> str:
        base = super().describe()
        return (f"{base} [t={self.t}, u={self.u}, "
                f"upper fattree arities {self.fabric.arities}]")
