"""Direct d-dimensional torus/mesh topology.

Endpoints are the routers (there are no switches): each QFDB forwards
traffic for its neighbours, exactly like the backplane-connected tori of the
ExaNeSt blades.  Routing is dimension-order (DOR) with wrap-aware shortest
direction, matching the paper's Torus3D baseline.

The reference full-scale system (131,072 QFDBs as a 32x64x64 torus) has
diameter 80 and average distance ~40, the values quoted under Table 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TopologyError
from repro.routing import dor
from repro.topology.base import Topology
from repro.topology.planner import torus_dims
from repro.units import DEFAULT_LINK_CAPACITY


class TorusTopology(Topology):
    """A ``k_1 x ... x k_d`` torus (or mesh) of endpoints with DOR routing."""

    name = "torus"

    def __init__(self, dims: Sequence[int], *, wraparound: bool = True,
                 link_capacity: float = DEFAULT_LINK_CAPACITY,
                 nic_capacity: float | None = None) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims or any(k < 1 for k in dims):
            raise TopologyError(f"invalid torus dimensions {dims}")
        n = 1
        for k in dims:
            n *= k
        super().__init__(n, 0, link_capacity, nic_capacity)
        self.dims = dims
        self.wraparound = wraparound
        if not wraparound:
            self.name = "mesh"

        for e in range(n):
            coord = dor.index_to_coord(e, dims)
            for nb in dor.neighbors(coord, dims, torus=wraparound):
                self.links.add(e, dor.coord_to_index(nb, dims), link_capacity)
        self._finalize()

    @classmethod
    def cubic(cls, num_endpoints: int, dims: int = 3, **kwargs) -> "TorusTopology":
        """Near-balanced ``dims``-dimensional torus over ``num_endpoints``."""
        return cls(torus_dims(num_endpoints, dims), **kwargs)

    # ---------------------------------------------------------------- routing
    def vertex_path(self, src: int, dst: int) -> list[int]:
        self._check_endpoint(src)
        self._check_endpoint(dst)
        coords = dor.path(dor.index_to_coord(src, self.dims),
                          dor.index_to_coord(dst, self.dims),
                          self.dims, torus=self.wraparound)
        return [dor.coord_to_index(c, self.dims) for c in coords]

    def vertex_path_candidates(self, src: int, dst: int) -> list[list[int]]:
        """All minimal DOR walks: both wrap directions on exact even-radix
        ties (deterministic positive tie-break first)."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        walks = dor.paths(dor.index_to_coord(src, self.dims),
                          dor.index_to_coord(dst, self.dims),
                          self.dims, torus=self.wraparound)
        return [[dor.coord_to_index(c, self.dims) for c in walk]
                for walk in walks]

    # --------------------------------------------------------------- analysis
    def routing_diameter(self) -> int:
        """Exact worst-case DOR hop count."""
        if self.wraparound:
            return sum(k // 2 for k in self.dims)
        return sum(k - 1 for k in self.dims)

    def average_distance_closed_form(self) -> float:
        """Exact DOR average distance over ordered distinct pairs.

        Per dimension of radix ``k`` the expected wrap distance of a uniform
        pair is ``(k^2 // 4) / k``; summing dimensions and conditioning on
        the pair being distinct rescales by ``N / (N - 1)``.
        """
        n = self.num_endpoints
        if n <= 1:
            return 0.0
        expected = sum((k * k // 4) / k for k in self.dims)
        return expected * n / (n - 1)
