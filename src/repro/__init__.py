"""repro — flow-level design exploration of multi-tier interconnects.

A from-scratch reproduction of *"Design Exploration of Multi-tier
Interconnection Networks for Exascale Systems"* (Navaridas, Lant, Pascual,
Luján, Goodacre — ICPP 2019): an INRFlow-style flow-level network simulator,
the paper's five topology families (3D torus, generalised fattree,
generalised hypercube, NestTree, NestGHC), its eleven application-inspired
workloads, and the analysis/cost models and experiment harness behind its
Tables 1–2 and Figures 4–5.

Quickstart::

    from repro import build_topology, build_workload, simulate

    topo = build_topology("nesttree", 512, t=2, u=2)
    wl = build_workload("allreduce", topo.num_endpoints)
    result = simulate(topo, wl)
    print(result.makespan)
"""

from repro._version import __version__
from repro.engine import SimulationResult, simulate
from repro.topology import build as build_topology
from repro.units import DEFAULT_LINK_CAPACITY, GBPS, KiB, MiB
from repro.workloads import build as build_workload

__all__ = [
    "DEFAULT_LINK_CAPACITY",
    "GBPS",
    "KiB",
    "MiB",
    "SimulationResult",
    "__version__",
    "build_topology",
    "build_workload",
    "simulate",
]
