"""Setup shim: enables legacy editable installs in offline environments
where the ``wheel`` package is unavailable (``pip install -e . --no-build-isolation --no-use-pep517``)."""
from setuptools import setup

setup()
