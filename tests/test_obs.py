"""Tests for the observability layer (collector, streams, profile, CLI).

Covers the ``repro.obs`` surfaces end to end: collector accounting, tier
aggregation through topology link metadata, snapshot/stream schema
validation, the ``repro profile`` report, sweep ``--metrics`` files in
serial and parallel (including checkpoint resume), and the engine
regressions that ride along with the layer (zero-rate guard, absolute tie
window for zero-byte flows).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DesignSpaceExplorer
from repro.engine import simulate
from repro.engine.flows import FlowBuilder, FlowSet
from repro.errors import ConfigError, SimulationError
from repro.obs import (SCHEMA_VERSION, SWEEP_SCHEMA_VERSION,
                       MetricsCollector, MetricsStream, profile_report,
                       tier_table, validate_metrics_file, validate_record,
                       validate_snapshot)
from repro.units import DEFAULT_LINK_CAPACITY as CAP


def _pair_flowset(sizes, num_tasks=4) -> FlowSet:
    """Independent 0->1 flows with the given sizes (bypasses FlowBuilder's
    positive-size check so zero-byte flows can be constructed)."""
    n = len(sizes)
    return FlowSet(
        num_tasks=num_tasks,
        src=np.zeros(n, dtype=np.int64),
        dst=np.ones(n, dtype=np.int64),
        size=np.asarray(sizes, dtype=np.float64),
        weight=np.ones(n, dtype=np.float64),
        indegree=np.zeros(n, dtype=np.int64),
        succ_indptr=np.zeros(n + 1, dtype=np.int64),
        succ_indices=np.empty(0, dtype=np.int64),
    )


# ------------------------------------------------------------- collector unit
class TestMetricsCollector:
    def test_flow_injection_split(self):
        c = MetricsCollector(8)
        c.flow_injected(100.0, 3)
        c.flow_injected(50.0, 0)   # zero-hop
        assert c.network_flows == 1
        assert c.zero_hop_flows == 1
        assert c.injected_bits == 100.0
        assert c.routed_link_bits == 300.0

    def test_account_event_accumulates_bits_and_busy(self):
        c = MetricsCollector(6)
        routes = [np.array([0, 1], dtype=np.int64),
                  np.array([1, 2], dtype=np.int64)]
        rates = np.array([10.0, 20.0])
        c.account_event(routes, rates, 0.5)
        assert c.events == 1
        np.testing.assert_allclose(c.link_bits[:3], [5.0, 15.0, 10.0])
        # link 1 is shared but was busy for the same 0.5 s, not 1.0 s
        np.testing.assert_allclose(c.link_busy[:3], [0.5, 0.5, 0.5])

    def test_zero_dt_event_counts_but_moves_nothing(self):
        c = MetricsCollector(4)
        c.account_event([np.array([0], dtype=np.int64)],
                        np.array([10.0]), 0.0)
        assert c.events == 1
        assert c.link_bits.sum() == 0.0
        assert c.link_busy.sum() == 0.0

    def test_allocation_stats(self):
        c = MetricsCollector(4)
        c.record_allocation(10, 3, "forced", 0.01)
        c.record_allocation(4, 1, "churn", 0.02)
        assert c.allocations == 2
        assert c.batch_flows_total == 14
        assert c.batch_flows_max == 10
        assert c.filling_iterations_total == 4
        assert c.filling_iterations_max == 3
        assert c.alloc_reasons["forced"] == 1
        assert c.alloc_reasons["churn"] == 1
        assert c.timers_s["allocation"] == pytest.approx(0.03)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            MetricsCollector(-1)


# ------------------------------------------------------- snapshot + tier meta
class TestSnapshot:
    def test_flat_topology_tiers(self, small_torus):
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(0, 5, CAP * 0.1)
        c = MetricsCollector(small_torus.links.num_links)
        result = simulate(small_torus, flows.build(), metrics=c)
        snap = result.metrics
        validate_snapshot(snap)
        assert snap["schema"] == SCHEMA_VERSION
        assert set(snap["tiers"]) == {"network", "nic"}
        assert snap["makespan_s"] == pytest.approx(result.makespan)

    def test_nested_topology_tiers(self, small_nesttree):
        flows = FlowBuilder(small_nesttree.num_endpoints)
        flows.add_flow(0, 63, CAP * 0.1)   # crosses the upper tier
        flows.add_flow(0, 1, CAP * 0.1)    # stays in the subtorus
        c = MetricsCollector(small_nesttree.links.num_links)
        result = simulate(small_nesttree, flows.build(), metrics=c)
        snap = result.metrics
        validate_snapshot(snap)
        assert set(snap["tiers"]) == {"lower_torus", "uplinks",
                                      "upper_fabric", "nic"}
        assert snap["tiers"]["uplinks"]["delivered_bits"] > 0
        assert snap["tiers"]["lower_torus"]["delivered_bits"] > 0
        # tiers partition the links: counts and bits both sum to totals
        assert sum(t["links"] for t in snap["tiers"].values()) \
            == small_nesttree.links.num_links
        assert sum(t["delivered_bits"] for t in snap["tiers"].values()) \
            == pytest.approx(snap["delivered_link_bits"], rel=1e-12)

    def test_degraded_topology_shares_tier_metadata(self, small_nesttree):
        from repro.topology.degraded import DegradedTopology, FaultSet

        degraded = DegradedTopology(
            small_nesttree, FaultSet.sample(small_nesttree, cables=2, seed=1))
        names, index = degraded.link_tiers()
        base_names, base_index = small_nesttree.link_tiers()
        assert names == base_names
        np.testing.assert_array_equal(index, base_index)

    def test_validate_snapshot_rejects_bad_docs(self, small_torus):
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(0, 1, CAP * 0.1)
        c = MetricsCollector(small_torus.links.num_links)
        snap = simulate(small_torus, flows.build(), metrics=c).metrics

        with pytest.raises(ConfigError, match="schema"):
            validate_snapshot({**snap, "schema": "bogus-v0"})
        broken = dict(snap)
        del broken["tiers"]
        with pytest.raises(ConfigError, match="missing"):
            validate_snapshot(broken)
        skewed = json.loads(json.dumps(snap))
        skewed["delivered_link_bits"] *= 2.0
        with pytest.raises(ConfigError, match="delivered_link_bits"):
            validate_snapshot(skewed)

    def test_metrics_off_is_none_and_identical_makespan(self, small_torus):
        flows = FlowBuilder(small_torus.num_endpoints)
        for d in range(1, 8):
            flows.add_flow(0, d, CAP * 0.05 * d)
        fs = flows.build()
        plain = simulate(small_torus, fs)
        c = MetricsCollector(small_torus.links.num_links)
        instrumented = simulate(small_torus, fs, metrics=c)
        assert plain.metrics is None
        assert instrumented.makespan == plain.makespan
        assert instrumented.events == plain.events

    def test_empty_workload_snapshot(self, small_torus):
        fs = FlowBuilder(small_torus.num_endpoints).build()
        c = MetricsCollector(small_torus.links.num_links)
        result = simulate(small_torus, fs, metrics=c)
        validate_snapshot(result.metrics)
        assert result.metrics["delivered_link_bits"] == 0.0


# ------------------------------------------------------------ profile report
class TestProfileReport:
    def test_tables_render_and_total_matches(self, small_nesttree):
        flows = FlowBuilder(small_nesttree.num_endpoints)
        flows.add_flow(0, 63, CAP * 0.1)
        c = MetricsCollector(small_nesttree.links.num_links)
        snap = simulate(small_nesttree, flows.build(), metrics=c).metrics
        report = profile_report(snap)
        for tier in ("lower_torus", "uplinks", "upper_fabric", "nic"):
            assert tier in report
        assert "total" in tier_table(snap)
        assert "event loop" in report

    def test_profile_report_requires_snapshot(self):
        with pytest.raises(ConfigError):
            profile_report(None)


# ------------------------------------------------------------- JSONL stream
class TestMetricsStream:
    def _doc(self, key="k1", metrics=None):
        return {"key": key, "workload": "w", "topology": "t",
                "family": "torus", "t": None, "u": None, "faults": None,
                "makespan": 1.0, "wall_seconds": 0.1,
                **({"metrics": metrics} if metrics is not None else {})}

    def _snap(self, small_torus):
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(0, 1, CAP * 0.1)
        c = MetricsCollector(small_torus.links.num_links)
        return simulate(small_torus, flows.build(), metrics=c).metrics

    def test_roundtrip_and_dedup(self, tmp_path, small_torus):
        snap = self._snap(small_torus)
        path = tmp_path / "m.jsonl"
        with MetricsStream(path) as stream:
            assert stream.write_cell(self._doc("a", snap))
            assert not stream.write_cell(self._doc("a", snap))  # dedup
            assert stream.write_cell(self._doc("b", snap))
            assert not stream.write_cell({**self._doc("c", snap),
                                          "error": {"type": "X",
                                                    "message": "m"}})
        assert validate_metrics_file(path) == 2
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == SWEEP_SCHEMA_VERSION
        validate_record(first)

    def test_missing_metrics_counted(self, tmp_path):
        with MetricsStream(tmp_path / "m.jsonl") as stream:
            assert not stream.write_cell(self._doc("a"))
            assert stream.skipped_no_metrics == 1

    def test_validator_rejects_duplicates_and_garbage(self, tmp_path,
                                                      small_torus):
        snap = self._snap(small_torus)
        path = tmp_path / "m.jsonl"
        record = {"schema": SWEEP_SCHEMA_VERSION, "key": "a",
                  "workload": "w", "topology": "t", "makespan": 1.0,
                  "wall_seconds": 0.1, "metrics": snap}
        path.write_text(json.dumps(record) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ConfigError, match="duplicate"):
            validate_metrics_file(path)
        path.write_text("not json\n")
        with pytest.raises(ConfigError, match="undecodable"):
            validate_metrics_file(path)


# ------------------------------------------------------------ sweep metrics
ENDPOINTS = 64


def make_explorer(**kwargs) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(ENDPOINTS, quadratic_tasks=16, seed=0,
                               **kwargs)


class TestSweepMetrics:
    def test_serial_sweep_writes_one_record_per_cell(self, tmp_path):
        path = tmp_path / "m.jsonl"
        table = make_explorer().run(["reduce"], metrics=str(path))
        assert validate_metrics_file(path) == len(table.records)

    def test_parallel_matches_serial_keys(self, tmp_path):
        serial, parallel = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        make_explorer().run(["reduce"], metrics=str(serial))
        make_explorer().run(["reduce"], jobs=4, metrics=str(parallel))
        skeys = {json.loads(l)["key"] for l in serial.read_text().splitlines()}
        pkeys = {json.loads(l)["key"]
                 for l in parallel.read_text().splitlines()}
        assert skeys == pkeys
        assert validate_metrics_file(parallel) == len(pkeys)

    def test_resume_replays_checkpointed_metrics(self, tmp_path):
        ck, path = tmp_path / "ck.jsonl", tmp_path / "m.jsonl"
        table = make_explorer().run(["reduce"], checkpoint=str(ck),
                                    metrics=str(path))
        total = len(table.records)

        # simulate a mid-sweep kill: drop the last 3 checkpointed cells
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:-3]) + "\n")
        path.unlink()   # the metrics file is regenerated, not appended

        make_explorer().run(["reduce"], checkpoint=str(ck), resume=True,
                            metrics=str(path))
        assert validate_metrics_file(path) == total

    def test_resume_without_prior_metrics_warns(self, tmp_path):
        ck, path = tmp_path / "ck.jsonl", tmp_path / "m.jsonl"
        make_explorer().run(["reduce"], checkpoint=str(ck))  # no metrics

        messages: list[str] = []
        explorer = make_explorer(progress=True)
        explorer._log = messages.append
        explorer.run(["reduce"], checkpoint=str(ck), resume=True,
                     metrics=str(path))
        assert any("carry no metrics" in m for m in messages)
        # all cells resumed metric-less; the file exists but holds nothing
        assert validate_metrics_file(path) == 0

    def test_checkpoint_cells_carry_metrics(self, tmp_path):
        ck, path = tmp_path / "ck.jsonl", tmp_path / "m.jsonl"
        make_explorer().run(["reduce"], checkpoint=str(ck),
                            metrics=str(path))
        cells = [json.loads(l) for l in ck.read_text().splitlines()[1:]]
        assert cells and all("metrics" in doc for doc in cells)
        for doc in cells:
            validate_snapshot(doc["metrics"])


# -------------------------------------------------------- engine regressions
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestZeroRateGuard:
    def test_frozen_zero_rate_raises_typed_error(self, small_torus,
                                                 monkeypatch):
        import repro.engine.simulator as sim_mod

        def zero_allocate(entries, ptr, capacities, weights, **kwargs):
            return np.zeros(ptr.shape[0] - 1, dtype=np.float64)

        monkeypatch.setattr(sim_mod, "allocate", zero_allocate)
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(0, 1, CAP * 0.1)
        with pytest.raises(SimulationError, match=r"flow\(s\) \[0\]"):
            simulate(small_torus, flows.build(), allocator="rebuild")

    def test_frozen_zero_rate_raises_typed_error_incremental(
            self, small_torus, monkeypatch):
        from repro.engine.active import ActiveSet

        def zero_allocate(self, stats=None):
            if stats is not None:
                stats["iterations"] = 0
                stats["warm"] = False
            self._rates[:self._m] = 0.0
            return self._rates[:self._m]

        monkeypatch.setattr(ActiveSet, "allocate", zero_allocate)
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(0, 1, CAP * 0.1)
        with pytest.raises(SimulationError, match=r"flow\(s\) \[0\]"):
            simulate(small_torus, flows.build())

    def test_error_names_fidelity(self, small_torus, monkeypatch):
        import repro.engine.simulator as sim_mod

        monkeypatch.setattr(
            sim_mod, "allocate",
            lambda entries, ptr, capacities, weights, **kw:
                np.zeros(ptr.shape[0] - 1))
        flows = FlowBuilder(small_torus.num_endpoints)
        flows.add_flow(2, 3, CAP * 0.1)
        with pytest.raises(SimulationError, match="fidelity='approx'"):
            simulate(small_torus, flows.build(), fidelity="approx",
                     allocator="rebuild")


class TestZeroByteTieWindow:
    def test_zero_byte_flows_complete_in_one_event(self, small_torus):
        # two zero-byte flows plus one that finishes within the absolute
        # tie window (deadline << _TIE_EPS seconds): one event batches all
        fs = _pair_flowset([0.0, 0.0, CAP * 1e-12])
        result = simulate(small_torus, fs)
        assert result.events == 1
        assert result.makespan <= 1e-9
        assert not np.isnan(result.completion_times).any()

    def test_zero_byte_flow_with_real_competitor(self, small_torus):
        # the zero-byte flow must not drag the real flow into its batch
        fs = _pair_flowset([0.0, CAP * 0.1])
        result = simulate(small_torus, fs)
        assert result.events == 2
        assert result.completion_times[0] == 0.0
        assert result.makespan > 0.01

    def test_zero_byte_metrics_conserved(self, small_torus):
        fs = _pair_flowset([0.0, CAP * 0.1])
        c = MetricsCollector(small_torus.links.num_links)
        simulate(small_torus, fs, metrics=c)
        route_len = len(small_torus.route(0, 1))
        # the zero-byte flow contributes zero bits but is a network flow
        assert c.network_flows == 2
        assert c.link_bits.sum() == pytest.approx(CAP * 0.1 * route_len)
