"""Property tests for the multi-path candidate-set routing API.

Every registered topology family must honour the ``route_candidates``
contract: candidate 0 is the deterministic route, every candidate is a
minimal walk with the right endpoints, candidates are distinct, and each
maps through the link table exactly like ``route()`` does.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import available, build
from repro.topology.base import MAX_ROUTE_CANDIDATES

#: One buildable instance per registered topology family.
FAMILY_SIZES = {"torus": 64, "fattree": 64, "thintree": 64, "ghc": 64,
                "nesttree": 64, "nestghc": 64, "dragonfly": 72,
                "jellyfish": 64}
FAMILY_PARAMS = {"nesttree": {"t": 2, "u": 2}, "nestghc": {"t": 2, "u": 2}}

#: Families whose routing rules admit more than one minimal route at this
#: scale (wrap ties, redundant tree ancestors, e-cube orders, hybrid
#: uplink/fabric combinations).  dragonfly/jellyfish keep the default
#: single-candidate behaviour.
MULTIPATH_FAMILIES = ("torus", "fattree", "thintree", "ghc",
                     "nesttree", "nestghc")

_built: dict[str, object] = {}


def built(family):
    if family not in _built:
        _built[family] = build(family, FAMILY_SIZES[family],
                               **FAMILY_PARAMS.get(family, {}))
    return _built[family]


def test_every_family_is_covered():
    assert set(FAMILY_SIZES) == set(available())


@pytest.mark.parametrize("family", sorted(FAMILY_SIZES))
class TestCandidateContract:
    """The route_candidates invariants, per family, over sampled pairs."""

    def pairs(self, topo, count=40, seed=0):
        rng = np.random.default_rng(seed)
        n = topo.num_endpoints
        return [(int(rng.integers(n)), int(rng.integers(n)))
                for _ in range(count)]

    def test_first_candidate_is_the_deterministic_route(self, family):
        topo = built(family)
        for src, dst in self.pairs(topo):
            assert topo.route_candidates(src, dst)[0] == topo.route(src, dst)

    def test_candidates_are_minimal(self, family):
        topo = built(family)
        for src, dst in self.pairs(topo):
            cands = topo.route_candidates(src, dst)
            det_len = len(cands[0])
            assert all(len(c) == det_len for c in cands)

    def test_candidates_are_distinct_and_capped(self, family):
        topo = built(family)
        for src, dst in self.pairs(topo):
            cands = topo.route_candidates(src, dst)
            keys = {tuple(c) for c in cands}
            assert len(keys) == len(cands)
            assert 1 <= len(cands) <= MAX_ROUTE_CANDIDATES

    def test_candidates_map_through_the_link_table(self, family):
        """Each candidate is NIC-in, a connected link chain, NIC-out."""
        topo = built(family)
        srcs, dsts = topo.links.sources, topo.links.destinations
        for src, dst in self.pairs(topo, count=15):
            for cand in topo.route_candidates(src, dst):
                assert cand[0] == int(topo.injection_links[src])
                assert cand[-1] == int(topo.consumption_links[dst])
                body = cand[1:-1]
                # the network chain starts at src, ends at dst, and every
                # consecutive link pair shares a vertex
                if body:
                    assert int(srcs[body[0]]) == src
                    assert int(dsts[body[-1]]) == dst
                    for a, b in zip(body, body[1:]):
                        assert int(dsts[a]) == int(srcs[b])

    def test_vertex_candidates_have_the_right_endpoints(self, family):
        topo = built(family)
        for src, dst in self.pairs(topo, count=15):
            for walk in topo.vertex_path_candidates(src, dst):
                assert walk[0] == src
                assert walk[-1] == dst

    def test_self_pair_is_the_trivial_route(self, family):
        topo = built(family)
        cands = topo.route_candidates(3, 3)
        assert cands == [topo.route(3, 3)]


@pytest.mark.parametrize("family", MULTIPATH_FAMILIES)
def test_multipath_families_expose_spreading_freedom(family):
    """Every multi-path family has at least one pair with > 1 candidate."""
    topo = built(family)
    n = topo.num_endpoints
    assert any(len(topo.route_candidates(s, d)) > 1
               for s in range(0, n, 7) for d in range(0, n, 5))


@pytest.mark.parametrize("family", ("dragonfly", "jellyfish"))
def test_single_path_families_keep_the_default(family):
    topo = built(family)
    rng = np.random.default_rng(1)
    n = topo.num_endpoints
    for _ in range(25):
        s, d = int(rng.integers(n)), int(rng.integers(n))
        assert topo.route_candidates(s, d) == [topo.route(s, d)]


class TestTorusWrapTie:
    """Even-radix wrap ties expose both directions (the dor bugfix)."""

    def test_tie_pair_has_both_wrap_directions(self):
        topo = built("torus")  # 4x4x4: delta 2 ties in every dimension
        # endpoints 0 and 2 differ by exactly half the radix in dim 0
        cands = topo.vertex_path_candidates(0, 2)
        assert len(cands) == 2
        # one walk goes through vertex 1, the other wraps through vertex 3
        interiors = {tuple(w[1:-1]) for w in cands}
        assert interiors == {(1,), (3,)}

    def test_three_tied_dimensions_give_eight_candidates(self):
        topo = built("torus")
        src = 0
        dst = 2 + 2 * 4 + 2 * 16  # (2, 2, 2): a tie in every dimension
        assert len(topo.route_candidates(src, dst)) == 8


@given(st.sampled_from(sorted(FAMILY_SIZES)), st.data())
@settings(max_examples=60, deadline=None)
def test_candidate_contract_property(family, data):
    topo = built(family)
    n = topo.num_endpoints
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    cands = topo.route_candidates(src, dst)
    assert cands[0] == topo.route(src, dst)
    assert len({tuple(c) for c in cands}) == len(cands)
    assert all(len(c) == len(cands[0]) for c in cands)
