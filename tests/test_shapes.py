"""Tests for the qualitative shape checks, on synthetic result tables."""

from __future__ import annotations

from repro.core.explorer import ResultTable, RunRecord
from repro.core.shapes import evaluate_claims


def make_table(values: dict[str, dict[str, float]]) -> ResultTable:
    """values: workload -> topology label -> makespan."""
    table = ResultTable(endpoints=64, fidelity="approx")
    for wname, cells in values.items():
        for label, makespan in cells.items():
            family = label.split("(")[0]
            t = u = None
            if "(" in label:
                t, u = (int(x) for x in label[label.index("(") + 1:-1].split(","))
            table.add(RunRecord(workload=wname, topology=label, family=family,
                                t=t, u=u, makespan=makespan, num_flows=1,
                                events=1, reallocations=1, wall_seconds=0.0))
    return table


def full_labels(ghc: float, tree: float, fat: float, torus: float,
                *, skew=None) -> dict[str, float]:
    """A complete 26-cell series with uniform hybrid values (plus overrides)."""
    cells = {"fattree": fat, "torus": torus}
    for t in (2, 4, 8):
        for u in (8, 4, 2, 1):
            cells[f"nestghc({t},{u})"] = ghc
            cells[f"nesttree({t},{u})"] = tree
    if skew:
        cells.update(skew)
    return cells


class TestIndividualChecks:
    def test_reduce_flat_passes(self):
        table = make_table({"reduce": full_labels(1.0, 1.0, 1.0, 1.0)})
        [(claim, ok, detail)] = evaluate_claims(table, 5)
        assert ok and "within" in detail

    def test_reduce_nonflat_fails(self):
        table = make_table({"reduce": full_labels(2.0, 1.0, 1.0, 1.0)})
        [(_, ok, _)] = evaluate_claims(table, 5)
        assert not ok

    def test_bisection_tree_wins_passes(self):
        table = make_table({"bisection": full_labels(2.0, 1.0, 1.0, 5.0)})
        [(_, ok, _)] = evaluate_claims(table, 4)
        assert ok

    def test_bisection_ghc_wins_fails(self):
        table = make_table({"bisection": full_labels(1.0, 2.0, 1.0, 5.0)})
        [(_, ok, _)] = evaluate_claims(table, 4)
        assert not ok

    def test_unstructuredapp_needs_slow_torus(self):
        ok_table = make_table(
            {"unstructuredapp": full_labels(0.9, 0.95, 1.0, 4.0)})
        bad_table = make_table(
            {"unstructuredapp": full_labels(0.9, 0.95, 1.0, 1.0)})
        assert evaluate_claims(ok_table, 4)[0][1]
        assert not evaluate_claims(bad_table, 4)[0][1]

    def test_inverted_trend_for_sweep(self):
        skew = {}
        for u in (8, 4, 2, 1):
            skew[f"nestghc(8,{u})"] = 1.1
            skew[f"nesttree(8,{u})"] = 1.1
            skew[f"nestghc(2,{u})"] = 1.5
            skew[f"nesttree(2,{u})"] = 1.5
        table = make_table(
            {"sweep3d": full_labels(1.3, 1.3, 1.0, 0.6, skew=skew)})
        [(_, ok, detail)] = evaluate_claims(table, 5)
        assert ok, detail

    def test_nbodies_needs_degradation_with_size(self):
        skew = {"nestghc(2,1)": 0.9, "nesttree(2,1)": 0.9,
                "nestghc(8,8)": 3.0, "nesttree(8,8)": 3.0}
        table = make_table(
            {"nbodies": full_labels(1.2, 1.2, 1.0, 8.0, skew=skew)})
        [(_, ok, _)] = evaluate_claims(table, 4)
        assert ok


class TestEvaluation:
    def test_absent_workloads_skipped(self):
        table = make_table({"reduce": full_labels(1.0, 1.0, 1.0, 1.0)})
        claims = evaluate_claims(table, 4)
        assert claims == []

    def test_figures_partition_the_claims(self):
        values = {}
        for w in ("reduce", "sweep3d", "flood", "mapreduce",
                  "unstructuredmgnt"):
            values[w] = full_labels(1.0, 1.0, 1.0, 1.0)
        table = make_table(values)
        assert len(evaluate_claims(table, 5)) == 5
        assert len(evaluate_claims(table, 4)) == 0
