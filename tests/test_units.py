"""Tests for the unit constants and helpers."""

from __future__ import annotations

import pytest

from repro import units


class TestConstants:
    def test_byte_multiples(self):
        assert units.KiB == 8 * 1024
        assert units.MiB == 1024 * units.KiB
        assert units.GiB == 1024 * units.MiB

    def test_rates(self):
        assert units.GBPS == 1e9
        assert units.DEFAULT_LINK_CAPACITY == 10e9  # paper: 10 Gbps links

    def test_decimal_bits(self):
        assert units.MBIT == 1e6
        assert units.GBIT == 1e9


class TestHelpers:
    def test_mib_roundtrip(self):
        assert units.bits_to_mib(units.mib(3.5)) == pytest.approx(3.5)

    def test_kib(self):
        assert units.kib(2) == 2 * 1024 * 8

    def test_one_mib_transfer_time(self):
        # sanity: 1 MiB over 10 Gbps is ~0.84 ms — the scale of the paper's
        # per-message times
        t = units.mib(1) / units.DEFAULT_LINK_CAPACITY
        assert 0.0008 < t < 0.0009
