"""Tests for the n-Bodies half-ring workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import NBodies


class TestStructure:
    def test_flow_count(self):
        fs = NBodies(8).build()
        assert fs.num_flows == 8 * 4  # T chains of T//2 hops

    def test_chain_hops_are_ring_neighbours(self):
        fs = NBodies(8).build()
        assert ((fs.dst - fs.src) % 8 == 1).all()

    def test_every_task_starts_a_chain(self):
        fs = NBodies(8).build()
        roots = fs.roots()
        assert sorted(fs.src[roots].tolist()) == list(range(8))

    def test_chains_are_sequential(self):
        fs = NBodies(8).build()
        assert fs.dependency_depth() == 4
        # each non-root flow waits on exactly one predecessor
        assert sorted(np.unique(fs.indegree).tolist()) == [0, 1]

    def test_custom_hop_count(self):
        fs = NBodies(8, hops=2).build()
        assert fs.num_flows == 16
        assert fs.dependency_depth() == 2

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            NBodies(8, hops=0)
        with pytest.raises(ValueError):
            NBodies(8, hops=8)


class TestBehaviour:
    def test_ring_topology_pipelines_perfectly(self):
        """On a matched ring every hop is one link; chains pipeline and the
        run takes hops * (size / capacity) once the ring is saturated."""
        t = 8
        size = CAP / 10
        fs = NBodies(t, message_size=size).build()
        topo = TorusTopology((t,))
        r = simulate(topo, fs)
        # each directed ring link carries T//2 chain hops at full rate +
        # NIC contention; lower bound is (T//2) * size / CAP
        assert r.makespan >= (t // 2) * size / CAP - 1e-12

    def test_all_chains_advance_in_lockstep(self):
        t = 8
        fs = NBodies(t, message_size=CAP / 20).build()
        topo = TorusTopology((t,))
        times = simulate(topo, fs).completion_times.reshape(t, t // 2)
        # by symmetry every chain's k-th hop completes at the same time
        for k in range(t // 2):
            assert np.allclose(times[:, k], times[0, k])
