"""Equivalence regressions for the exact-fidelity batched completion path.

PR 10 extends the warm-fill machinery to *near-identical* allocation
states: an exact-mode completion batch retires flows (and admits their
chained releases on identical routes), and the allocator resumes the
recorded water-level fill above the churn's threshold instead of paying
a full progressive-filling pass per event
(:meth:`repro.engine.active.ActiveSet._relevel_fill`).

The path is specified as *bitwise-exact*: every rate, makespan and
completion time must match what the full pass — and therefore the
historical per-event walk and the rebuild-per-event baseline — produces.
This suite pins that claim across workloads, topology families, healthy
and transient timelines, with the relevel knob (``REPRO_EXACT_RELEVEL``)
and the event-batch knob (``REPRO_EVENT_BATCH``) toggled independently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.active import ActiveSet
from repro.topology import FaultTimeline
from repro.workloads import build as build_workload
from tests.difftest import assert_results_identical

_WORKLOADS = ("allreduce", "permutation", "unstructuredhr")
_FAMILIES = ("small_torus", "small_fattree", "small_ghc", "small_nesttree",
             "small_nestghc")


def _run_matrix(monkeypatch, scenario):
    """Run ``scenario`` under every knob combination; assert identical.

    Returns the default-knob (relevel on, batched) result.
    """
    results = []
    for relevel in ("1", "0"):
        for batch in ("1", "0"):
            monkeypatch.setenv("REPRO_EXACT_RELEVEL", relevel)
            monkeypatch.setenv("REPRO_EVENT_BATCH", batch)
            results.append((f"relevel={relevel},batch={batch}", scenario()))
    base_label, base = results[0]
    for label, other in results[1:]:
        assert_results_identical(base, other, base_label, label)
    return base


class TestExactBatchEquivalence:
    """3 workloads x 5 families, healthy: all knob paths bitwise-equal."""

    @pytest.mark.parametrize("family", _FAMILIES)
    @pytest.mark.parametrize("workload", _WORKLOADS)
    def test_healthy(self, monkeypatch, request, family, workload):
        topo = request.getfixturevalue(family)
        flows = build_workload(workload, topo.num_endpoints, seed=0).build()
        result = _run_matrix(
            monkeypatch,
            lambda: simulate(topo, flows, fidelity="exact"))
        assert np.isfinite(result.completion_times).all()

    @pytest.mark.parametrize("workload", _WORKLOADS)
    def test_rebuild_baseline(self, monkeypatch, small_nesttree, workload):
        """The relevel engine still matches the historical rebuild."""
        flows = build_workload(workload, small_nesttree.num_endpoints,
                               seed=0).build()
        monkeypatch.setenv("REPRO_EXACT_RELEVEL", "1")
        inc = simulate(small_nesttree, flows, fidelity="exact")
        reb = simulate(small_nesttree, flows, fidelity="exact",
                       allocator="rebuild")
        assert_results_identical(inc, reb, "incremental", "rebuild")

    def test_relevel_fires_on_independent_flows(self, monkeypatch,
                                                small_nesttree):
        """Pure-removal churn — the state the warm path never matched —
        now resumes the recorded fill instead of running a full pass."""
        flows = build_workload("unstructuredhr",
                               small_nesttree.num_endpoints, seed=1).build()
        monkeypatch.setenv("REPRO_EXACT_RELEVEL", "1")
        result = simulate(small_nesttree, flows, fidelity="exact")
        stats = result.allocator_stats
        assert stats["relevel_fills"] > 0
        assert stats["relevel_fills"] + stats["warm_fills"] \
            > stats["full_passes"]

    def test_knob_disables_relevel(self, monkeypatch, small_nesttree):
        flows = build_workload("unstructuredhr",
                               small_nesttree.num_endpoints, seed=1).build()
        monkeypatch.setenv("REPRO_EXACT_RELEVEL", "0")
        result = simulate(small_nesttree, flows, fidelity="exact")
        assert result.allocator_stats["relevel_fills"] == 0
        assert result.allocator_stats["full_passes"] == result.reallocations


class TestTransientExactBatch:
    """Fault boundaries take the same path: knob matrix stays bitwise."""

    @pytest.mark.parametrize("workload", _WORKLOADS)
    def test_transient_matrix(self, monkeypatch, small_nesttree, workload):
        flows = build_workload(workload, small_nesttree.num_endpoints,
                               seed=0).build()
        base = simulate(small_nesttree, flows)
        tl = FaultTimeline.sample(small_nesttree, cables=4, seed=3,
                                  horizon=base.makespan * 0.8,
                                  mttr=base.makespan * 0.25)
        result = _run_matrix(
            monkeypatch,
            lambda: simulate(small_nesttree, flows, fidelity="exact",
                             fault_timeline=tl))
        assert result.transient is not None
        assert result.transient["fault_events"] > 0


class TestRelevelUnit:
    """Direct ActiveSet-level behaviour of the suffix-resume path."""

    def _filled_set(self, topo, n_flows=24, seed=0):
        caps = topo.links.capacities
        rng = np.random.default_rng(seed)
        n = topo.num_endpoints
        active = ActiveSet(caps)
        cache: dict = {}
        for fid in range(n_flows):
            s = int(rng.integers(n))
            d = int(rng.integers(n))
            while d == s:
                d = int(rng.integers(n))
            route = cache.get((s, d))
            if route is None:
                route = np.asarray(topo.route(s, d), dtype=np.int64)
                cache[(s, d)] = route
            active.add(fid, route)
        active.allocate()
        return active

    @staticmethod
    def _eligible_fid(active) -> int:
        """A flow whose lone removal passes every relevel guard.

        White-box mirror of :meth:`ActiveSet._relevel_fill`'s gating: the
        flow's bottleneck must sit above the first recorded water level
        (``k > 0``) and the suffix replay must be cheaper than a full
        pass.  Suffix-resume is *worth* taking only for such flows, so
        the unit tests target one directly.
        """
        m = active._m
        seq = active._level_seq
        for slot in range(m):
            route = active._routes[slot]
            tmin = float(active._levels[route].min())
            k = int(np.searchsorted(seq, tmin, side="left"))
            if k == 0:
                continue
            parts = np.flatnonzero(active._rates[:m] >= tmin)
            plinks = np.concatenate(
                [active._routes[s] for s in parts if s != slot] + [route])
            suffix = np.unique(np.concatenate((plinks, route)))
            cost = int(active._csr_len[suffix].sum()) + k * suffix.shape[0]
            if cost <= active._live_nnz:
                return int(active._flow_ids[slot])
        pytest.skip("harness produced no relevel-eligible flow")

    def test_net_removal_relevels_bitwise(self, small_nesttree):
        active = self._filled_set(small_nesttree)
        cold = self._filled_set(small_nesttree)
        cold._relevel_enabled = False
        fid = self._eligible_fid(active)
        active.remove(fid)
        cold.remove(fid)
        got = active.allocate().copy()
        want = cold.allocate().copy()
        # compare per flow id: slot compaction orders the two sets apart
        ga = dict(zip(active.flow_ids.tolist(), got.tolist()))
        gw = dict(zip(cold.flow_ids.tolist(), want.tolist()))
        assert ga == gw
        assert active.relevel_fills == 1 and cold.relevel_fills == 0

    def test_net_addition_falls_back(self, small_nesttree):
        active = self._filled_set(small_nesttree)
        route = np.asarray(small_nesttree.route(0, 5), dtype=np.int64)
        active.remove(2)
        active.add(100, route)  # distinct route object: a net addition
        active.allocate()
        assert active.relevel_fills == 0
        assert active.full_passes == 2

    def test_matched_plus_removed_relevels(self, small_nesttree):
        """A matched (identical-route) swap plus a net removal is the
        exact completion batch's shape and takes the relevel path."""
        active = self._filled_set(small_nesttree)
        fid = self._eligible_fid(active)
        swap = 5 if fid != 5 else 6
        route = active._routes[int(active._slot_arr[swap])]
        active.remove(fid)
        active.remove(swap)
        active.add(200, route)  # same interned array: matched
        active.allocate()
        assert active.relevel_fills == 1
        # the matched admission inherited its twin's exact rate
        rate = float(active.rates[active.flow_ids == 200][0])
        assert rate > 0.0 and np.isfinite(rate)

    def test_weighted_never_relevels(self, small_fattree):
        caps = small_fattree.links.capacities
        active = ActiveSet(caps, weighted=True)
        route = np.asarray(small_fattree.route(0, 9), dtype=np.int64)
        other = np.asarray(small_fattree.route(1, 8), dtype=np.int64)
        for fid, r in ((0, route), (1, other), (2, route)):
            active.add(fid, r, weight=1.5)
        active.allocate()
        active.remove(2)
        active.allocate()
        assert active.relevel_fills == 0 and active.full_passes == 2

    def test_set_rates_invalidates_resume_state(self, small_nesttree):
        active = self._filled_set(small_nesttree)
        active.set_rates(active.rates.copy())
        active.remove(4)
        active.allocate()
        assert active.relevel_fills == 0
        assert active.full_passes == 2
