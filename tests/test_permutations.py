"""Tests for the classic permutation traffic patterns."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import simulate
from repro.errors import WorkloadError
from repro.topology import FatTreeTopology, TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads.permutations import (PATTERNS, Permutation,
                                          bit_complement, bit_reversal,
                                          neighbor, shuffle, tornado,
                                          transpose)

pow2 = st.sampled_from([4, 16, 64, 256])


class TestPatternAlgebra:
    def test_bit_reversal_known(self):
        assert bit_reversal(1, 8) == 4
        assert bit_reversal(3, 8) == 6

    def test_bit_reversal_is_involution(self):
        for t in range(64):
            assert bit_reversal(bit_reversal(t, 64), 64) == t

    def test_bit_complement_known(self):
        assert bit_complement(0, 16) == 15
        assert bit_complement(5, 16) == 10

    def test_transpose_known(self):
        # 4 bits: task 0b0001 -> 0b0100
        assert transpose(1, 16) == 4
        assert transpose(transpose(7, 16), 16) == 7

    def test_transpose_needs_even_bits(self):
        with pytest.raises(WorkloadError):
            transpose(0, 8)

    def test_shuffle_rotates(self):
        assert shuffle(0b100, 8) == 0b001
        assert shuffle(0b011, 8) == 0b110

    def test_tornado_offset(self):
        assert tornado(0, 16) == 7
        assert tornado(10, 16) == 1

    def test_neighbor(self):
        assert neighbor(15, 16) == 0

    @given(pow2, st.sampled_from(sorted(PATTERNS)))
    @settings(max_examples=60, deadline=None)
    def test_every_pattern_is_a_permutation(self, n, name):
        if name == "transpose" and (n.bit_length() - 1) % 2:
            return
        fn = PATTERNS[name]
        dests = [fn(t, n) for t in range(n)]
        assert sorted(dests) == list(range(n))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(WorkloadError):
            bit_reversal(0, 12)


class TestWorkload:
    def test_flow_count(self):
        fs = Permutation(16, pattern="bitcomplement").build()
        assert fs.num_flows == 16  # no fixed points

    def test_fixed_points_skipped(self):
        fs = Permutation(16, pattern="transpose").build()
        # transpose fixes ids whose halves are equal: 4 of 16
        assert fs.num_flows == 12

    def test_repetitions_chain(self):
        fs = Permutation(16, pattern="tornado", repetitions=3).build()
        assert fs.num_flows == 48
        assert fs.dependency_depth() == 3

    def test_unknown_pattern(self):
        with pytest.raises(WorkloadError):
            Permutation(16, pattern="zigzag")

    def test_describe(self):
        assert "tornado" in Permutation(16, pattern="tornado").describe()


class TestPathologies:
    def test_tornado_hurts_the_torus(self):
        """The tornado pattern concentrates half-ring flows on the same
        direction of every ring: the classic DOR-torus pathology."""
        n = 64
        torus = TorusTopology((n,))
        fat = FatTreeTopology((4, 4, 4))
        flows = Permutation(n, pattern="tornado",
                            message_size=CAP / 50).build()
        t_torus = simulate(torus, flows).makespan
        t_fat = simulate(fat, flows).makespan
        assert t_torus > 3 * t_fat

    def test_neighbor_is_the_torus_best_case(self):
        n = 64
        torus = TorusTopology((n,))
        flows = Permutation(n, pattern="neighbor",
                            message_size=CAP / 50).build()
        t = simulate(torus, flows).makespan
        # fully parallel single-hop ring: one message time
        assert t == pytest.approx((CAP / 50) / CAP)

    def test_bitcomplement_crosses_bisection(self):
        """Every bit-complement flow crosses the middle of the machine."""
        topo = TorusTopology((16,), wraparound=False)
        wl = Permutation(16, pattern="bitcomplement")
        for src, dst in enumerate(wl._destinations):
            lo, hi = min(src, dst), max(src, dst)
            assert lo < 8 <= hi
