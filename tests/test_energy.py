"""Tests for the energy estimation model."""

from __future__ import annotations

import pytest

from repro.engine import analyze
from repro.engine.flows import FlowBuilder
from repro.errors import ConfigError
from repro.topology import NestTree, TorusTopology
from repro.topology.energy import EnergyModel, compare, estimate
from repro.units import DEFAULT_LINK_CAPACITY as CAP


@pytest.fixture(scope="module")
def line():
    return TorusTopology((4,), wraparound=False)


class TestModel:
    def test_coefficients_validated(self):
        with pytest.raises(ConfigError):
            EnergyModel(link_energy_per_bit=-1.0)

    def test_negative_duration_rejected(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, 1.0)
        report = analyze(line, b.build())
        with pytest.raises(ConfigError):
            estimate(line, report, -1.0)


class TestEstimate:
    def test_dynamic_energy_closed_form(self, line):
        """One flow, one network hop: energy = bits * (3 links + 0 switch)."""
        model = EnergyModel(link_energy_per_bit=1.0,
                            switch_energy_per_bit=10.0,
                            qfdb_idle_power=0.0, switch_idle_power=0.0)
        b = FlowBuilder(4)
        b.add_flow(0, 1, 5.0)  # inj + net hop + cons = 3 link traversals
        report = analyze(line, b.build())
        energy = estimate(line, report, 1.0, model=model)
        assert energy.dynamic_joules == pytest.approx(15.0)
        assert energy.static_joules == 0.0

    def test_switch_traversals_counted(self):
        """On a fattree the bits entering switches pay the crossbar cost."""
        from repro.topology import FatTreeTopology

        topo = FatTreeTopology((2, 2))
        model = EnergyModel(link_energy_per_bit=0.0,
                            switch_energy_per_bit=1.0,
                            qfdb_idle_power=0.0, switch_idle_power=0.0)
        b = FlowBuilder(4)
        b.add_flow(0, 3, 2.0)  # crosses 3 switches (up, top, down)
        report = analyze(topo, b.build())
        energy = estimate(topo, report, 1.0, model=model)
        assert energy.dynamic_joules == pytest.approx(6.0)

    def test_static_energy_scales_with_duration(self, line):
        model = EnergyModel(link_energy_per_bit=0.0,
                            switch_energy_per_bit=0.0,
                            qfdb_idle_power=2.0, switch_idle_power=0.0)
        b = FlowBuilder(4)
        b.add_flow(0, 1, 1.0)
        report = analyze(line, b.build())
        e1 = estimate(line, report, 1.0, model=model)
        e2 = estimate(line, report, 2.0, model=model)
        assert e1.static_joules == pytest.approx(8.0)   # 4 QFDBs x 2 W x 1 s
        assert e2.static_joules == pytest.approx(16.0)

    def test_joules_per_bit(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)  # one second of payload
        report = analyze(line, b.build())
        energy = estimate(line, report, 1.0)
        assert energy.bits_delivered == pytest.approx(CAP)
        assert energy.joules_per_bit == pytest.approx(
            energy.total_joules / CAP)
        assert "pJ/bit" in energy.summary()


class TestCompare:
    def test_upper_tier_costs_static_power(self):
        """A hybrid burns more idle power than the bare torus for the same
        workload — the cost/benefit trade-off the paper's §5.1 discusses."""
        b = FlowBuilder(64)
        for i in range(0, 64, 2):
            b.add_flow(i, (i + 32) % 64, CAP / 100)
        flows = b.build()
        reports = compare({
            "torus": TorusTopology.cubic(64),
            "hybrid": NestTree(64, 2, 2),
        }, flows)
        assert set(reports) == {"torus", "hybrid"}
        t, h = reports["torus"], reports["hybrid"]
        # per second, the hybrid's switches add idle power
        assert h.static_joules / h.duration > t.static_joules / t.duration
