"""Tests for the bounded weighted fair scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, QueueFullError
from repro.service.scheduler import FairScheduler


def fill(sched: FairScheduler, tenant: str, n: int, tag: str = "") -> None:
    for i in range(n):
        sched.submit(tenant, f"{tenant}{tag}-{i}")


class TestFifoWithinTenant:
    def test_single_tenant_is_fifo(self):
        sched = FairScheduler(16)
        fill(sched, "a", 5)
        assert [item for _, item in sched.drain()] \
            == [f"a-{i}" for i in range(5)]

    def test_depth_and_backlog(self):
        sched = FairScheduler(16)
        fill(sched, "a", 3)
        fill(sched, "b", 2)
        assert sched.depth == len(sched) == 5
        assert sched.backlog() == {"a": 3, "b": 2}
        sched.next()
        assert sched.depth == 4


class TestWeightedFairness:
    def test_equal_weights_interleave(self):
        sched = FairScheduler(64)
        fill(sched, "a", 4)
        fill(sched, "b", 4)
        order = [tenant for tenant, _ in sched.drain()]
        # strict alternation: equal strides, deterministic name tie-break
        assert order == ["a", "b"] * 4

    def test_weight_two_drains_twice_as_fast(self):
        sched = FairScheduler(64, weights={"big": 2})
        fill(sched, "big", 8)
        fill(sched, "small", 8)
        first_nine = [t for t, _ in (sched.next() for _ in range(9))]
        assert first_nine.count("big") == 6
        assert first_nine.count("small") == 3

    def test_greedy_tenant_cannot_starve_others(self):
        sched = FairScheduler(64)
        fill(sched, "greedy", 30)
        fill(sched, "meek", 2)
        first_four = [t for t, _ in (sched.next() for _ in range(4))]
        # both of meek's items are served within the first four slots
        assert first_four.count("meek") == 2

    def test_idle_tenant_banks_no_credit(self):
        sched = FairScheduler(64)
        fill(sched, "a", 6)
        for _ in range(6):
            sched.next()
        # b arrives late: it must share from *now*, not replay a's past
        fill(sched, "a", 4)
        fill(sched, "b", 4)
        order = [t for t, _ in sched.drain()]
        assert order.count("b") == 4
        assert sorted(order[:2]) == ["a", "b"]

    def test_deterministic(self):
        def run():
            sched = FairScheduler(64, weights={"x": 3, "y": 1})
            fill(sched, "y", 5)
            fill(sched, "x", 5)
            fill(sched, "z", 5)
            return [(t, i) for t, i in sched.drain()]

        assert run() == run()


class TestBackpressure:
    def test_capacity_bound_raises_typed_error(self):
        sched = FairScheduler(3)
        fill(sched, "a", 3)
        with pytest.raises(QueueFullError) as err:
            sched.submit("b", "overflow")
        assert err.value.capacity == 3
        assert err.value.depth == 3
        assert err.value.tenant == "b"

    def test_draining_frees_capacity(self):
        sched = FairScheduler(2)
        fill(sched, "a", 2)
        sched.next()
        sched.submit("a", "ok-now")  # no raise

    def test_validation(self):
        with pytest.raises(ConfigError):
            FairScheduler(0)
        with pytest.raises(ConfigError):
            FairScheduler(4, weights={"a": 0})
        with pytest.raises(ConfigError):
            FairScheduler(4, default_weight=0)

    def test_empty_queue_returns_none(self):
        sched = FairScheduler(4)
        assert sched.next() is None
        assert list(sched.drain()) == []

    def test_drain_limit(self):
        sched = FairScheduler(16)
        fill(sched, "a", 6)
        assert len(list(sched.drain(4))) == 4
        assert sched.depth == 2
