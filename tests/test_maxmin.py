"""Tests for max-min fair progressive filling.

Includes a tiny reference implementation (textbook progressive filling with
Python floats) that the vectorised allocator is property-checked against.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.maxmin import allocate, bottleneck_lower_bound
from repro.errors import SimulationError


def _alloc(routes: list[list[int]], caps: list[float]) -> np.ndarray:
    entries = np.concatenate([np.asarray(r, dtype=np.int64) for r in routes])
    ptr = np.zeros(len(routes) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in routes], out=ptr[1:])
    return allocate(entries, ptr, np.asarray(caps, dtype=np.float64))


def reference_maxmin(routes: list[list[int]], caps: list[float]) -> list[float]:
    """Slow but obviously-correct progressive filling."""
    caps = list(caps)
    rates = [0.0] * len(routes)
    frozen = [False] * len(routes)
    level = 0.0
    while not all(frozen):
        counts = {}
        for i, r in enumerate(routes):
            if not frozen[i]:
                for l in r:
                    counts[l] = counts.get(l, 0) + 1
        delta = min(caps[l] / c for l, c in counts.items())
        level += delta
        for l, c in counts.items():
            caps[l] -= delta * c
        saturated = {l for l in counts if caps[l] <= 1e-9 * level}
        for i, r in enumerate(routes):
            if not frozen[i] and any(l in saturated for l in r):
                frozen[i] = True
                rates[i] = level
    return rates


class TestHandCases:
    def test_single_flow_gets_min_capacity(self):
        rates = _alloc([[0, 1]], [10.0, 4.0])
        assert rates[0] == pytest.approx(4.0)

    def test_equal_share_on_one_link(self):
        rates = _alloc([[0], [0], [0], [0]], [8.0])
        assert np.allclose(rates, 2.0)

    def test_two_bottlenecks(self):
        # flows A and B share link 0 (cap 2); flow B also crosses link 1
        # (cap 0.5) -> B freezes at 0.5, A takes the rest of link 0
        rates = _alloc([[0], [0, 1]], [2.0, 0.5])
        assert rates[1] == pytest.approx(0.5)
        assert rates[0] == pytest.approx(1.5)

    def test_classic_chain(self):
        # three links cap 1; flow X spans all, flows Y/Z each cross one link
        # with X -> X gets 1/2, Y and Z get 1/2 each (link 2 underused)
        rates = _alloc([[0, 1, 2], [0], [1]], [1.0, 1.0, 1.0])
        assert np.allclose(rates, [0.5, 0.5, 0.5])

    def test_disjoint_flows_fill_their_links(self):
        rates = _alloc([[0], [1]], [3.0, 7.0])
        assert rates.tolist() == [3.0, 7.0]

    def test_empty_batch(self):
        out = allocate(np.empty(0, dtype=np.int64),
                       np.zeros(1, dtype=np.int64), np.array([1.0]))
        assert out.size == 0

    def test_bad_ptr_rejected(self):
        with pytest.raises(SimulationError):
            allocate(np.array([0, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            _alloc([[0]], [0.0])


class TestInvariants:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, data):
        num_links = data.draw(st.integers(1, 8))
        caps = data.draw(st.lists(
            st.floats(0.1, 10.0), min_size=num_links, max_size=num_links))
        num_flows = data.draw(st.integers(1, 12))
        routes = []
        for _ in range(num_flows):
            k = data.draw(st.integers(1, num_links))
            route = data.draw(st.permutations(range(num_links)))[:k]
            routes.append(list(route))
        fast = _alloc(routes, caps)
        slow = reference_maxmin(routes, caps)
        assert np.allclose(fast, slow, rtol=1e-6)

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_feasible_and_positive(self, data):
        num_links = data.draw(st.integers(1, 10))
        caps = [data.draw(st.floats(0.5, 5.0)) for _ in range(num_links)]
        routes = []
        for _ in range(data.draw(st.integers(1, 20))):
            k = data.draw(st.integers(1, num_links))
            routes.append(list(data.draw(st.permutations(range(num_links)))[:k]))
        rates = _alloc(routes, caps)
        assert (rates > 0).all()
        load = np.zeros(num_links)
        for r, rate in zip(routes, rates):
            for l in r:
                load[l] += rate
        assert (load <= np.asarray(caps) * (1 + 1e-6)).all()

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_maxmin_bottleneck_condition(self, data):
        """Every flow crosses a saturated link where its rate is maximal."""
        num_links = data.draw(st.integers(1, 6))
        caps = [data.draw(st.floats(0.5, 4.0)) for _ in range(num_links)]
        routes = []
        for _ in range(data.draw(st.integers(1, 10))):
            k = data.draw(st.integers(1, num_links))
            routes.append(list(data.draw(st.permutations(range(num_links)))[:k]))
        rates = _alloc(routes, caps)
        load = np.zeros(num_links)
        for r, rate in zip(routes, rates):
            for l in r:
                load[l] += rate
        for i, r in enumerate(routes):
            has_bottleneck = any(
                load[l] >= caps[l] * (1 - 1e-6)
                and all(rates[j] <= rates[i] + 1e-9
                        for j, rj in enumerate(routes) if l in rj)
                for l in r)
            assert has_bottleneck, (routes, caps, rates)


class TestBottleneckBound:
    def test_simple(self):
        entries = np.array([0, 0, 1])
        ptr = np.array([0, 1, 3])
        caps = np.array([2.0, 1.0])
        sizes = np.array([4.0, 2.0])
        # link 0 carries 6 bits at cap 2 -> 3 s; link 1 carries 2 at 1 -> 2 s
        assert bottleneck_lower_bound(entries, ptr, caps, sizes) == 3.0

    def test_empty(self):
        assert bottleneck_lower_bound(np.empty(0, dtype=np.int64),
                                      np.zeros(1, dtype=np.int64),
                                      np.array([1.0]),
                                      np.empty(0)) == 0.0


class TestSlicesConcat:
    """Zero-length ranges (empty routes) must not corrupt the cumsum trick."""

    @staticmethod
    def _naive(starts, stops):
        if len(starts) == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(a, b, dtype=np.int64)
                               for a, b in zip(starts, stops)])

    @pytest.mark.parametrize("starts,stops", [
        ([0, 3, 3], [3, 3, 6]),    # zero-length range in the middle
        ([2, 5], [4, 5]),          # zero-length range at the end
        ([5, 0], [5, 2]),          # zero-length range at the start
        ([4], [4]),                # single empty range
        ([2, 2, 2], [2, 2, 2]),    # all ranges empty
        ([], []),                  # no ranges at all
        ([1, 6, 9], [4, 8, 12]),   # no empties (fast path unchanged)
    ])
    def test_matches_naive_concatenation(self, starts, stops):
        from repro.engine.maxmin import _slices_concat

        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        got = _slices_concat(starts, stops)
        assert np.array_equal(got, self._naive(starts, stops))

    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 10)),
                    max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property(self, ranges):
        from repro.engine.maxmin import _slices_concat

        starts = np.asarray([a for a, _ in ranges], dtype=np.int64)
        stops = starts + np.asarray([n for _, n in ranges], dtype=np.int64)
        got = _slices_concat(starts, stops)
        assert np.array_equal(got, self._naive(starts, stops))
