"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestInfo:
    def test_lists_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "nesttree" in out and "allreduce" in out


class TestTables:
    def test_table1_small(self, capsys):
        assert main(["table1", "--endpoints", "64", "--max-pairs", "500"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "(8,1)" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--endpoints", "4096"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out


class TestRun:
    def test_single_simulation(self, capsys):
        assert main(["run", "--endpoints", "64", "--topology", "nesttree",
                     "--t", "2", "--u", "2", "--workload", "allreduce"]) == 0
        out = capsys.readouterr().out
        assert "makespan=" in out and "nesttree" in out

    def test_task_subset_with_spread(self, capsys):
        assert main(["run", "--endpoints", "64", "--topology", "fattree",
                     "--workload", "mapreduce", "--tasks", "8"]) == 0
        assert "makespan=" in capsys.readouterr().out


class TestFigures:
    def test_fig5_subset(self, capsys, tmp_path):
        out_file = tmp_path / "fig.csv"
        assert main(["fig5", "--endpoints", "64", "--workloads", "reduce",
                     "--quiet", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "== reduce ==" in out and "shape checks" in out
        assert out_file.read_text().startswith("workload,topology")

    def test_fig4_subset(self, capsys):
        assert main(["fig4", "--endpoints", "64", "--workloads",
                     "allreduce", "--quiet"]) == 0
        assert "Figure 4" in capsys.readouterr().out


class TestResilience:
    def test_slowdown_table(self, capsys, tmp_path):
        out_file = tmp_path / "res.csv"
        assert main(["resilience", "--endpoints", "64",
                     "--workload", "reduce",
                     "--topologies", "torus", "fattree",
                     "--fail-links", "0", "2", "--fail-seed", "1",
                     "--quiet", "--keep-going",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Resilience sweep: reduce @ 64 endpoints" in out
        assert "links=0" in out and "links=2" in out
        assert "torus" in out and "fattree" in out
        assert "1.00x" in out  # each family's healthy run is its baseline
        assert "2c+0u@s1" in out_file.read_text()

    def test_disconnected_cell_shows_as_failed(self, capsys):
        # t=2,u=8 leaves one uplink per subtorus, so a single dead uplink
        # port disconnects the upper fabric: the cell must surface as
        # "failed", not abort the sweep or silently vanish
        assert main(["resilience", "--endpoints", "64",
                     "--workload", "reduce", "--topologies", "nesttree",
                     "--fail-links", "0", "--fail-uplinks", "1",
                     "--quiet", "--keep-going"]) == 0
        assert "failed" in capsys.readouterr().out


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["plot"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestComparatorFamilies:
    def test_run_dragonfly(self, capsys):
        assert main(["run", "--endpoints", "72", "--topology", "dragonfly",
                     "--workload", "reduce"]) == 0
        assert "dragonfly" in capsys.readouterr().out

    def test_run_jellyfish(self, capsys):
        assert main(["run", "--endpoints", "64", "--topology", "jellyfish",
                     "--workload", "allreduce"]) == 0
        assert "jellyfish" in capsys.readouterr().out

    def test_run_thintree(self, capsys):
        assert main(["run", "--endpoints", "64", "--topology", "thintree",
                     "--workload", "reduce"]) == 0
        assert "thintree" in capsys.readouterr().out


class TestInputValidation:
    """Bad inputs exit with status 2 and name the valid choices."""

    def _error(self, capsys, argv) -> str:
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        return capsys.readouterr().err

    def test_unknown_sweep_workload(self, capsys):
        err = self._error(capsys, ["fig4", "--endpoints", "64",
                                   "--workloads", "nope"])
        assert "unknown workload 'nope'" in err
        assert "allreduce" in err and "sweep3d" in err  # choices listed

    def test_unknown_run_workload(self, capsys):
        err = self._error(capsys, ["run", "--endpoints", "64",
                                   "--topology", "fattree",
                                   "--workload", "zzz"])
        assert "unknown workload 'zzz'" in err and "reduce" in err

    def test_untileable_endpoints(self, capsys):
        err = self._error(capsys, ["fig4", "--endpoints", "100"])
        assert "multiple of 8" in err

    def test_negative_endpoints(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "-8"])
        assert "positive" in err

    def test_resume_requires_checkpoint(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "64", "--resume"])
        assert "--checkpoint" in err

    def test_bad_jobs(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "64",
                                   "--jobs", "0"])
        assert "--jobs" in err

    def test_negative_fail_links(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "64",
                                   "--fail-links", "-1"])
        assert "--fail-links" in err and ">= 0" in err

    def test_negative_fail_links_in_sweep_list(self, capsys):
        err = self._error(capsys, ["resilience", "--endpoints", "64",
                                   "--workload", "reduce",
                                   "--fail-links", "0", "4", "-2"])
        assert "--fail-links" in err and "-2" in err

    def test_negative_fail_uplinks(self, capsys):
        err = self._error(capsys, ["fig4", "--endpoints", "64",
                                   "--fail-uplinks", "-1"])
        assert "--fail-uplinks" in err

    def test_negative_fail_seed(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "64",
                                   "--fail-seed", "-3"])
        assert "--fail-seed" in err

    def test_zero_cell_timeout(self, capsys):
        err = self._error(capsys, ["fig5", "--endpoints", "64",
                                   "--cell-timeout", "0"])
        assert "--cell-timeout" in err and "positive" in err

    def test_unknown_resilience_workload(self, capsys):
        err = self._error(capsys, ["resilience", "--endpoints", "64",
                                   "--workload", "nope"])
        assert "unknown workload 'nope'" in err

    def test_unknown_resilience_family(self, capsys):
        err = self._error(capsys, ["resilience", "--endpoints", "64",
                                   "--workload", "reduce",
                                   "--topologies", "hypercube"])
        assert "unknown topology family 'hypercube'" in err
        assert "nesttree" in err  # choices listed


class TestSweepFlags:
    def test_fig5_with_jobs_and_checkpoint(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        assert main(["fig5", "--endpoints", "64", "--workloads", "reduce",
                     "--quiet", "--jobs", "2",
                     "--checkpoint", str(ck)]) == 0
        assert "== reduce ==" in capsys.readouterr().out
        assert ck.read_text().startswith('{"magic"')

    def test_fig5_with_fault_injection(self, capsys, tmp_path):
        out_file = tmp_path / "fig.csv"
        # --fail-seed 1 keeps every family connected at 64 endpoints;
        # --keep-going guards against a disconnecting draw regardless
        assert main(["fig5", "--endpoints", "64", "--workloads", "reduce",
                     "--quiet", "--fail-links", "2", "--fail-seed", "1",
                     "--keep-going", "--out", str(out_file)]) == 0
        assert "== reduce ==" in capsys.readouterr().out
        assert "2c+0u@s1" in out_file.read_text()

    def test_fig5_resume_from_checkpoint(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        assert main(["fig5", "--endpoints", "64", "--workloads", "reduce",
                     "--quiet", "--checkpoint", str(ck)]) == 0
        first = capsys.readouterr().out
        assert main(["fig5", "--endpoints", "64", "--workloads", "reduce",
                     "--quiet", "--checkpoint", str(ck), "--resume"]) == 0
        assert capsys.readouterr().out == first  # fully replayed from disk


class TestProfile:
    def test_profile_prints_tier_and_timing_tables(self, capsys):
        assert main(["profile", "allreduce", "nesttree", "--t", "2",
                     "--u", "2", "--endpoints", "64"]) == 0
        out = capsys.readouterr().out
        for tier in ("lower_torus", "uplinks", "upper_fabric", "nic"):
            assert tier in out
        assert "Timing (wall-clock spans)" in out
        assert "Allocator:" in out

    def test_profile_flat_family(self, capsys):
        assert main(["profile", "reduce", "torus",
                     "--endpoints", "64"]) == 0
        out = capsys.readouterr().out
        assert "network" in out and "nic" in out

    def test_profile_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "zzz", "torus", "--endpoints", "64"])
        assert exc.value.code == 2
        assert "unknown workload 'zzz'" in capsys.readouterr().err

    def test_profile_unknown_topology(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "reduce", "zzz", "--endpoints", "64"])
        assert exc.value.code == 2
        assert "unknown topology family 'zzz'" in capsys.readouterr().err


class TestSweepMetricsFlag:
    def test_fig4_metrics_stream(self, capsys, tmp_path):
        from repro.obs import validate_metrics_file

        path = tmp_path / "m.jsonl"
        assert main(["fig4", "--endpoints", "64", "--workloads",
                     "allreduce", "--quiet", "--metrics", str(path)]) == 0
        assert validate_metrics_file(path) == 18

    def test_resilience_metrics_stream(self, capsys, tmp_path):
        from repro.obs import validate_metrics_file

        path = tmp_path / "m.jsonl"
        assert main(["resilience", "--endpoints", "64", "--workload",
                     "reduce", "--topologies", "torus", "fattree",
                     "--fail-links", "0", "--quiet",
                     "--metrics", str(path)]) == 0
        assert validate_metrics_file(path) == 2
