"""Tests for the degraded-network simulation layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import analyze, simulate
from repro.errors import DegradedNetworkError, TopologyError
from repro.routing import ROUTING_POLICIES
from repro.routing.policy import adaptive_index, ecmp_index
from repro.topology import (DegradedTopology, FaultSet, NestTree,
                            TorusTopology, available, build, degrade,
                            validate_fault_ids)
from repro.workloads import build as build_workload

#: One buildable instance per registered topology family.
FAMILY_SIZES = {"torus": 64, "fattree": 64, "thintree": 64, "ghc": 64,
                "nesttree": 64, "nestghc": 64, "dragonfly": 72,
                "jellyfish": 64}
FAMILY_PARAMS = {"nesttree": {"t": 2, "u": 2}, "nestghc": {"t": 2, "u": 2}}

_built: dict[str, object] = {}
_fault_sets: dict[tuple, FaultSet] = {}


def built(family):
    if family not in _built:
        _built[family] = build(family, FAMILY_SIZES[family],
                               **FAMILY_PARAMS.get(family, {}))
    return _built[family]


def fault_set(family, cables, seed, uplinks=0):
    key = (family, cables, seed, uplinks)
    if key not in _fault_sets:
        _fault_sets[key] = FaultSet.sample(built(family), cables=cables,
                                           uplinks=uplinks, seed=seed)
    return _fault_sets[key]


def test_every_family_is_covered():
    assert set(FAMILY_SIZES) == set(available())


class TestFaultSet:
    def test_sampling_is_reproducible(self):
        topo = built("nesttree")
        a = FaultSet.sample(topo, cables=4, uplinks=2, seed=7)
        b = FaultSet.sample(topo, cables=4, uplinks=2, seed=7)
        assert a.failed_links == b.failed_links
        assert a.failed_uplinks == b.failed_uplinks
        assert a.fingerprint() == {"cables": 4, "uplinks": 2, "seed": 7}

    def test_cables_fail_both_directions(self):
        topo = built("torus")
        fs = FaultSet.sample(topo, cables=5, seed=1)
        for lid in fs.failed_links:
            u, v = topo.links.endpoints_of(lid)
            assert topo.links.id_of(v, u) in fs.failed_links

    def test_uplink_faults_require_a_hybrid(self):
        with pytest.raises(TopologyError, match="hybrid"):
            FaultSet.sample(built("torus"), uplinks=1)

    def test_uplink_faults_pick_uplinked_endpoints(self):
        topo = built("nesttree")
        fs = FaultSet.sample(topo, uplinks=3, seed=2)
        assert len(fs.failed_uplinks) == 3
        for e in fs.failed_uplinks:
            _, local = divmod(e, topo.plan.nodes)
            assert local in topo.plan.uplink_rank

    def test_negative_counts_rejected(self):
        with pytest.raises(TopologyError, match="non-negative"):
            FaultSet.sample(built("torus"), cables=-1)

    def test_explicit_set_fingerprints_by_ids(self):
        topo = built("torus")
        u, v = topo.links.endpoints_of(0)
        fs = FaultSet(frozenset({0, topo.links.id_of(v, u)}))
        fp = fs.fingerprint()
        assert sorted(fp["links"]) == fp["links"]
        assert "cables" not in fp


class TestWrapperConstruction:
    def test_degrade_identity_when_healthy(self):
        topo = built("torus")
        assert degrade(topo) is topo

    def test_shares_link_table_and_nic_links(self):
        topo = built("fattree")
        deg = degrade(topo, cables=2, seed=0)
        assert deg.links is topo.links
        assert np.array_equal(deg.injection_links, topo.injection_links)
        assert np.array_equal(deg.consumption_links, topo.consumption_links)

    def test_rejects_nic_link_faults(self):
        topo = built("torus")
        nic = int(topo.injection_links[0])
        with pytest.raises(TopologyError, match="NIC"):
            DegradedTopology(topo, FaultSet(frozenset({nic})))

    def test_rejects_half_cables(self):
        topo = built("torus")
        with pytest.raises(TopologyError, match="reverse"):
            DegradedTopology(topo, FaultSet(frozenset({0})))

    def test_rejects_stacked_wrappers(self):
        deg = degrade(built("torus"), cables=1, seed=0)
        with pytest.raises(TopologyError, match="already-degraded"):
            DegradedTopology(deg, FaultSet())

    def test_delegates_hybrid_helpers(self):
        topo = built("nesttree")
        deg = degrade(topo, cables=1, seed=0)
        assert deg.subtorus_of(9) == topo.subtorus_of(9)
        assert deg.plan is topo.plan
        assert "degraded" in deg.describe()


class TestFaultIdValidation:
    """Fault ids are range-checked against the topology at wrap time.

    A fault set sampled on one topology used to apply silently to another
    (out-of-range ids simply never matched a route); now the mismatch is a
    typed error naming the offending ids.
    """

    def test_unknown_link_ids_are_named(self):
        topo = built("torus")
        n = topo.links.num_links
        with pytest.raises(TopologyError) as exc:
            DegradedTopology(topo, FaultSet(frozenset({n + 5, n + 6})))
        assert str(n + 5) in str(exc.value)
        assert str(n + 6) in str(exc.value)
        assert "different topology" in str(exc.value)

    def test_fault_set_from_bigger_topology_rejected(self):
        big = build("torus", 512)
        small = built("torus")
        fs = FaultSet.sample(big, cables=4, seed=0)
        # at least one sampled id must exceed the small machine's table
        # for this regression to bite; seed 0 at 512 endpoints does
        assert max(fs.failed_links) >= small.links.num_links
        with pytest.raises(TopologyError, match="unknown link id"):
            DegradedTopology(small, fs)

    def test_unknown_uplink_endpoints_are_named(self):
        topo = built("nesttree")
        bad = topo.num_endpoints + 17
        with pytest.raises(TopologyError) as exc:
            validate_fault_ids(topo, frozenset(), frozenset({bad}))
        assert str(bad) in str(exc.value)
        assert "unknown endpoint" in str(exc.value)

    def test_portless_uplink_endpoints_are_named(self):
        topo = built("nesttree")
        # find an endpoint with no uplink port (u=2 on a 2^3 subtorus
        # leaves local ranks without one)
        portless = next(
            e for e in range(topo.num_endpoints)
            if (e % topo.plan.nodes) not in topo.plan.uplink_rank)
        with pytest.raises(TopologyError, match="no uplink port"):
            validate_fault_ids(topo, frozenset(), frozenset({portless}))

    def test_negative_link_ids_rejected(self):
        topo = built("torus")
        with pytest.raises(TopologyError, match="unknown link id"):
            validate_fault_ids(topo, frozenset({-1}), frozenset())

    def test_valid_ids_pass(self):
        topo = built("nesttree")
        fs = fault_set("nesttree", 3, 0, uplinks=2)
        validate_fault_ids(topo, fs.failed_links, fs.failed_uplinks)

    def test_timeline_validation_names_foreign_ids(self):
        from repro.topology import FaultTimeline

        big = build("torus", 512)
        small = built("torus")
        tl = FaultTimeline.sample(big, cables=4, seed=0, horizon=1.0)
        with pytest.raises(TopologyError, match="unknown link id"):
            tl.validate(small)


class TestCandidateFaultInteraction:
    """Property: ``route_candidates`` on a degraded view never yields a
    route crossing a failed link or a dead uplink port — across all 8
    families and all three routing policies (the candidate-set API and
    the fault model were built in different PRs; this pins their
    composition)."""

    @settings(max_examples=150, deadline=None)
    @given(family=st.sampled_from(sorted(FAMILY_SIZES)),
           seed=st.integers(0, 5), cables=st.integers(1, 5),
           uplinks=st.integers(0, 3), draw=st.integers(0, 10_000),
           policy=st.sampled_from(ROUTING_POLICIES))
    def test_candidates_avoid_failed_components(self, family, seed, cables,
                                                uplinks, draw, policy):
        topo = built(family)
        if not hasattr(topo, "plan"):
            uplinks = 0  # uplink-port faults are a hybrid concept
        deg = DegradedTopology(topo,
                               fault_set(family, cables, seed, uplinks))
        disabled = deg.disabled_link_mask()
        n = topo.num_endpoints
        src = draw % n
        dst = (draw // n) % n
        if src == dst:
            dst = (dst + 1) % n
        try:
            cands = deg.route_candidates(src, dst)
        except DegradedNetworkError as exc:
            assert (src, dst) in exc.pairs
            return
        assert cands, "route_candidates returned an empty candidate set"
        for route in cands:
            arr = np.asarray(route, dtype=np.int64)
            assert not disabled[arr].any(), (
                f"{family} candidate for {src}->{dst} crosses a failed "
                f"link/dead uplink under {policy}")
            assert arr[0] == int(topo.injection_links[src])
            assert arr[-1] == int(topo.consumption_links[dst])
        # candidate 0 is the deterministic route; the policy selectors
        # must index inside the candidate list
        assert list(cands[0]) == list(deg.route(src, dst))
        if policy == "ecmp":
            assert 0 <= ecmp_index(draw, src, dst, len(cands)) < len(cands)
        elif policy == "adaptive":
            occupancy = np.zeros(topo.links.num_links, dtype=np.int64)
            idx = adaptive_index([np.asarray(r, dtype=np.int64)
                                  for r in cands], occupancy)
            assert 0 <= idx < len(cands)


class TestDegradedRouting:
    """Acceptance: for every family, every routed flow avoids every failed
    link, or the disconnected pair is named — no silent fallthrough."""

    @settings(max_examples=120, deadline=None)
    @given(family=st.sampled_from(sorted(FAMILY_SIZES)),
           seed=st.integers(0, 7), cables=st.integers(1, 5),
           draw=st.integers(0, 10_000))
    def test_route_never_traverses_a_failed_link(self, family, seed,
                                                 cables, draw):
        topo = built(family)
        deg = DegradedTopology(topo, fault_set(family, cables, seed))
        n = topo.num_endpoints
        src = draw % n
        dst = (draw // n) % n
        if src == dst:
            dst = (dst + 1) % n
        try:
            route = deg.route(src, dst)
        except DegradedNetworkError as exc:
            assert (src, dst) in exc.pairs
            return
        assert not set(route) & deg.faults.failed_links
        # NIC links still bracket the path, like any healthy route
        assert route[0] == int(topo.injection_links[src])
        assert route[-1] == int(topo.consumption_links[dst])

    def test_routing_is_deterministic(self):
        a = degrade(built("ghc"), cables=4, seed=3)
        b = degrade(built("ghc"), cables=4, seed=3)
        for src, dst in [(0, 63), (5, 40), (63, 1)]:
            try:
                route_a = a.route(src, dst)
            except DegradedNetworkError:
                with pytest.raises(DegradedNetworkError):
                    b.route(src, dst)
                continue
            assert route_a == b.route(src, dst)

    def test_hybrid_reroutes_around_dead_uplink_port(self):
        topo = NestTree(64, 2, 2)
        src, dst = 1, 63
        dead = topo.designated_uplink(src)
        deg = DegradedTopology(topo, FaultSet(failed_uplinks=frozenset({dead})))
        path = deg.vertex_path(src, dst)
        switch_lo = topo.num_endpoints
        for a, b in zip(path, path[1:]):
            assert not (a == dead and b >= switch_lo)
            assert not (b == dead and a >= switch_lo)
        assert path[0] == src and path[-1] == dst

    def test_disconnected_pair_is_named(self):
        topo = TorusTopology((4, 4))
        nic_base = topo.num_endpoints + topo.num_switches
        cut = frozenset(
            lid for lid in range(topo.links.num_links)
            if 0 in topo.links.endpoints_of(lid)
            and max(topo.links.endpoints_of(lid)) < nic_base)
        deg = DegradedTopology(topo, FaultSet(cut))
        with pytest.raises(DegradedNetworkError) as exc:
            deg.route(0, 5)
        assert (0, 5) in exc.value.pairs
        assert "0->5" in str(exc.value)
        # the rest of the machine still routes
        assert deg.route(1, 5)

    def test_detour_is_minimal_on_the_surviving_graph(self):
        topo = TorusTopology((4, 4))
        # fail one cable on the deterministic route 0 -> 1
        lid = topo.links.id_of(0, 1)
        rev = topo.links.id_of(1, 0)
        deg = DegradedTopology(topo, FaultSet(frozenset({lid, rev})))
        path = deg.vertex_path(0, 1)
        # 0 and 1 share no neighbour in a (4,4) torus, so the shortest
        # surviving walk is exactly 3 hops (e.g. back around the x ring)
        assert len(path) == 4
        assert path[0] == 0 and path[-1] == 1


class TestDegradedSimulation:
    def test_simulation_and_static_loads_avoid_failed_links(self):
        topo = built("nesttree")
        deg = degrade(topo, cables=3, uplinks=1, seed=0)
        flows = build_workload("allreduce", 64).build()
        result = simulate(deg, flows)
        assert result.makespan > 0
        report = analyze(deg, flows)
        for lid in deg.faults.failed_links:
            assert report.loads[lid] == 0.0
        # tier breakdown still recognises the wrapped hybrid
        assert "upper_fabric" in report.tier_loads

    def test_degradation_typically_costs_makespan(self):
        topo = built("torus")
        flows = build_workload("allreduce", 64).build()
        healthy = simulate(topo, flows).makespan
        degraded = simulate(degrade(topo, cables=6, seed=1), flows).makespan
        assert degraded >= healthy


class TestDetourEndpointTransit:
    """The BFS detour must not relay traffic through third-party endpoints.

    Regression for a bug where the detour search treated every vertex as a
    forwarder: on indirect networks (trees, GHC) a detour could enter a
    leaf endpoint and leave again, a walk no real machine could realise.
    Endpoints only forward where the architecture makes them routers —
    everywhere on a switchless torus, and inside the source/destination
    subtorus of a hybrid.
    """

    def forced_detours(self, family, cables, seed):
        """(pair, walk) for every pair whose deterministic route was cut."""
        topo = built(family)
        deg = DegradedTopology(topo, fault_set(family, cables, seed))
        out = []
        for src in range(topo.num_endpoints):
            for dst in range(topo.num_endpoints):
                if src == dst:
                    continue
                base_walk = topo.vertex_path(src, dst)
                try:
                    walk = deg.vertex_path(src, dst)
                except DegradedNetworkError:
                    continue
                if walk != base_walk:
                    out.append(((src, dst), walk))
        return out

    @pytest.mark.parametrize("family", ("fattree", "thintree"))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_indirect_networks_never_relay_through_endpoints(self, family,
                                                             seed):
        topo = built(family)
        detours = self.forced_detours(family, cables=8, seed=seed)
        assert detours, "fault sample cut no deterministic route"
        for (src, dst), walk in detours:
            interior = walk[1:-1]
            assert all(v >= topo.num_endpoints for v in interior), \
                f"detour {src}->{dst} relays through an endpoint: {walk}"

    def test_ghc_cut_pairs_disconnect_instead_of_relaying(self):
        # a GHC endpoint's dimension port is its only path into that
        # dimension: once the cable dies the pair is genuinely cut.  The
        # buggy detour instead "fixed" it by bouncing through a peer
        # endpoint — a walk no real machine could realise.
        topo = built("ghc")
        deg = DegradedTopology(topo, fault_set("ghc", 8, 0))
        cut = 0
        for src in range(topo.num_endpoints):
            for dst in range(topo.num_endpoints):
                if src == dst:
                    continue
                survives = deg._walk_survives(topo.vertex_path(src, dst))
                if survives:
                    assert deg.vertex_path(src, dst) == \
                        topo.vertex_path(src, dst)
                else:
                    cut += 1
                    with pytest.raises(DegradedNetworkError):
                        deg.vertex_path(src, dst)
        assert cut, "fault sample cut no deterministic route"

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_hybrid_transit_endpoints_stay_in_the_end_subtori(self, seed):
        topo = built("nesttree")
        detours = self.forced_detours("nesttree", cables=8, seed=seed)
        assert detours, "fault sample cut no deterministic route"
        for (src, dst), walk in detours:
            allowed = {topo.subtorus_of(src), topo.subtorus_of(dst)}
            for v in walk[1:-1]:
                if v < topo.num_endpoints:
                    assert topo.subtorus_of(v) in allowed, \
                        f"detour {src}->{dst} relays through a foreign " \
                        f"subtorus endpoint: {walk}"

    def test_torus_endpoints_still_forward(self):
        # switchless direct networks route *through* endpoints by design;
        # the transit restriction must not disconnect them
        topo = built("torus")
        deg = DegradedTopology(topo, fault_set("torus", 6, 3))
        for src in range(0, 64, 5):
            for dst in range(2, 64, 7):
                walk = deg.vertex_path(src, dst)
                assert walk[0] == src and walk[-1] == dst
