"""Equivalence regression: batched vs per-flow event loop.

The scaling work vectorised the event loop's completion handling — same-
instant completions retire through one ``remove_many``, released
successors admit through one ``add_many`` with batch-inherited rates,
and fault-boundary recovery reroutes in bulk.  The historical per-flow
walk is still reachable via ``REPRO_EVENT_BATCH=0`` (and is what the
adaptive policy always uses), and this suite pins the two paths to
bitwise-identical :class:`~repro.engine.results.SimulationResult`s:
3 workloads x 2 fidelities x 3 routing policies, healthy and transient.

These are regression tests for the *loop*, not the allocator — the
kernel backends have their own differential suite (``-m kernel_diff``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.topology import FaultTimeline
from repro.workloads import build as build_workload
from tests.difftest import assert_results_identical

_WORKLOADS = ("allreduce", "permutation", "unstructuredhr")
_POLICIES = ("deterministic", "ecmp", "adaptive")


def _run_both(monkeypatch, scenario):
    """Run ``scenario`` with batching on and off; assert identical."""
    monkeypatch.setenv("REPRO_EVENT_BATCH", "1")
    batched = scenario()
    monkeypatch.setenv("REPRO_EVENT_BATCH", "0")
    per_flow = scenario()
    assert_results_identical(batched, per_flow, "batched", "per-flow")
    return batched


class TestHealthyLoop:
    @pytest.mark.parametrize("workload", _WORKLOADS)
    @pytest.mark.parametrize("fidelity", ("exact", "approx"))
    @pytest.mark.parametrize("routing", _POLICIES)
    def test_batched_matches_per_flow(self, monkeypatch, small_nesttree,
                                      workload, fidelity, routing):
        flows = build_workload(workload, small_nesttree.num_endpoints,
                               seed=0).build()
        result = _run_both(
            monkeypatch,
            lambda: simulate(small_nesttree, flows, fidelity=fidelity,
                             routing=routing))
        assert result.transient is None
        assert np.isfinite(result.completion_times).all()

    def test_weighted_workload(self, monkeypatch, small_fattree):
        flows = build_workload("mapreduce", small_fattree.num_endpoints,
                               seed=3).build()
        for fidelity in ("exact", "approx"):
            _run_both(monkeypatch,
                      lambda: simulate(small_fattree, flows,
                                       fidelity=fidelity))

    def test_oversubscribed_placement_zero_hop(self, monkeypatch,
                                               small_torus):
        """Co-located tasks exercise the zero-hop sequential fallback."""
        tasks = small_torus.num_endpoints * 2
        flows = build_workload("allreduce", tasks, seed=0).build()
        placement = np.arange(tasks) % small_torus.num_endpoints
        for fidelity in ("exact", "approx"):
            _run_both(monkeypatch,
                      lambda: simulate(small_torus, flows,
                                       placement=placement,
                                       fidelity=fidelity))


class TestTransientLoop:
    @pytest.mark.parametrize("fidelity", ("exact", "approx"))
    @pytest.mark.parametrize("routing", _POLICIES)
    def test_fault_boundaries_match(self, monkeypatch, small_nesttree,
                                    fidelity, routing):
        flows = build_workload("allreduce", small_nesttree.num_endpoints,
                               seed=0).build()
        base = simulate(small_nesttree, flows)
        tl = FaultTimeline.sample(small_nesttree, cables=4, seed=3,
                                  horizon=base.makespan * 0.8,
                                  mttr=base.makespan * 0.25)
        result = _run_both(
            monkeypatch,
            lambda: simulate(small_nesttree, flows, fidelity=fidelity,
                             routing=routing, fault_timeline=tl))
        assert result.transient is not None
        assert result.transient["fault_events"] > 0

    def test_parked_flow_recovery_matches(self, monkeypatch,
                                          small_nesttree):
        """A timeline that disconnects pairs parks and later recovers."""
        flows = build_workload("unstructuredhr",
                               small_nesttree.num_endpoints, seed=1).build()
        base = simulate(small_nesttree, flows)
        # many cables out at once maximises the chance of parked pairs;
        # sample() keeps the network's fate deterministic per seed
        tl = FaultTimeline.sample(small_nesttree, cables=8, seed=11,
                                  horizon=base.makespan * 0.6,
                                  mttr=base.makespan * 0.2)
        for fidelity in ("exact", "approx"):
            _run_both(monkeypatch,
                      lambda: simulate(small_nesttree, flows,
                                       fidelity=fidelity,
                                       fault_timeline=tl))
