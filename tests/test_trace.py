"""Tests for the timeline trace export."""

from __future__ import annotations

import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.engine.trace import CSV_HEADER, per_task_stats, timeline_rows, to_csv
from repro.errors import SimulationError
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP


@pytest.fixture(scope="module")
def run():
    topo = TorusTopology((4,), wraparound=False)
    b = FlowBuilder(4)
    first = b.add_flow(0, 1, CAP)
    b.add_flow(1, 2, CAP / 2, after=[first])
    b.add_flow(3, 0, CAP / 4)
    flows = b.build()
    return simulate(topo, flows), flows


class TestTimeline:
    def test_rows_sorted_by_completion(self, run):
        result, flows = run
        rows = timeline_rows(result, flows)
        ends = [r[5] for r in rows]
        assert ends == sorted(ends)
        assert len(rows) == flows.num_flows

    def test_row_contents(self, run):
        result, flows = run
        rows = {r[0]: r for r in timeline_rows(result, flows)}
        fid, src, dst, bits, start, end, duration, rate = rows[0]
        assert (src, dst) == (0, 1)
        assert bits == CAP
        assert duration == pytest.approx(1.0)
        assert rate == pytest.approx(CAP)

    def test_csv_schema(self, run):
        result, flows = run
        text = to_csv(result, flows)
        lines = text.strip().split("\n")
        assert lines[0] == CSV_HEADER
        assert len(lines) == 1 + flows.num_flows
        assert all(len(l.split(",")) == 8 for l in lines[1:])

    def test_mismatched_inputs_rejected(self, run):
        result, _ = run
        other = FlowBuilder(2)
        other.add_flow(0, 1, 1.0)
        with pytest.raises(SimulationError):
            timeline_rows(result, other.build())


class TestPerTaskStats:
    def test_aggregates(self, run):
        result, flows = run
        stats = per_task_stats(result, flows)
        assert set(stats) == {0, 1, 3}
        assert stats[0]["flows"] == 1
        assert stats[0]["bits"] == CAP
        assert stats[1]["first_start"] == pytest.approx(1.0)  # released
        assert stats[1]["busy_span"] == pytest.approx(0.5)

    def test_busy_span_covers_chain(self, run):
        result, flows = run
        stats = per_task_stats(result, flows)
        for entry in stats.values():
            assert entry["busy_span"] >= 0
            assert entry["last_end"] <= result.makespan + 1e-12


class TestZeroDurationFlows:
    @pytest.fixture(scope="class")
    def zero_hop_run(self):
        import numpy as np

        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(3)
        z = b.add_flow(0, 1, CAP)                 # co-located -> zero-hop
        b.add_flow(1, 2, CAP, after=[z])          # real flow
        flows = b.build()
        placement = np.array([0, 0, 3])
        return simulate(topo, flows, placement=placement), flows

    def test_rate_is_nan_not_inf(self, zero_hop_run):
        import math

        result, flows = zero_hop_run
        rows = {r[0]: r for r in timeline_rows(result, flows)}
        assert rows[0][6] == 0.0          # duration
        assert math.isnan(rows[0][7])     # rate: nan, so stats can skip it
        assert math.isfinite(rows[1][7])  # the real flow keeps its rate

    def test_csv_emits_empty_field(self, zero_hop_run):
        result, flows = zero_hop_run
        lines = to_csv(result, flows).strip().split("\n")
        zero_row = next(l for l in lines[1:] if l.startswith("0,"))
        assert zero_row.endswith(",")     # empty rate field, not inf/nan
        assert "inf" not in zero_row
        # schema unchanged: still 8 comma-separated fields
        assert all(len(l.split(",")) == 8 for l in lines[1:])
