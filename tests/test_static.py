"""Tests for the static link-load analysis mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import analyze, simulate
from repro.engine.flows import FlowBuilder
from repro.topology import NestTree, TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import UnstructuredApp


class TestLoads:
    def test_load_conservation(self):
        """Total link load equals sum over flows of size * route length."""
        topo = TorusTopology((4, 2))
        b = FlowBuilder(8)
        expected = 0.0
        rng = np.random.default_rng(3)
        for _ in range(30):
            s, d = int(rng.integers(8)), int(rng.integers(8))
            size = float(rng.uniform(1, 5))
            b.add_flow(s, d, size)
            if s != d:  # zero-hop flows load no link
                expected += size * len(topo.route(s, d))
        report = analyze(topo, b.build())
        assert report.loads.sum() == pytest.approx(expected)

    def test_single_flow_unit_load(self):
        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(4)
        b.add_flow(0, 2, 5.0)
        report = analyze(topo, b.build())
        route = topo.route(0, 2)
        assert np.allclose(report.loads[route], 5.0)
        others = np.setdiff1d(np.arange(len(report.loads)), route)
        assert np.allclose(report.loads[others], 0.0)

    def test_bottleneck_is_max_drain_time(self):
        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(4)
        for _ in range(3):
            b.add_flow(0, 1, CAP)
        report = analyze(topo, b.build())
        assert report.bottleneck_time == pytest.approx(3.0)

    def test_bottleneck_lower_bounds_dynamic_makespan(self):
        topo = NestTree(64, 2, 2)
        flows = UnstructuredApp(64, messages_per_task=4, seed=5).build()
        static = analyze(topo, flows)
        dynamic = simulate(topo, flows)
        assert static.bottleneck_time <= dynamic.makespan * (1 + 1e-9)


class TestTierBreakdown:
    def test_flat_topology_tiers(self):
        topo = TorusTopology((4, 2))
        b = FlowBuilder(8)
        b.add_flow(0, 5, 4.0)
        report = analyze(topo, b.build())
        assert set(report.tier_loads) == {"nic", "network"}
        assert report.tier_loads["nic"] == pytest.approx(8.0)  # inj + cons

    def test_nested_topology_tiers(self):
        topo = NestTree(64, 2, 2)
        flows = UnstructuredApp(64, messages_per_task=2, seed=1).build()
        report = analyze(topo, flows)
        assert set(report.tier_loads) == {
            "nic", "lower_torus", "uplinks", "upper_fabric"}
        assert sum(report.tier_loads.values()) == \
            pytest.approx(report.loads.sum())
        # with u=2 every inter-subtorus flow crosses uplinks
        assert report.tier_loads["uplinks"] > 0
        assert report.tier_loads["upper_fabric"] > 0

    def test_intra_only_traffic_never_uses_fabric(self):
        topo = NestTree(64, 2, 2)
        b = FlowBuilder(64)
        for base in range(0, 64, 8):
            b.add_flow(base, base + 7, 2.0)  # same subtorus
        report = analyze(topo, b.build())
        assert report.tier_loads["upper_fabric"] == 0.0
        assert report.tier_loads["uplinks"] == 0.0
        assert report.tier_loads["lower_torus"] > 0.0


class TestReportHelpers:
    def test_percentiles_and_summary(self):
        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        report = analyze(topo, b.build())
        pct = report.utilisation_percentiles()
        assert pct[100] == pytest.approx(1.0)
        assert pct[50] <= pct[100]
        assert "bottleneck" in report.summary()
        assert report.max_load >= report.mean_load


class TestRouteDedupe:
    """analyze() must route each distinct (src, dst) pair exactly once and
    share the simulator's route cache."""

    def test_duplicate_pairs_routed_once(self, monkeypatch):
        topo = TorusTopology((4, 2))
        calls: list[tuple[int, int]] = []
        orig = TorusTopology.route

        def counting_route(self, s, d):
            calls.append((s, d))
            return orig(self, s, d)

        monkeypatch.setattr(TorusTopology, "route", counting_route)
        b = FlowBuilder(8)
        for _ in range(10):
            b.add_flow(0, 5, 2.0)   # same pair, ten flows
        b.add_flow(1, 6, 3.0)
        analyze(topo, b.build())
        assert sorted(set(calls)) == sorted(calls)  # no pair routed twice
        assert set(calls) == {(0, 5), (1, 6)}

    def test_dedupe_preserves_loads(self):
        topo = TorusTopology((4, 2))
        b = FlowBuilder(8)
        rng = np.random.default_rng(11)
        for _ in range(40):
            s, d = int(rng.integers(8)), int(rng.integers(8))
            b.add_flow(s, d, float(rng.uniform(1, 5)))
        flows = b.build()
        merged = analyze(topo, flows)
        # one flow at a time cannot benefit from deduplication
        loads = np.zeros_like(merged.loads)
        for i in range(flows.num_flows):
            one = FlowBuilder(8)
            one.add_flow(int(flows.src[i]), int(flows.dst[i]),
                         float(flows.size[i]))
            loads += analyze(topo, one.build()).loads
        np.testing.assert_allclose(merged.loads, loads, rtol=1e-12)

    def test_shares_simulator_route_cache(self, monkeypatch):
        topo = TorusTopology((4, 2))
        b = FlowBuilder(8)
        b.add_flow(0, 5, 2.0)
        b.add_flow(1, 6, 3.0)
        flows = b.build()
        cache: dict = {}
        simulate(topo, flows, route_cache=cache)
        assert (0, 5) in cache and (1, 6) in cache

        def exploding_route(self, s, d):  # cache must fully cover analyze
            raise AssertionError(f"re-routed cached pair ({s}, {d})")

        monkeypatch.setattr(TorusTopology, "route", exploding_route)
        report = analyze(topo, flows, route_cache=cache)
        assert report.loads.sum() > 0
