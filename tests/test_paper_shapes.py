"""Integration tests: the paper's headline claims on a small system.

These are end-to-end runs of the full pipeline (topology -> workload ->
simulation -> normalisation) at 512 endpoints, asserting the *orderings*
the paper reports in Section 5.2.  They are the strongest correctness
signal in the suite: every layer has to cooperate for these to hold.
"""

from __future__ import annotations

import pytest

from repro import build_topology, build_workload, simulate
from repro.mapping.placement import spread_placement

N = 512


@pytest.fixture(scope="module")
def topos():
    return {
        "torus": build_topology("torus", N),
        "fattree": build_topology("fattree", N),
        "nesttree_dense": build_topology("nesttree", N, t=2, u=1),
        "nesttree_sparse": build_topology("nesttree", N, t=4, u=8),
        "nestghc_dense": build_topology("nestghc", N, t=2, u=1),
    }


def run_all(topos, workload_name, tasks=N, **params):
    flows = build_workload(workload_name, tasks, **params).build()
    placement = None if tasks == N else spread_placement(tasks, N)
    return {label: simulate(t, flows, placement=placement,
                            fidelity="approx").makespan
            for label, t in topos.items()}


class TestHeavyWorkloadClaims:
    def test_torus_gap_grows_with_scale(self):
        """'execution time is up to one order of magnitude slower' (§5.2).

        The torus penalty is a *scaling* phenomenon: average distance grows
        with the machine while the fattree's stays ~6, so the gap widens
        from negligible at 512 endpoints towards the paper's order of
        magnitude at 131,072.  We check the mechanism at two sizes.
        """
        ratios = {}
        for n in (512, 2048):
            flows = build_workload("unstructuredapp", n, seed=0).build()
            fat = simulate(build_topology("fattree", n), flows,
                           fidelity="approx").makespan
            tor = simulate(build_topology("torus", n), flows,
                           fidelity="approx").makespan
            ratios[n] = tor / fat
        assert ratios[512] >= 1.0
        assert ratios[2048] > 1.5
        assert ratios[2048] > ratios[512]

    def test_dense_hybrid_competitive_with_fattree(self, topos):
        times = run_all(topos, "unstructuredapp", seed=0)
        assert times["nesttree_dense"] <= 1.25 * times["fattree"]

    def test_sparse_uplinks_cripple_heavy_traffic(self, topos):
        """'reducing density can have a severe effect' (§5.2)."""
        times = run_all(topos, "unstructuredapp", seed=0)
        assert times["nesttree_sparse"] > 1.5 * times["nesttree_dense"]

    def test_nbodies_torus_pathology(self, topos):
        """Under a fragmented allocation (the explorer's policy for the
        ring workload) the torus pays its long paths."""
        from repro.mapping.placement import random_placement

        flows = build_workload("nbodies", 128).build()
        placement = random_placement(128, N, seed=0)
        times = {label: simulate(t, flows, placement=placement,
                                 fidelity="approx").makespan
                 for label, t in topos.items()}
        assert times["torus"] > 1.15 * times["fattree"]

    def test_ghc_and_tree_uppers_are_close(self, topos):
        """'little difference between the performance of a fattree and the
        generalized hypercube' (§5.2) — with one caveat: XOR-structured
        collectives concentrate all of a switch's co-located ports onto a
        single inter-switch GHC link, which the scaled-down fabric (lower
        radices than the paper's 8/8/8/16) amplifies.  We bound the gap
        rather than demand parity."""
        times = run_all(topos, "allreduce")
        ratio = times["nestghc_dense"] / times["nesttree_dense"]
        assert 0.5 < ratio < 4.0
        # on unstructured traffic the two upper tiers are genuinely close
        times = run_all(topos, "unstructuredapp", seed=0)
        ratio = times["nestghc_dense"] / times["nesttree_dense"]
        assert 0.6 < ratio < 1.7


class TestLightWorkloadClaims:
    def test_reduce_identical_everywhere(self, topos):
        times = run_all(topos, "reduce")
        values = list(times.values())
        assert max(values) / min(values) < 1.02

    def test_sweep3d_torus_wins(self, topos):
        """'the best performing topology is the torus because the topology
        matches ... the grid-like nature' (§5.2)."""
        times = run_all(topos, "sweep3d")
        assert times["torus"] <= min(times.values()) * 1.001

    def test_flood_torus_wins(self, topos):
        times = run_all(topos, "flood")
        assert times["torus"] <= min(times.values()) * 1.001

    def test_nearneighbors_inverts_back(self, topos):
        """Same spatial pattern as Sweep3D, but all nodes send at once, so
        the torus loses again (§5.2)."""
        times = run_all(topos, "nearneighbors")
        assert times["torus"] > times["fattree"]


class TestCrossFidelityOrdering:
    def test_orderings_stable_across_fidelity(self, topos):
        flows = build_workload("unstructuredhr", N, seed=1).build()
        subset = {k: topos[k] for k in ("torus", "fattree", "nesttree_dense")}
        exact = {k: simulate(t, flows, fidelity="exact").makespan
                 for k, t in subset.items()}
        approx = {k: simulate(t, flows, fidelity="approx").makespan
                  for k, t in subset.items()}
        assert sorted(exact, key=exact.get) == sorted(approx, key=approx.get)
