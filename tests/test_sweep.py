"""Tests for the parallel, resumable sweep runner."""

from __future__ import annotations

import json

import pytest

from repro.core import DesignSpaceExplorer
from repro.errors import ConfigError, SimulationError
from repro.sweep import SweepCheckpoint, run_sweep
from repro.sweep.runner import _group_cells

ENDPOINTS = 64
WORKLOADS = ["reduce", "allreduce"]


def make_explorer(**kwargs) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(ENDPOINTS, quadratic_tasks=16, seed=0,
                               **kwargs)


def table_fingerprint(table):
    """Everything except wall-clock, which legitimately varies."""
    return [(r.workload, r.topology, r.family, r.t, r.u, r.makespan,
             r.num_flows, r.events, r.reallocations)
            for r in table.records]


@pytest.fixture(scope="module")
def serial_table():
    return make_explorer().run(WORKLOADS)


class TestParallelMatchesSerial:
    def test_jobs4_identical_records(self, serial_table):
        parallel = make_explorer().run(WORKLOADS, jobs=4)
        assert table_fingerprint(parallel) == table_fingerprint(serial_table)

    def test_more_jobs_than_topologies(self, serial_table):
        # workers beyond the topology-group count must not break anything
        parallel = make_explorer().run(["reduce"], jobs=64)
        serial = [f for f in table_fingerprint(serial_table)
                  if f[0] == "reduce"]
        assert table_fingerprint(parallel) == serial


class TestCheckpointResume:
    def test_checkpoint_records_every_cell(self, tmp_path, serial_table):
        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(WORKLOADS, jobs=2, checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["magic"] == "repro-sweep-v1"
        assert header["meta"]["endpoints"] == ENDPOINTS
        assert len(lines) - 1 == len(serial_table.records)

    def test_resume_skips_checkpointed_cells(self, tmp_path, serial_table,
                                             monkeypatch):
        import repro.sweep.runner as runner_mod

        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(WORKLOADS, checkpoint=str(ck))
        total = len(serial_table.records)

        # simulate a mid-sweep kill: drop the last 5 cells, re-adding the
        # first of them as a line torn mid-write
        lines = ck.read_text().splitlines()
        keep = len(lines) - 5
        ck.write_text("\n".join(lines[:keep]) + "\n" + lines[keep][:30])

        recomputed = []
        real_run_cell = runner_mod._run_cell

        def counting_run_cell(plan, cell, *args, **kwargs):
            recomputed.append(cell.key())
            return real_run_cell(plan, cell, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_cell", counting_run_cell)
        resumed = make_explorer().run(WORKLOADS, checkpoint=str(ck),
                                      resume=True)
        # exactly the 4 dropped cells plus the torn one, nothing else
        assert len(recomputed) == 5
        assert table_fingerprint(resumed) == table_fingerprint(serial_table)

    def test_resume_with_all_cells_done_recomputes_nothing(
            self, tmp_path, serial_table, monkeypatch):
        import repro.sweep.runner as runner_mod

        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(WORKLOADS, checkpoint=str(ck))
        monkeypatch.setattr(
            runner_mod, "_run_cell",
            lambda *a, **k: pytest.fail("cell recomputed on full resume"))
        resumed = make_explorer().run(WORKLOADS, checkpoint=str(ck),
                                      resume=True)
        assert table_fingerprint(resumed) == table_fingerprint(serial_table)

    def test_without_resume_checkpoint_is_replaced(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(["reduce"], checkpoint=str(ck))
        first = ck.read_text()
        make_explorer().run(["reduce"], checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        assert len(lines) == len(first.splitlines())  # rewritten, not grown

    def test_meta_mismatch_rejected(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(["reduce"], checkpoint=str(ck))
        other = DesignSpaceExplorer(128, quadratic_tasks=16, seed=0)
        with pytest.raises(ConfigError, match="different sweep"):
            other.run(["reduce"], checkpoint=str(ck), resume=True)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        ck = tmp_path / "bogus.jsonl"
        ck.write_text("not json at all\n")
        store = SweepCheckpoint(ck, {"endpoints": 1})
        with pytest.raises(ConfigError, match="bad header"):
            store.load()

    def test_missing_file_loads_empty(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "absent.jsonl", {"e": 1})
        assert store.load() == {}


class TestRunnerGuards:
    def test_resume_requires_checkpoint(self):
        plan = make_explorer().plan(["reduce"])
        with pytest.raises(SimulationError, match="checkpoint"):
            run_sweep(plan, resume=True)

    def test_jobs_must_be_positive(self):
        plan = make_explorer().plan(["reduce"])
        with pytest.raises(SimulationError, match="jobs"):
            run_sweep(plan, jobs=0)


class TestGroupCells:
    def test_groups_cover_all_cells_without_splitting(self):
        plan = make_explorer().plan(WORKLOADS)
        groups = _group_cells(list(plan.cells))
        seen = []
        owners: dict[str, int] = {}
        for i, cells in enumerate(groups):
            labels = {c.topology.label() for c in cells}
            assert len(labels) == 1  # topology groups are never split
            label = labels.pop()
            assert label not in owners  # one group per topology
            owners[label] = i
            seen.extend(c.key() for c in cells)
        assert sorted(seen) == sorted(c.key() for c in plan.cells)

    def test_largest_group_first(self):
        plan = make_explorer().plan(WORKLOADS)
        sizes = [len(g) for g in _group_cells(list(plan.cells))]
        assert sizes == sorted(sizes, reverse=True)


class TestResultsOut:
    """results_out hands back the raw checkpoint-shaped documents."""

    def test_collects_raw_docs_for_every_cell(self):
        from repro.sweep.checkpoint import RESULT_FIELDS

        plan = make_explorer().plan(["reduce"])
        docs: dict[str, dict] = {}
        records = run_sweep(plan, results_out=docs)
        assert set(docs) == {c.key() for c in plan.cells}
        for cell, rec in zip(plan.cells, records):
            doc = docs[cell.key()]
            assert RESULT_FIELDS <= doc.keys()
            assert doc["makespan"] == rec.makespan

    def test_includes_resumed_cells(self, tmp_path):
        plan = make_explorer().plan(["reduce"])
        ck = tmp_path / "ck.jsonl"
        run_sweep(plan, checkpoint=str(ck))
        docs: dict[str, dict] = {}
        run_sweep(plan, checkpoint=str(ck), resume=True, results_out=docs)
        # nothing re-simulated, yet every cell's document is delivered
        assert set(docs) == {c.key() for c in plan.cells}


class TestMetricsAppend:
    """metrics_append=True accumulates across runs; default regenerates."""

    def test_append_accumulates_across_runs(self, tmp_path):
        from repro.obs.stream import validate_metrics_file

        path = tmp_path / "metrics.jsonl"
        p1 = make_explorer().plan(["reduce"])
        p2 = make_explorer().plan(["allreduce"])
        run_sweep(p1, metrics_path=str(path), metrics_append=True)
        n1 = validate_metrics_file(path)
        assert n1 == len(p1.cells)
        run_sweep(p2, metrics_path=str(path), metrics_append=True)
        assert validate_metrics_file(path) == n1 + len(p2.cells)

    def test_default_regenerates(self, tmp_path):
        from repro.obs.stream import validate_metrics_file

        path = tmp_path / "metrics.jsonl"
        plan = make_explorer().plan(["reduce"])
        run_sweep(plan, metrics_path=str(path))
        run_sweep(plan, metrics_path=str(path))
        assert validate_metrics_file(path) == len(plan.cells)
