"""Tests for the cost/power model — must reproduce the paper's Table 2."""

from __future__ import annotations

import pytest

from repro.core.paperdata import (FATTREE_COST_PCT, FATTREE_POWER_PCT,
                                  FATTREE_SWITCHES, PAPER_ENDPOINTS, TABLE2)
from repro.errors import ConfigError
from repro.topology.cost import (CostModel, fattree_switch_count,
                                 ghc_switch_count, overhead_row)


class TestCostModel:
    def test_defaults_recover_paper_reference(self):
        # 9216 switches -> +5.27% cost, +1.76% power (Table 2 footnote)
        model = CostModel()
        assert model.cost_increase(FATTREE_SWITCHES, PAPER_ENDPOINTS) * 100 \
            == pytest.approx(FATTREE_COST_PCT, abs=0.005)
        assert model.power_increase(FATTREE_SWITCHES, PAPER_ENDPOINTS) * 100 \
            == pytest.approx(FATTREE_POWER_PCT, abs=0.005)

    @pytest.mark.parametrize("tu,row", sorted(TABLE2.items()))
    def test_every_nesttree_row(self, tu, row):
        _t, u = tu
        switches_tree, cost_tree, power_tree = row[1], row[3], row[5]
        model = CostModel()
        assert fattree_switch_count(PAPER_ENDPOINTS // u) == switches_tree
        assert model.cost_increase(switches_tree, PAPER_ENDPOINTS) * 100 \
            == pytest.approx(cost_tree, abs=0.005)
        assert model.power_increase(switches_tree, PAPER_ENDPOINTS) * 100 \
            == pytest.approx(power_tree, abs=0.005)

    def test_ghc_u1_matches_paper(self):
        # the only GHC row the paper pins down unambiguously
        assert ghc_switch_count(PAPER_ENDPOINTS) == TABLE2[(2, 1)][0] == 8192

    def test_invalid_coefficients(self):
        with pytest.raises(ConfigError):
            CostModel(switch_cost=-1.0)

    def test_invalid_endpoints(self):
        with pytest.raises(ConfigError):
            CostModel().cost_increase(10, 0)


class TestOverheadRow:
    def test_values(self):
        row = overhead_row("x", 100, 1000, CostModel(0.5, 0.1))
        assert row.cost_increase == pytest.approx(0.05)
        assert row.power_increase == pytest.approx(0.01)

    def test_formatted_contains_percentages(self):
        row = overhead_row("cfg", 100, 1000)
        text = row.formatted()
        assert "cfg" in text and "%" in text
