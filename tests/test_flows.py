"""Tests for FlowBuilder / FlowSet (dependency DAG machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.flows import FlowBuilder
from repro.errors import WorkloadError


def diamond() -> FlowBuilder:
    """a -> {b, c} -> d"""
    b = FlowBuilder(4)
    f_a = b.add_flow(0, 1, 1.0)
    f_b = b.add_flow(1, 2, 1.0, after=[f_a])
    f_c = b.add_flow(1, 3, 1.0, after=[f_a])
    b.add_flow(2, 3, 1.0, after=[f_b, f_c])
    return b


class TestBuilder:
    def test_ids_sequential(self):
        b = FlowBuilder(2)
        assert b.add_flow(0, 1, 1.0) == 0
        assert b.add_flow(1, 0, 1.0) == 1
        assert b.num_flows == 2

    def test_validates_tasks(self):
        b = FlowBuilder(2)
        with pytest.raises(WorkloadError):
            b.add_flow(0, 2, 1.0)
        with pytest.raises(WorkloadError):
            b.add_flow(-1, 0, 1.0)

    def test_validates_size(self):
        b = FlowBuilder(2)
        with pytest.raises(WorkloadError):
            b.add_flow(0, 1, 0.0)

    def test_validates_dependency_ids(self):
        b = FlowBuilder(2)
        b.add_flow(0, 1, 1.0)
        with pytest.raises(WorkloadError):
            b.add_dependency(0, 5)
        with pytest.raises(WorkloadError):
            b.add_dependency(0, 0)

    def test_needs_a_task(self):
        with pytest.raises(WorkloadError):
            FlowBuilder(0)

    def test_chain_helper(self):
        b = FlowBuilder(2)
        ids = [b.add_flow(0, 1, 1.0) for _ in range(4)]
        b.chain(ids)
        fs = b.build()
        assert fs.indegree.tolist() == [0, 1, 1, 1]

    def test_barrier_helper(self):
        b = FlowBuilder(2)
        pre = [b.add_flow(0, 1, 1.0) for _ in range(2)]
        post = [b.add_flow(1, 0, 1.0) for _ in range(3)]
        b.barrier(pre, post)
        fs = b.build()
        assert fs.num_dependencies == 6
        assert fs.indegree.tolist() == [0, 0, 2, 2, 2]


class TestFlowSet:
    def test_diamond_structure(self):
        fs = diamond().build()
        assert fs.num_flows == 4
        assert fs.roots().tolist() == [0]
        assert sorted(fs.successors(0).tolist()) == [1, 2]
        assert fs.successors(3).tolist() == []
        assert fs.indegree.tolist() == [0, 1, 1, 2]

    def test_total_bits(self):
        fs = diamond().build()
        assert fs.total_bits == 4.0

    def test_topological_order(self):
        fs = diamond().build()
        order = fs.topological_order().tolist()
        pos = {f: i for i, f in enumerate(order)}
        assert pos[0] < pos[1] and pos[0] < pos[2]
        assert pos[1] < pos[3] and pos[2] < pos[3]

    def test_cycle_detection(self):
        b = FlowBuilder(2)
        x = b.add_flow(0, 1, 1.0)
        y = b.add_flow(1, 0, 1.0, after=[x])
        b.add_dependency(y, x)
        with pytest.raises(WorkloadError):
            b.build()

    def test_cycle_detection_can_be_skipped(self):
        b = FlowBuilder(2)
        x = b.add_flow(0, 1, 1.0)
        y = b.add_flow(1, 0, 1.0, after=[x])
        b.add_dependency(y, x)
        fs = b.build(validate=False)  # caller's responsibility now
        with pytest.raises(WorkloadError):
            fs.topological_order()

    def test_dependency_depth(self):
        fs = diamond().build()
        assert fs.dependency_depth() == 3

    def test_dependency_depth_no_deps(self):
        b = FlowBuilder(2)
        for _ in range(5):
            b.add_flow(0, 1, 1.0)
        assert b.build().dependency_depth() == 1

    def test_empty(self):
        fs = FlowBuilder(1).build()
        assert fs.num_flows == 0
        assert fs.dependency_depth() == 0


class TestProperties:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_dags_roundtrip(self, data):
        """CSR successors/indegree agree with the edge list on random DAGs."""
        n = data.draw(st.integers(1, 40))
        b = FlowBuilder(4)
        for _ in range(n):
            b.add_flow(data.draw(st.integers(0, 3)),
                       data.draw(st.integers(0, 3)),
                       data.draw(st.floats(0.1, 10.0)))
        edges = set()
        for _ in range(data.draw(st.integers(0, 60))):
            succ = data.draw(st.integers(1, n - 1)) if n > 1 else None
            if succ is None:
                break
            pred = data.draw(st.integers(0, succ - 1))  # forward edges: acyclic
            if (pred, succ) not in edges:
                edges.add((pred, succ))
                b.add_dependency(pred, succ)
        fs = b.build()
        assert fs.num_dependencies == len(edges)
        rebuilt = {(p, s) for p in range(n) for s in fs.successors(p).tolist()}
        assert rebuilt == edges
        indeg = np.zeros(n, dtype=int)
        for _, s in edges:
            indeg[s] += 1
        assert fs.indegree.tolist() == indeg.tolist()
        fs.topological_order()  # must not raise
