"""Tests for the unstructured workloads: App, Mgnt, HR, Bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import KiB, MiB
from repro.workloads import (Bisection, UnstructuredApp, UnstructuredHR,
                             UnstructuredMgnt)
from repro.workloads.base import random_matching


class TestUnstructuredApp:
    def test_flow_count(self):
        fs = UnstructuredApp(16, messages_per_task=4).build()
        assert fs.num_flows == 64
        assert fs.num_dependencies == 0  # all independent (heavy)

    def test_no_self_messages(self):
        fs = UnstructuredApp(16, seed=11).build()
        assert (fs.src != fs.dst).all()

    def test_fixed_message_size(self):
        fs = UnstructuredApp(16, message_size=7.0).build()
        assert (fs.size == 7.0).all()

    def test_deterministic_by_seed(self):
        a = UnstructuredApp(16, seed=3).build()
        b = UnstructuredApp(16, seed=3).build()
        assert (a.dst == b.dst).all()
        c = UnstructuredApp(16, seed=4).build()
        assert (a.dst != c.dst).any()

    def test_invalid_messages(self):
        with pytest.raises(ValueError):
            UnstructuredApp(16, messages_per_task=0)


class TestUnstructuredMgnt:
    def test_per_task_chains(self):
        wl = UnstructuredMgnt(8, messages_per_task=5)
        fs = wl.build()
        assert fs.num_flows == 40
        # one root per task, all other flows wait on exactly one predecessor
        assert (fs.indegree == 0).sum() == 8
        assert fs.dependency_depth() == 5

    def test_size_mixture_bands(self):
        wl = UnstructuredMgnt(64, messages_per_task=32, seed=0)
        sizes = wl.build().size
        assert sizes.min() >= 2 * KiB * 0.99
        assert sizes.max() <= 16 * MiB * 1.01
        mice = (sizes <= 32 * KiB).mean()
        assert 0.7 <= mice <= 0.9  # ~80% mice (Kandula et al. shape)

    def test_elephants_exist(self):
        sizes = UnstructuredMgnt(64, messages_per_task=32, seed=1).build().size
        assert (sizes > 1 * MiB).any()

    def test_deterministic(self):
        a = UnstructuredMgnt(16, seed=9).build()
        b = UnstructuredMgnt(16, seed=9).build()
        assert np.allclose(a.size, b.size)


class TestUnstructuredHR:
    def test_hot_tasks_receive_most_traffic(self):
        wl = UnstructuredHR(64, messages_per_task=16, seed=2,
                            hot_fraction=0.125, hot_probability=0.75)
        fs = wl.build()
        hot = set(wl.hot_tasks().tolist())
        assert len(hot) == 8
        hot_share = np.isin(fs.dst, list(hot)).mean()
        # 75% directed traffic + ~12.5% of the uniform remainder
        assert 0.6 <= hot_share <= 0.9

    def test_no_self_messages(self):
        fs = UnstructuredHR(32, seed=5).build()
        assert (fs.src != fs.dst).all()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UnstructuredHR(16, hot_fraction=0.0)
        with pytest.raises(ValueError):
            UnstructuredHR(16, hot_probability=1.5)

    def test_uniform_limit(self):
        # hot_probability 0 degenerates to UnstructuredApp-like traffic
        wl = UnstructuredHR(64, messages_per_task=8, hot_probability=0.0,
                            seed=3)
        fs = wl.build()
        hot = set(wl.hot_tasks().tolist())
        assert np.isin(fs.dst, list(hot)).mean() < 0.3


class TestBisection:
    def test_flow_count(self):
        fs = Bisection(16, rounds=3).build()
        assert fs.num_flows == 48

    def test_each_round_is_a_matching(self):
        wl = Bisection(16, rounds=2, seed=7)
        fs = wl.build()
        for r in range(2):
            sl = slice(r * 16, (r + 1) * 16)
            pairs = {(int(s), int(d))
                     for s, d in zip(fs.src[sl], fs.dst[sl])}
            # symmetric: a->b implies b->a, and every task appears once
            assert all((d, s) in pairs for s, d in pairs)
            assert sorted(s for s, _ in pairs) == list(range(16))

    def test_rounds_chain_per_task(self):
        fs = Bisection(16, rounds=3).build()
        assert fs.dependency_depth() == 3

    def test_odd_task_count_rejected(self):
        with pytest.raises(ValueError):
            Bisection(15)

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            Bisection(16, rounds=0)


class TestRandomMatching:
    def test_is_involution_without_fixed_points(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            partner = random_matching(rng, 32)
            assert (partner[partner] == np.arange(32)).all()
            assert (partner != np.arange(32)).all()

    def test_odd_rejected(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            random_matching(np.random.default_rng(0), 7)
