"""Tests for the MapReduce workload."""

from __future__ import annotations

import pytest

from repro.engine import simulate
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import MapReduce


class TestStructure:
    def test_flow_count(self):
        t = 8
        fs = MapReduce(t).build()
        # scatter (t-1) + shuffle t(t-1) + gather (t-1)
        assert fs.num_flows == (t - 1) + t * (t - 1) + (t - 1)

    def test_three_phase_dependency_depth(self):
        fs = MapReduce(8).build()
        assert fs.dependency_depth() == 3

    def test_scatter_has_no_dependencies(self):
        fs = MapReduce(8).build()
        assert (fs.indegree[:7] == 0).all()

    def test_gather_waits_for_all_fragments(self):
        t = 8
        fs = MapReduce(t).build()
        # the last t-1 flows are gathers; each waits for t-1 incoming
        assert (fs.indegree[-(t - 1):] == t - 1).all()

    def test_shuffle_fragment_size(self):
        fs = MapReduce(8, partition_size=8.0).build()
        # shuffle flows carry partition/t bits
        shuffle = fs.size[7:-7]
        assert (shuffle == 1.0).all()

    def test_root_validated(self):
        with pytest.raises(ValueError):
            MapReduce(8, root=9)


class TestBehaviour:
    def test_root_consumption_bounds_runtime(self):
        t = 8
        part = CAP / 10
        fs = MapReduce(t, partition_size=part).build()
        topo = TorusTopology((t,))
        r = simulate(topo, fs)
        # scatter: root injects (t-1) partitions; gather: root consumes the
        # same amount; both serialise at the root NIC
        lower = 2 * (t - 1) * part / CAP
        assert r.makespan >= lower

    def test_phases_are_ordered(self):
        t = 6
        fs = MapReduce(t, partition_size=CAP / 100).build()
        topo = TorusTopology((t,))
        times = simulate(topo, fs).completion_times
        scatter_end = times[:t - 1].max()
        gather_start = times[-(t - 1):].min()
        assert gather_start > scatter_end
