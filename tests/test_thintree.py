"""Tests for k:k'-ary n-trees (over-subscribed thin trees)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import simulate
from repro.errors import TopologyError
from repro.topology.fattree import FatTreeTopology
from repro.topology.thintree import ThinTreeFabric, ThinTreeTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import UnstructuredApp


class TestConstruction:
    def test_validation(self):
        with pytest.raises(TopologyError):
            ThinTreeFabric((4, 4), (8,))     # cannot widen
        with pytest.raises(TopologyError):
            ThinTreeFabric((4, 4), (2, 2))   # one up-arity too many
        with pytest.raises(TopologyError):
            ThinTreeFabric((4, 1), (2,))     # bad down arity

    def test_switch_count_thinner_than_fattree(self):
        fat = ThinTreeFabric((4, 4, 4), (4, 4))
        thin = ThinTreeFabric((4, 4, 4), (2, 2))
        assert thin.num_ports == fat.num_ports == 64
        assert thin.num_switches < fat.num_switches

    def test_switch_count_formula(self):
        # (4,4):(2,) -> level 1: 4 switches; level 2: 4/4 subtrees... 2
        fabric = ThinTreeFabric((4, 4), (2,))
        assert fabric.num_switches == 4 + 2

    def test_full_up_arities_match_fattree(self):
        thin = ThinTreeTopology((4, 4), (4,))
        fat = FatTreeTopology((4, 4))
        assert thin.num_switches == fat.num_switches
        assert thin.num_network_links == fat.num_network_links

    def test_oversubscription_ratio(self):
        assert ThinTreeFabric((4, 4), (2,)).oversubscription() == 2.0
        assert ThinTreeFabric((4, 4), (4,)).oversubscription() == 1.0

    def test_connected(self):
        topo = ThinTreeTopology((4, 4, 2), (2, 1))
        assert nx.is_connected(topo.to_networkx())


class TestRouting:
    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=100, deadline=None)
    def test_routes_are_valid_walks(self, src, dst):
        topo = ThinTreeTopology((4, 4, 2), (2, 2))
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=80, deadline=None)
    def test_full_tree_routes_match_fattree_lengths(self, src, dst):
        thin = ThinTreeTopology((4, 4), (4,))
        fat = FatTreeTopology((4, 4))
        assert thin.hops(src, dst) == fat.hops(src, dst)

    def test_diameter(self):
        topo = ThinTreeTopology((4, 4), (2,))
        brute = max(topo.hops(s, d)
                    for s in range(16) for d in range(16) if s != d)
        assert topo.routing_diameter() == brute == 4

    def test_thinning_reduces_path_diversity(self):
        # from one source, climb switches used across all destinations
        thin = ThinTreeTopology((4, 4), (1,))
        ups = {thin.vertex_path(0, dst)[2] for dst in range(4, 16)}
        assert len(ups) == 1  # single up-port: no d-mod-k spreading left
        fat = ThinTreeTopology((4, 4), (4,))
        ups = {fat.vertex_path(0, dst)[2] for dst in range(4, 16)}
        assert len(ups) == 4


class TestBehaviour:
    def test_oversubscription_slows_global_traffic(self):
        flows = UnstructuredApp(32, messages_per_task=8, seed=0).build()
        fat = ThinTreeTopology((4, 4, 2), (4, 4))
        thin = ThinTreeTopology((4, 4, 2), (1, 1))
        t_fat = simulate(fat, flows).makespan
        t_thin = simulate(thin, flows).makespan
        assert t_thin > 1.3 * t_fat

    def test_local_traffic_unaffected_by_thinning(self):
        from repro.engine.flows import FlowBuilder

        b = FlowBuilder(32)
        for base in range(0, 32, 4):
            b.add_flow(base, base + 1, CAP / 10)  # same leaf switch
        flows = b.build()
        fat = ThinTreeTopology((4, 4, 2), (4, 4))
        thin = ThinTreeTopology((4, 4, 2), (1, 1))
        assert simulate(fat, flows).makespan == \
            pytest.approx(simulate(thin, flows).makespan)
