"""Tests for the Dragonfly comparator topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.errors import TopologyError
from repro.topology.dragonfly import DragonflyTopology, plan_dragonfly
from repro.units import DEFAULT_LINK_CAPACITY as CAP


@pytest.fixture(scope="module")
def df():
    return DragonflyTopology(2, 4, 2, 9)  # canonical h=2 dragonfly, N=72


class TestPlanner:
    def test_known_sizes(self):
        assert plan_dragonfly(512) == (4, 8, 4, 16)
        assert plan_dragonfly(72) == (2, 4, 2, 9)

    def test_untileable(self):
        with pytest.raises(TopologyError):
            plan_dragonfly(7)


class TestConstruction:
    def test_counts(self, df):
        assert df.num_endpoints == 72
        assert df.num_switches == 36
        # links: intra 9 * C(4,2)=54 cables, global C(9,2)=36, access 72
        assert df.num_network_links == 2 * (54 + 36 + 72)

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            DragonflyTopology(2, 4, 2, 10)   # > a*h + 1 groups
        with pytest.raises(TopologyError):
            DragonflyTopology(2, 4, 2, 1)

    def test_connected(self, df):
        assert nx.is_connected(df.to_networkx())

    def test_global_port_budget_respected(self, df):
        g = df.to_networkx()
        for sw in range(72, 72 + 36):
            # degree = (a-1) local + <= h global + p access
            assert g.degree(sw) <= (df.a - 1) + df.h + df.p


class TestRouting:
    @given(st.integers(0, 71), st.integers(0, 71))
    @settings(max_examples=150, deadline=None)
    def test_routes_are_valid_walks(self, src, dst):
        topo = DragonflyTopology(2, 4, 2, 9)
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    def test_routing_is_minimal(self, df):
        g = df.to_networkx()
        lengths = nx.single_source_shortest_path_length(g, 0)
        for dst in range(1, 72):
            assert df.hops(0, dst) == lengths[dst]

    def test_diameter(self, df):
        brute = max(df.hops(s, d) for s in range(72) for d in range(72)
                    if s != d)
        assert df.routing_diameter() == brute == 5

    def test_one_global_hop(self, df):
        path = df.vertex_path(0, 71)
        groups = {df.group_of(v) if v < 72 else (v - 72) // df.a
                  for v in path}
        assert len(groups) == 2  # only source and destination groups


class TestPathologies:
    def test_adversarial_group_pair_saturates_one_cable(self):
        """The paper: dragonflies have 'many pathological scenarios ...
        primarily with unbalanced loads'.  All of group 0 sending to group
        1 squeezes through one global cable."""
        df = DragonflyTopology(2, 4, 2, 9)
        per_group = df.p * df.a
        b = FlowBuilder(df.num_endpoints)
        for i in range(per_group):
            b.add_flow(i, per_group + i, CAP / 10)
        adversarial = simulate(df, b.build()).makespan
        # the same traffic spread over all groups is far faster
        b2 = FlowBuilder(df.num_endpoints)
        for i in range(per_group):
            b2.add_flow(i, (per_group * (i + 1) + i) % df.num_endpoints,
                        CAP / 10)
        balanced = simulate(df, b2.build()).makespan
        assert adversarial > 2.5 * balanced


class TestValiantRouting:
    @given(st.integers(0, 71), st.integers(0, 71))
    @settings(max_examples=150, deadline=None)
    def test_valiant_routes_are_valid_walks(self, src, dst):
        topo = DragonflyTopology(2, 4, 2, 9, valiant=True)
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    def test_diameter(self):
        topo = DragonflyTopology(2, 4, 2, 9, valiant=True)
        brute = max(topo.hops(s, d) for s in range(72) for d in range(72)
                    if s != d)
        assert brute <= topo.routing_diameter() == 7

    def test_intermediate_group_is_neither_endpoint_group(self):
        topo = DragonflyTopology(2, 4, 2, 9, valiant=True)
        for src, dst in ((0, 70), (8, 16), (3, 65)):
            via = topo._intermediate_group(src, dst, topo.group_of(src),
                                           topo.group_of(dst))
            assert via not in (topo.group_of(src), topo.group_of(dst))

    def test_valiant_defeats_the_adversarial_pattern(self):
        """Valiant's two-hop randomisation spreads block traffic across all
        global cables — the classic fix for the dragonfly pathology."""
        minimal = DragonflyTopology(2, 4, 2, 9)
        valiant = DragonflyTopology(2, 4, 2, 9, valiant=True)
        per_group = 8
        b = FlowBuilder(72)
        for i in range(per_group):
            b.add_flow(i, per_group + i, CAP / 10)
        flows = b.build()
        t_min = simulate(minimal, flows).makespan
        t_val = simulate(valiant, flows).makespan
        assert t_val < 0.5 * t_min

    def test_valiant_costs_on_benign_traffic(self):
        """The flip side: Valiant doubles the load under uniform traffic."""
        from repro.workloads import UnstructuredApp

        flows = UnstructuredApp(72, messages_per_task=4, seed=0).build()
        minimal = DragonflyTopology(2, 4, 2, 9)
        valiant = DragonflyTopology(2, 4, 2, 9, valiant=True)
        t_min = simulate(minimal, flows, fidelity="approx").makespan
        t_val = simulate(valiant, flows, fidelity="approx").makespan
        assert t_val >= t_min * 0.95  # never meaningfully better
