"""Tests for weighted max-min fairness (flow priorities)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.engine.maxmin import allocate
from repro.errors import SimulationError, WorkloadError
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP


def _alloc(routes, caps, weights=None):
    entries = np.concatenate([np.asarray(r, dtype=np.int64) for r in routes])
    ptr = np.zeros(len(routes) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in routes], out=ptr[1:])
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    return allocate(entries, ptr, np.asarray(caps, dtype=np.float64), w)


class TestWeightedAllocation:
    def test_two_to_one_split(self):
        rates = _alloc([[0], [0]], [9.0], weights=[2.0, 1.0])
        assert rates[0] == pytest.approx(6.0)
        assert rates[1] == pytest.approx(3.0)

    def test_unit_weights_match_unweighted(self):
        routes = [[0, 1], [0], [1]]
        caps = [2.0, 3.0]
        assert np.allclose(_alloc(routes, caps),
                           _alloc(routes, caps, weights=[1.0, 1.0, 1.0]))

    def test_weight_scaling_invariance(self):
        # multiplying all weights by a constant must not change rates
        routes = [[0, 1], [0], [1]]
        caps = [2.0, 3.0]
        a = _alloc(routes, caps, weights=[1.0, 2.0, 3.0])
        b = _alloc(routes, caps, weights=[10.0, 20.0, 30.0])
        assert np.allclose(a, b)

    def test_weighted_bottleneck_chain(self):
        # heavy flow and light flow share link 0; light also crosses the
        # tight link 1 and freezes there; heavy takes the remainder
        rates = _alloc([[0], [0, 1]], [3.0, 0.25], weights=[3.0, 1.0])
        assert rates[1] == pytest.approx(0.25)
        assert rates[0] == pytest.approx(2.75)

    def test_validation(self):
        with pytest.raises(SimulationError):
            _alloc([[0]], [1.0], weights=[0.0])
        with pytest.raises(SimulationError):
            _alloc([[0], [0]], [1.0], weights=[1.0])

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_feasibility_with_weights(self, data):
        num_links = data.draw(st.integers(1, 6))
        caps = [data.draw(st.floats(0.5, 4.0)) for _ in range(num_links)]
        routes, weights = [], []
        for _ in range(data.draw(st.integers(1, 10))):
            k = data.draw(st.integers(1, num_links))
            routes.append(list(data.draw(st.permutations(range(num_links)))[:k]))
            weights.append(data.draw(st.floats(0.1, 5.0)))
        rates = _alloc(routes, caps, weights=weights)
        assert (rates > 0).all()
        load = np.zeros(num_links)
        for r, rate in zip(routes, rates):
            for l in r:
                load[l] += rate
        assert (load <= np.asarray(caps) * (1 + 1e-6)).all()

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_rates_proportional_on_shared_bottleneck(self, data):
        """Flows with identical single-link routes split by weight."""
        n = data.draw(st.integers(2, 6))
        weights = [data.draw(st.floats(0.2, 5.0)) for _ in range(n)]
        rates = _alloc([[0]] * n, [7.0], weights=weights)
        ratios = rates / np.asarray(weights)
        assert np.allclose(ratios, ratios[0])
        assert rates.sum() == pytest.approx(7.0)


class TestWeightedSimulation:
    def test_priority_flow_finishes_first(self):
        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(4)
        fast = b.add_flow(0, 3, CAP, weight=3.0)
        slow = b.add_flow(0, 3, CAP, weight=1.0)
        r = simulate(topo, b.build())
        assert r.completion_times[fast] < r.completion_times[slow]

    def test_weighted_makespan(self):
        # weights 3:1 on a shared path; the light flow drains last:
        # phase 1 (until heavy done): rates 7.5/2.5 for 4/3 s; then light
        # finishes its remaining 2/3 CAP at full rate
        topo = TorusTopology((4,), wraparound=False)
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP, weight=3.0)
        b.add_flow(0, 3, CAP, weight=1.0)
        r = simulate(topo, b.build(), fidelity="exact")
        assert r.makespan == pytest.approx(4 / 3 + 2 / 3)

    def test_builder_rejects_bad_weight(self):
        b = FlowBuilder(2)
        with pytest.raises(WorkloadError):
            b.add_flow(0, 1, 1.0, weight=-2.0)

    def test_is_weighted_flag(self):
        b = FlowBuilder(2)
        b.add_flow(0, 1, 1.0)
        assert not b.build().is_weighted
        b.add_flow(0, 1, 1.0, weight=2.0)
        assert b.build().is_weighted
