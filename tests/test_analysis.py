"""Tests for the routing-aware topological analysis."""

from __future__ import annotations

import pytest

from repro.topology import (NestTree, TorusTopology, path_length_stats,
                            routing_diameter)
from repro.topology.analysis import shortest_path_check


class TestPathLengthStats:
    def test_exact_small(self, small_torus):
        stats = path_length_stats(small_torus, max_pairs=10_000)
        assert stats.exact
        assert stats.pairs_measured == 32 * 31
        assert stats.maximum == 5
        assert stats.average == pytest.approx(
            small_torus.average_distance_closed_form())

    def test_sampled_when_over_budget(self, small_torus):
        stats = path_length_stats(small_torus, max_pairs=100)
        assert not stats.exact
        assert stats.pairs_measured == 100

    def test_sampling_is_deterministic(self, small_nesttree):
        a = path_length_stats(small_nesttree, max_pairs=200, seed=42)
        b = path_length_stats(small_nesttree, max_pairs=200, seed=42)
        assert a.histogram == b.histogram

    def test_seed_changes_sample(self, small_nesttree):
        a = path_length_stats(small_nesttree, max_pairs=200, seed=1)
        b = path_length_stats(small_nesttree, max_pairs=200, seed=2)
        assert a.histogram != b.histogram

    def test_histogram_sums_to_pairs(self, small_fattree):
        stats = path_length_stats(small_fattree, max_pairs=10_000)
        assert sum(stats.histogram.values()) == stats.pairs_measured

    def test_distribution_normalised(self, small_fattree):
        stats = path_length_stats(small_fattree, max_pairs=10_000)
        dist = stats.distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_no_self_pairs_sampled(self):
        # distance 0 can only come from self-pairs, which must be excluded
        topo = TorusTopology((2, 2))
        stats = path_length_stats(topo, max_pairs=3)
        assert 0 not in stats.histogram


class TestRoutingDiameter:
    def test_uses_closed_form(self, small_torus):
        assert routing_diameter(small_torus) == 5

    def test_brute_force_fallback(self):
        topo = TorusTopology((3, 3))

        class Stub:  # quacks like a topology but has no closed form
            num_endpoints = topo.num_endpoints
            hops = staticmethod(topo.hops)

        assert routing_diameter(Stub()) == topo.routing_diameter()


class TestStretch:
    def test_minimal_topologies_have_stretch_one(self, small_torus,
                                                 small_fattree):
        assert shortest_path_check(small_torus, pairs=50) == pytest.approx(1.0)
        assert shortest_path_check(small_fattree, pairs=50) == pytest.approx(1.0)

    def test_hybrids_are_non_minimal(self):
        # a big subtorus makes intra-subtorus DOR (which by the paper's rule
        # never uses the upper tier) longer than the fabric shortcut
        topo = NestTree(512, 8, 1)
        assert shortest_path_check(topo, pairs=60) > 1.0
