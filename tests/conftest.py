"""Shared fixtures: small topologies reused across the test suite."""

from __future__ import annotations

import pytest

from repro.topology import (FatTreeTopology, GHCTopology, NestGHC, NestTree,
                            TorusTopology)


@pytest.fixture(scope="session")
def small_torus() -> TorusTopology:
    return TorusTopology((4, 4, 2))


@pytest.fixture(scope="session")
def small_fattree() -> FatTreeTopology:
    return FatTreeTopology((4, 4, 2))


@pytest.fixture(scope="session")
def small_ghc() -> GHCTopology:
    return GHCTopology((4, 4), ports_per_switch=4)


@pytest.fixture(scope="session")
def small_nesttree() -> NestTree:
    # 64 endpoints: 8 subtori of 2x2x2, u=2 -> 32 uplink ports
    return NestTree(64, 2, 2)


@pytest.fixture(scope="session")
def small_nestghc() -> NestGHC:
    # 64 endpoints: u=4 -> 16 ports, 4 per switch -> 4 switches
    return NestGHC(64, 2, 4, ports_per_switch=4, ghc_dims=2)


@pytest.fixture(scope="session")
def all_small_topologies(small_torus, small_fattree, small_ghc,
                         small_nesttree, small_nestghc):
    return [small_torus, small_fattree, small_ghc, small_nesttree,
            small_nestghc]
