"""Tests for the Topology base-class contract (shared across families)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.topology import TorusTopology


class TestContract:
    def test_every_family_routes_every_pair(self, all_small_topologies):
        for topo in all_small_topologies:
            n = topo.num_endpoints
            for src in range(0, n, max(1, n // 6)):
                for dst in range(0, n, max(1, n // 7)):
                    route = topo.route(src, dst)
                    assert route[0] == topo.injection_links[src]
                    assert route[-1] == topo.consumption_links[dst]
                    assert len(set(route)) == len(route)

    def test_hops_is_route_minus_nic(self, all_small_topologies):
        for topo in all_small_topologies:
            assert topo.hops(0, 1) == len(topo.route(0, 1)) - 2

    def test_describe_mentions_counts(self, all_small_topologies):
        for topo in all_small_topologies:
            text = topo.describe()
            assert str(topo.num_endpoints) in text
            assert topo.name in text

    def test_network_link_count_excludes_nic(self, small_torus):
        assert small_torus.links.num_links == \
            small_torus.num_network_links + 2 * small_torus.num_endpoints

    def test_to_networkx_has_no_nic_vertices(self, small_nesttree):
        g = small_nesttree.to_networkx()
        expected = small_nesttree.num_endpoints + small_nesttree.num_switches
        assert g.number_of_nodes() == expected


class TestNicCapacity:
    def test_defaults_to_link_capacity(self):
        topo = TorusTopology((4,), link_capacity=3.0)
        caps = topo.links.capacities
        assert caps[topo.injection_links[0]] == 3.0

    def test_override(self):
        topo = TorusTopology((4,), link_capacity=3.0, nic_capacity=12.0)
        caps = topo.links.capacities
        assert caps[topo.injection_links[0]] == 12.0
        assert caps[topo.consumption_links[0]] == 12.0
        # network links keep the base rate
        net = topo.links.id_of(0, 1)
        assert caps[net] == 3.0


class TestValidation:
    def test_zero_endpoints_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):  # TopologyError from the dims check
            TorusTopology((0,))

    def test_route_bounds(self, small_torus):
        with pytest.raises(RoutingError):
            small_torus.route(-1, 0)
        with pytest.raises(RoutingError):
            small_torus.hops(0, 99)
