"""Tests for the sharded, disk-spillable route cache.

Covers the three behaviours the scaling work depends on:

* spill/reload round-trips are *byte-identical*, including across a
  process boundary (a sweep worker can inherit another worker's spill
  directory);
* a corrupt or truncated shard file degrades to recomputation with a
  :class:`~repro.routing.cache.RouteCacheWarning` — never a crash, never
  a wrong route;
* a paper-scale (32k-endpoint) cache stays under a hard RSS ceiling
  while a plain dict of the same routes would not be bounded
  (``-m scale_smoke``; CI runs it on every push).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.engine import simulate
from repro.errors import ConfigError
from repro.routing.cache import (RouteCacheWarning, ShardedRouteCache,
                                 make_route_cache)
from repro.workloads import build as build_workload

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _fill(cache, topo, pairs):
    for s, d in pairs:
        cache[(s, d)] = np.asarray(topo.route(s, d), dtype=np.int64)
        cache[("cands", s, d, None)] = [
            np.asarray(r, dtype=np.int64)
            for r in topo.route_candidates(s, d)]


class TestMappingSemantics:
    def test_mutablemapping_contract(self):
        c = ShardedRouteCache(shards=4, max_resident=2)
        assert len(c) == 0 and list(c) == []
        c[(0, 1)] = np.array([1, 2])
        c[(1, 2, "tok")] = np.array([3])
        c[("cands", 2, 3, "tok")] = [np.array([4])]
        assert len(c) == 3
        assert (0, 1) in c and (9, 9) not in c
        assert set(c) == {(0, 1), (1, 2, "tok"), ("cands", 2, 3, "tok")}
        del c[(1, 2, "tok")]
        assert len(c) == 2 and (1, 2, "tok") not in c
        c[(0, 1)] = np.array([7])  # overwrite must not double-count
        assert len(c) == 2 and c[(0, 1)].tolist() == [7]

    def test_get_default(self):
        c = ShardedRouteCache(shards=2, max_resident=1)
        assert c.get((5, 6)) is None

    def test_foreign_keys_accepted(self):
        c = ShardedRouteCache(shards=4, max_resident=2)
        c["odd-key"] = 1
        c[(("nested",), 2)] = 2
        assert c["odd-key"] == 1 and len(c) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardedRouteCache(shards=0)
        with pytest.raises(ConfigError):
            ShardedRouteCache(max_resident=0)


class TestSpillRoundTrip:
    def test_flush_reload_same_process(self, small_nesttree, tmp_path):
        n = small_nesttree.num_endpoints
        pairs = [(s, (s + 7) % n) for s in range(n) if s != (s + 7) % n]
        a = ShardedRouteCache(shards=8, max_resident=2,
                              spill_dir=str(tmp_path))
        _fill(a, small_nesttree, pairs)
        a.flush()
        b = ShardedRouteCache(shards=8, max_resident=2,
                              spill_dir=str(tmp_path))
        assert len(b) == len(a)
        for key in a:
            va, vb = a[key], b[key]
            if isinstance(va, list):
                assert len(va) == len(vb)
                for x, y in zip(va, vb):
                    assert x.tobytes() == y.tobytes()
            else:
                assert va.tobytes() == vb.tobytes()

    def test_reload_in_fresh_process_byte_identical(self, small_nesttree,
                                                    tmp_path):
        """A different OS process serves the spilled routes bit-for-bit."""
        n = small_nesttree.num_endpoints
        pairs = [(s, (s + 5) % n) for s in range(n) if s != (s + 5) % n]
        cache = ShardedRouteCache(shards=8, max_resident=2,
                                  spill_dir=str(tmp_path))
        _fill(cache, small_nesttree, pairs)
        cache.flush()
        want = {key: cache[key].tobytes() for key in cache
                if not isinstance(cache[key], list)}
        script = (
            "import pickle, sys\n"
            "from repro.routing.cache import ShardedRouteCache\n"
            "c = ShardedRouteCache(shards=8, max_resident=2,\n"
            "                      spill_dir=sys.argv[1])\n"
            "out = {k: c[k].tobytes() for k in c\n"
            "       if not isinstance(c[k], list)}\n"
            "sys.stdout.buffer.write(pickle.dumps(out))\n")
        env = dict(os.environ,
                   PYTHONPATH=REPO_SRC + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.run([sys.executable, "-c", script, str(tmp_path)],
                              capture_output=True, env=env, check=True)
        got = pickle.loads(proc.stdout)
        assert got == want and len(got) == len(pairs)

    def test_spill_respects_resident_budget(self):
        c = ShardedRouteCache(shards=16, max_resident=3)
        for s in range(64):
            c[(s, s + 1)] = np.arange(s % 7 + 1, dtype=np.int64)
        assert c.resident_shards() <= 3
        assert c.stats["spills"] > 0
        assert len(c) == 64  # spilled entries still count and still serve
        assert c[(0, 1)].tolist() == [0]

    def test_unbounded_never_spills(self, tmp_path):
        c = ShardedRouteCache(shards=8, max_resident=None,
                              spill_dir=str(tmp_path))
        for s in range(64):
            c[(s, s + 1)] = np.arange(3, dtype=np.int64)
        assert c.stats["spills"] == 0
        assert not any(f.endswith(".bin") for f in os.listdir(tmp_path))


class TestCorruptShard:
    def _spilled(self, tmp_path):
        c = ShardedRouteCache(shards=4, max_resident=1,
                              spill_dir=str(tmp_path))
        for s in range(16):
            c[(s, s + 1)] = np.arange(s + 1, dtype=np.int64)
        c.flush()
        return c

    @pytest.mark.parametrize("damage", ("garbage", "truncate", "not_dict"))
    def test_degrades_to_recompute_with_warning(self, tmp_path, damage):
        self._spilled(tmp_path)
        victim = os.path.join(str(tmp_path), "shard_00000.bin")
        assert os.path.exists(victim)
        if damage == "garbage":
            with open(victim, "wb") as fh:
                fh.write(b"not a shard at all")
        elif damage == "truncate":
            blob = open(victim, "rb").read()
            with open(victim, "wb") as fh:
                fh.write(blob[:len(blob) // 2])
        else:
            import zlib
            with open(victim, "wb") as fh:
                fh.write(b"repro-route-shard-v1\n"
                         + zlib.compress(pickle.dumps(["not", "a", "dict"])))
        fresh = ShardedRouteCache(shards=4, max_resident=1,
                                  spill_dir=str(tmp_path))
        with pytest.warns(RouteCacheWarning):
            assert fresh.get((0, 1)) is None  # damaged shard -> recompute
        assert fresh.stats["corrupt"] == 1
        assert not os.path.exists(victim)  # bad file is cleared
        # untouched shards still serve
        assert fresh[(1, 2)].tolist() == [0, 1]
        # and the simulation just recomputes the lost routes
        fresh[(0, 1)] = np.array([42], dtype=np.int64)
        assert fresh[(0, 1)].tolist() == [42]

    def test_simulation_survives_corrupt_spill(self, small_nesttree,
                                               tmp_path):
        flows = build_workload("allreduce", small_nesttree.num_endpoints,
                               seed=0).build()
        clean = simulate(small_nesttree, flows)
        cache = ShardedRouteCache(shards=4, max_resident=1,
                                  spill_dir=str(tmp_path))
        simulate(small_nesttree, flows, route_cache=cache)
        cache.flush()
        for name in os.listdir(tmp_path):
            if name.endswith(".bin"):
                with open(os.path.join(str(tmp_path), name), "wb") as fh:
                    fh.write(b"zap")
                break
        reloaded = ShardedRouteCache(shards=4, max_resident=1,
                                     spill_dir=str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RouteCacheWarning)
            again = simulate(small_nesttree, flows, route_cache=reloaded)
        assert again.makespan == clean.makespan
        np.testing.assert_array_equal(again.completion_times,
                                      clean.completion_times)


class TestFactory:
    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUTE_CACHE", raising=False)
        assert type(make_route_cache(1024)) is dict
        assert type(make_route_cache(None)) is dict

    def test_auto_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUTE_CACHE", raising=False)
        assert isinstance(make_route_cache(65536), ShardedRouteCache)
        monkeypatch.setenv("REPRO_ROUTE_CACHE_AUTO", "512")
        assert isinstance(make_route_cache(512), ShardedRouteCache)
        assert type(make_route_cache(511)) is dict

    def test_explicit_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTE_CACHE", "sharded")
        monkeypatch.setenv("REPRO_ROUTE_CACHE_SHARDS", "9")
        monkeypatch.setenv("REPRO_ROUTE_CACHE_RESIDENT", "0")
        c = make_route_cache(64)
        assert isinstance(c, ShardedRouteCache)
        assert c.shards == 9 and c.max_resident is None
        monkeypatch.setenv("REPRO_ROUTE_CACHE", "dict")
        assert type(make_route_cache(10 ** 9)) is dict
        monkeypatch.setenv("REPRO_ROUTE_CACHE", "bogus")
        with pytest.raises(ConfigError):
            make_route_cache(64)


@pytest.mark.scale_smoke
class TestScaleSmoke:
    def test_32k_endpoint_cache_under_rss_ceiling(self, tmp_path):
        """Routes for a 32k-endpoint NestTree, spilled, under 1.5 GB RSS.

        Runs in a subprocess so ``ru_maxrss`` reflects this workload
        alone.  The cache holds one deterministic route per source
        endpoint (32k entries through a 64-shard cache with only 4
        resident) — the spill machinery, not the route count, bounds
        memory.
        """
        script = (
            "import resource, sys\n"
            "import numpy as np\n"
            "from repro.routing.cache import ShardedRouteCache\n"
            "from repro.topology import NestTree\n"
            "topo = NestTree(32768, 2, 4)\n"
            "cache = ShardedRouteCache(shards=64, max_resident=4,\n"
            "                          spill_dir=sys.argv[1])\n"
            "n = topo.num_endpoints\n"
            "for s in range(n):\n"
            "    d = (s + n // 2 + 1) % n\n"
            "    cache[(s, d)] = np.asarray(topo.route(s, d),\n"
            "                               dtype=np.int64)\n"
            "assert len(cache) == n, len(cache)\n"
            "assert cache.stats['spills'] > 0\n"
            "rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss \\\n"
            "    / 1024.0\n"
            "print(f'rss_mb={rss_mb:.0f} resident={cache.resident_shards()}'"
            ")\n"
            "assert rss_mb < 1536.0, f'RSS {rss_mb:.0f} MiB over budget'\n")
        env = dict(os.environ,
                   PYTHONPATH=REPO_SRC + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.run([sys.executable, "-c", script, str(tmp_path)],
                              capture_output=True, text=True, env=env,
                              timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "rss_mb=" in proc.stdout


class TestRouteCacheConfig:
    """The explicit config object the sweep runner threads to workers."""

    def test_defaults_match_env_defaults(self):
        from repro.routing.cache import RouteCacheConfig

        cfg = RouteCacheConfig()
        assert isinstance(make_route_cache(64, config=cfg), dict)
        sharded = make_route_cache(
            64, config=RouteCacheConfig(mode="sharded"))
        assert isinstance(sharded, ShardedRouteCache)

    def test_explicit_fields_override_env(self, monkeypatch):
        from repro.routing.cache import RouteCacheConfig

        monkeypatch.setenv("REPRO_ROUTE_CACHE", "dict")
        monkeypatch.setenv("REPRO_ROUTE_CACHE_SHARDS", "128")
        monkeypatch.setenv("REPRO_ROUTE_CACHE_RESIDENT", "32")
        cache = make_route_cache(
            64, config=RouteCacheConfig(mode="sharded", shards=8,
                                        resident=2))
        assert isinstance(cache, ShardedRouteCache)
        assert cache.shards == 8 and cache.max_resident == 2

    def test_none_fields_fall_back_to_env(self, monkeypatch):
        from repro.routing.cache import RouteCacheConfig

        monkeypatch.setenv("REPRO_ROUTE_CACHE_SHARDS", "16")
        monkeypatch.setenv("REPRO_ROUTE_CACHE_RESIDENT", "0")
        cache = make_route_cache(
            64, config=RouteCacheConfig(mode="sharded"))
        assert cache.shards == 16 and cache.max_resident is None

    def test_validation(self):
        from repro.routing.cache import RouteCacheConfig

        with pytest.raises(ConfigError):
            RouteCacheConfig(mode="bogus")
        with pytest.raises(ConfigError):
            RouteCacheConfig(shards=0)
        with pytest.raises(ConfigError):
            RouteCacheConfig(resident=-1)

    def test_for_worker_divides_resident_budget(self, tmp_path):
        from repro.routing.cache import RouteCacheConfig

        cfg = RouteCacheConfig(mode="sharded", shards=64, resident=16,
                               spill_dir=str(tmp_path))
        w0 = cfg.for_worker(0, 4)
        w3 = cfg.for_worker(3, 4)
        assert w0.resident == w3.resident == 4
        assert w0.spill_dir == os.path.join(str(tmp_path), "worker0")
        assert w3.spill_dir == os.path.join(str(tmp_path), "worker3")
        # the floor: a worker always gets at least one resident shard
        assert cfg.for_worker(0, 64).resident == 1
        # unbounded budgets and serial runs pass through untouched
        assert RouteCacheConfig(resident=0).for_worker(0, 8).resident == 0
        assert cfg.for_worker(0, 1).resident == 16


class TestConfigThreadedThroughSweep:
    """run_sweep hands each pool worker its slice of the cache budget."""

    def test_parallel_sweep_honours_config(self, tmp_path):
        from repro.core import DesignSpaceExplorer
        from repro.routing.cache import RouteCacheConfig
        from repro.sweep import run_sweep

        explorer = DesignSpaceExplorer(64, quadratic_tasks=16, seed=0)
        plan = explorer.plan(["reduce"])
        spill = tmp_path / "spill"
        cfg = RouteCacheConfig(mode="sharded", shards=8, resident=2,
                               spill_dir=str(spill))
        records = run_sweep(plan, jobs=2, route_cache_config=cfg)
        serial = run_sweep(plan)
        assert [(r.topology, r.makespan) for r in records] \
            == [(r.topology, r.makespan) for r in serial]
        # each worker spilled into its own budgeted subdirectory, with a
        # per-(topology, faults) namespace below it so no two cache
        # instances ever share shard files
        worker_dirs = sorted(p.name for p in spill.iterdir())
        assert worker_dirs and all(d.startswith("worker")
                                   for d in worker_dirs)
        assert any(list(spill.glob("worker*/*/shard_*.bin")))

    def test_serial_sweep_honours_config(self, tmp_path):
        from repro.core import DesignSpaceExplorer
        from repro.routing.cache import RouteCacheConfig
        from repro.sweep import run_sweep

        explorer = DesignSpaceExplorer(64, quadratic_tasks=16, seed=0)
        plan = explorer.plan(["reduce"])
        spill = tmp_path / "spill-serial"
        cfg = RouteCacheConfig(mode="sharded", shards=8, resident=1,
                               spill_dir=str(spill))
        sharded = run_sweep(plan, route_cache_config=cfg)
        # one namespace directory per (topology, faults) cache partition;
        # without the namespacing a later topology warm-starts from an
        # earlier one's shard files and silently routes over them
        assert any(spill.glob("*/shard_*.bin"))
        plain = run_sweep(plan)
        assert [(r.topology, r.makespan) for r in sharded] \
            == [(r.topology, r.makespan) for r in plain]
