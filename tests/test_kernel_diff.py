"""Differential tests for the fill-kernel backends (``-m kernel_diff``).

The compiled (numba) kernels are specified as bitwise-exact replacements
for the pure-NumPy reference — same rates, same water levels, same
iteration counts, same simulation results.  This suite checks that claim
three ways:

* end-to-end simulations across every engine-supported topology family,
  both fidelities and all three routing policies;
* a Hypothesis property pushing randomized churn through
  :class:`~repro.engine.active.ActiveSet` under each backend, comparing
  rates bitwise after every allocation *and* against the reference
  :func:`repro.engine.maxmin.allocate`;
* dispatcher behaviour: ``REPRO_KERNELS`` resolution, the forced-backend
  context manager, and the typed error when the ``[fast]`` extra is
  requested but missing.

On a machine without the ``[fast]`` extra only the numpy legs run (the
cross-backend comparisons become no-ops but the reference checks still
bite); with it installed, every case runs under both backends.  CI runs
this suite in both environments.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.difftest import run_all_backends
from repro.engine import kernels, simulate
from repro.engine.active import ActiveSet
from repro.engine.maxmin import allocate
from repro.errors import SimulationError
from repro.workloads import build as build_workload

pytestmark = pytest.mark.kernel_diff

_FAMILIES = ("small_torus", "small_fattree", "small_ghc", "small_nesttree",
             "small_nestghc")

#: Hypothesis cannot draw pytest fixtures, so the property test builds the
#: same five families itself, once per session.
_topo_cache: dict[str, object] = {}


def _family_topo(family: str):
    topo = _topo_cache.get(family)
    if topo is None:
        from repro.topology import (FatTreeTopology, GHCTopology, NestGHC,
                                    NestTree, TorusTopology)
        topo = {
            "small_torus": lambda: TorusTopology((4, 4, 2)),
            "small_fattree": lambda: FatTreeTopology((4, 4, 2)),
            "small_ghc": lambda: GHCTopology((4, 4), ports_per_switch=4),
            "small_nesttree": lambda: NestTree(64, 2, 2),
            "small_nestghc": lambda: NestGHC(64, 2, 4, ports_per_switch=4,
                                             ghc_dims=2),
        }[family]()
        _topo_cache[family] = topo
    return topo


def _reference_rates(active: ActiveSet, capacities, weighted):
    entries, ptr = active.gather_csr()
    return allocate(entries, ptr, capacities,
                    active.weights.copy() if weighted else None)


class TestSimulationDiff:
    """End-to-end: same SimulationResult under every backend."""

    @pytest.mark.parametrize("family", _FAMILIES)
    @pytest.mark.parametrize("fidelity", ("exact", "approx"))
    def test_allreduce_all_families(self, request, family, fidelity):
        topo = request.getfixturevalue(family)
        flows = build_workload("allreduce", topo.num_endpoints,
                               seed=0).build()
        run_all_backends(lambda: simulate(topo, flows, fidelity=fidelity))

    @pytest.mark.parametrize("routing",
                             ("deterministic", "ecmp", "adaptive"))
    def test_unstructured_all_policies(self, small_nesttree, routing):
        flows = build_workload("unstructuredhr",
                               small_nesttree.num_endpoints, seed=1).build()
        run_all_backends(lambda: simulate(small_nesttree, flows,
                                          fidelity="approx",
                                          routing=routing))

    def test_weighted_flows(self, small_fattree):
        builder = build_workload("mapreduce", small_fattree.num_endpoints,
                                 seed=2)
        flows = builder.build()
        run_all_backends(lambda: simulate(small_fattree, flows))

    def test_transient_timeline(self, small_nesttree):
        from repro.topology import FaultTimeline
        flows = build_workload("allreduce", small_nesttree.num_endpoints,
                               seed=0).build()
        base = simulate(small_nesttree, flows)
        tl = FaultTimeline.sample(small_nesttree, cables=4, seed=3,
                                  horizon=base.makespan * 0.8,
                                  mttr=base.makespan * 0.25)
        result, _ = run_all_backends(
            lambda: simulate(small_nesttree, flows, fidelity="approx",
                             fault_timeline=tl))
        assert result.transient["fault_events"] > 0


class TestChurnProperty:
    """Hypothesis: random churn keeps every backend bitwise on-reference."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           steps=st.integers(20, 120),
           family=st.sampled_from(_FAMILIES),
           weighted=st.booleans())
    def test_random_churn_bitwise(self, seed, steps, family, weighted):
        topo = _family_topo(family)
        caps = topo.links.capacities
        rng = np.random.default_rng(seed)
        n = topo.num_endpoints

        # one churn script, replayed identically under every backend
        script: list[tuple] = []
        alive: list[int] = []
        next_fid = 0
        for _ in range(steps):
            if alive and rng.random() < 0.45:
                idx = int(rng.integers(len(alive)))
                script.append(("remove", alive.pop(idx)))
            else:
                s = int(rng.integers(n))
                d = int(rng.integers(n))
                while d == s:
                    d = int(rng.integers(n))
                w = float(rng.uniform(0.5, 4.0)) if weighted else 1.0
                script.append(("add", next_fid, s, d, w))
                alive.append(next_fid)
                next_fid += 1

        route_cache: dict = {}
        rates_by_backend: dict[str, list] = {}
        for backend in kernels.available():
            rates_log: list[np.ndarray] = []
            with kernels.use(backend):
                active = ActiveSet(caps, weighted=weighted)
                for i, op in enumerate(script):
                    if op[0] == "remove":
                        active.remove(op[1])
                    else:
                        _, fid, s, d, w = op
                        key = (s, d)
                        route = route_cache.get(key)
                        if route is None:
                            route = np.asarray(topo.route(s, d),
                                               dtype=np.int64)
                            route_cache[key] = route
                        active.add(fid, route, weight=w)
                    if active.size and i % 3 == 0:
                        got = active.allocate().copy()
                        want = _reference_rates(active, caps, weighted)
                        if backend == "numpy":
                            # warm fills may diverge from a cold reference
                            # allocation only within float tolerance
                            np.testing.assert_allclose(
                                got, want,
                                rtol=1e-12 if not weighted else 1e-9)
                        rates_log.append(got)
            rates_by_backend[backend] = rates_log
        base = rates_by_backend["numpy"]
        for backend, log in rates_by_backend.items():
            assert len(log) == len(base)
            for i, (a, b) in enumerate(zip(base, log)):
                np.testing.assert_array_equal(
                    a, b,
                    err_msg=f"rates diverge at allocation {i} "
                            f"(numpy vs {backend})")


class TestRelevelProperty:
    """Hypothesis: near-identical churn — the suffix-resume relevel's
    territory — stays bitwise on the full pass under every backend.

    Each script batch-adds flows from an interned route pool, then runs
    rounds of removal bursts with optional *matched* re-adds (the same
    route array object, so the multiset of route keys never gains a
    member).  That is exactly the state PR 10's relevel path claims to
    resume bitwise; a twin ActiveSet with the path disabled provides the
    full-pass oracle at every allocation.
    """

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           n_flows=st.integers(12, 48),
           rounds=st.integers(3, 10),
           family=st.sampled_from(_FAMILIES))
    def test_near_identical_churn_bitwise(self, seed, n_flows, rounds,
                                          family):
        topo = _family_topo(family)
        caps = topo.links.capacities
        rng = np.random.default_rng(seed)
        n = topo.num_endpoints

        route_pool: dict = {}

        def draw_route():
            s = int(rng.integers(n))
            d = int(rng.integers(n))
            while d == s:
                d = int(rng.integers(n))
            route = route_pool.get((s, d))
            if route is None:
                route = np.asarray(topo.route(s, d), dtype=np.int64)
                route_pool[(s, d)] = route
            return route

        # one churn script: seed adds, then removal bursts with matched
        # re-adds (never more re-adds than removals of that same route)
        script: list[tuple] = [("add", fid, draw_route())
                               for fid in range(n_flows)]
        alive = {fid: route for _, fid, route in script}
        next_fid = n_flows
        script.append(("allocate",))
        for _ in range(rounds):
            burst = min(len(alive) - 1, int(rng.integers(1, 5)))
            if burst <= 0:
                break
            removed: list = []
            for fid in rng.choice(sorted(alive), size=burst,
                                  replace=False).tolist():
                script.append(("remove", int(fid)))
                removed.append(alive.pop(int(fid)))
            for route in removed:
                if rng.random() < 0.4:   # matched re-admission
                    script.append(("add", next_fid, route))
                    alive[next_fid] = route
                    next_fid += 1
            script.append(("allocate",))

        def replay(enabled: bool) -> list[np.ndarray]:
            active = ActiveSet(caps)
            active._relevel_enabled = enabled
            log: list[np.ndarray] = []
            for op in script:
                if op[0] == "add":
                    active.add(op[1], op[2])
                elif op[0] == "remove":
                    active.remove(op[1])
                elif active.size:
                    rates = active.allocate()
                    # slot order depends only on the script, so rates
                    # line up positionally between the twin replays
                    log.append(np.column_stack(
                        (active.flow_ids, rates)).copy())
            if enabled:
                log.append(np.array([[active.relevel_fills, 0.0]]))
            return log

        per_backend: dict[str, list] = {}
        for backend in kernels.available():
            with kernels.use(backend):
                fast = replay(True)
                slow = replay(False)
            per_backend[backend] = fast
            for i, (a, b) in enumerate(zip(fast[:-1], slow)):
                np.testing.assert_array_equal(
                    a, b, err_msg=f"[{backend}] relevel diverges from "
                                  f"full pass at allocation {i}")
        base = per_backend["numpy"]
        for backend, log in per_backend.items():
            for i, (a, b) in enumerate(zip(base, log)):
                np.testing.assert_array_equal(
                    a, b, err_msg=f"rates diverge at allocation {i} "
                                  f"(numpy vs {backend})")

    def test_property_exercises_relevel(self, small_nesttree):
        """Meta-check: the property's churn shape actually takes the
        suffix-resume path (guards against a vacuous suite)."""
        flows = build_workload("unstructuredhr",
                               small_nesttree.num_endpoints, seed=1).build()
        result, _ = run_all_backends(
            lambda: simulate(small_nesttree, flows, fidelity="exact"))
        assert result.allocator_stats["relevel_fills"] > 0


class TestDispatcher:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available()
        assert kernels.get("numpy").NAME == "numpy"

    def test_default_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert kernels.default_name() == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        with pytest.raises(SimulationError, match="REPRO_KERNELS"):
            kernels.default_name()

    def test_use_pins_and_restores(self):
        before = kernels.default_name()
        with kernels.use("numpy"):
            assert kernels.default_name() == "numpy"
            assert ActiveSet(np.ones(2)).kernels.NAME == "numpy"
        assert kernels.default_name() == before

    def test_explicit_missing_backend_raises(self):
        if "numba" in kernels.available():
            pytest.skip("[fast] extra installed; nothing is missing")
        with pytest.raises(SimulationError, match="repro\\[fast\\]"):
            kernels.get("numba")

    def test_auto_never_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        assert kernels.default_name() in ("numpy", "numba")

    def test_activeset_accepts_backend_name(self):
        a = ActiveSet(np.ones(4), kernels="numpy")
        assert a.kernels.NAME == "numpy"
        with pytest.raises(SimulationError, match="unknown kernel backend"):
            ActiveSet(np.ones(4), kernels="fortran")
