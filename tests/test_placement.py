"""Tests for task-to-endpoint placements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mapping import (block_placement, by_name, identity_placement,
                           random_placement, spread_placement)


class TestPolicies:
    def test_identity(self):
        assert identity_placement(4, 8).tolist() == [0, 1, 2, 3]

    def test_block_offset(self):
        assert block_placement(4, 8, offset=6).tolist() == [6, 7, 0, 1]

    def test_spread_covers_machine(self):
        p = spread_placement(4, 16)
        assert p.tolist() == [0, 4, 8, 12]

    def test_spread_full_occupancy(self):
        p = spread_placement(8, 8)
        assert sorted(p.tolist()) == list(range(8))

    def test_random_distinct_and_seeded(self):
        a = random_placement(10, 64, seed=1)
        b = random_placement(10, 64, seed=1)
        c = random_placement(10, 64, seed=2)
        assert len(set(a.tolist())) == 10
        assert (a == b).all()
        assert (a != c).any()

    def test_all_policies_produce_distinct_endpoints(self):
        for name in ("identity", "block", "spread", "random"):
            p = by_name(name, 12, 48)
            assert len(np.unique(p)) == 12
            assert p.min() >= 0 and p.max() < 48


class TestValidation:
    def test_too_many_tasks(self):
        with pytest.raises(ConfigError):
            identity_placement(9, 8)

    def test_zero_tasks(self):
        with pytest.raises(ConfigError):
            spread_placement(0, 8)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            by_name("teleport", 4, 8)
