"""Tests for the service broker: dedup, batching, errors, backpressure."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import QueueFullError
from repro.service import Broker, ResultStore
from repro.service.protocol import cell_from_json

ENDPOINTS = 64


def make_cell(workload="reduce", tasks=16, family="fattree", params=None,
              **over):
    doc = {"workload": workload, "tasks": tasks,
           "topology": {"family": family, "params": params or {}}}
    doc.update(over)
    return cell_from_json(doc)


def run(coro):
    return asyncio.run(coro)


class TestDedup:
    def test_duplicate_submissions_run_one_simulation(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            await broker.start()
            cell = make_cell()
            digests = broker.submit_many("a", [cell, cell, cell])
            assert len(set(digests)) == 1
            results = [await broker.result(d) for d in digests]
            await broker.close()
            return broker.counters, results

        counters, results = run(main())
        assert counters["simulated"] == 1
        assert counters["deduped"] == 2
        assert counters["enqueued"] == 1
        assert all(r["status"] == "done" for r in results)
        assert results[0] == results[1] == results[2]

    def test_second_round_is_a_store_hit(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            await broker.start()
            cell = make_cell()
            first = await broker.result(broker.submit("a", cell))
            second = await broker.result(broker.submit("a", cell))
            await broker.close()
            return broker.counters, first, second

        counters, first, second = run(main())
        assert counters["simulated"] == 1
        assert counters["store_hits"] == 1
        assert second["record"] == first["record"]

    def test_distinct_fingerprints_both_simulate(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            await broker.start()
            cells = [make_cell(), make_cell(placement="random")]
            digests = broker.submit_many("a", cells)
            assert len(set(digests)) == 2
            results = [await broker.result(d) for d in digests]
            await broker.close()
            return broker.counters, results

        counters, results = run(main())
        # same checkpoint key, different placement: the key-collision
        # deferral must keep both and simulate each exactly once
        assert counters["simulated"] == 2
        assert all(r["status"] == "done" for r in results)
        assert results[0]["fingerprint"]["placement"] == "spread"
        assert results[1]["fingerprint"]["placement"] == "random"


class TestMatchesDirectSweep:
    def test_service_records_are_byte_identical_to_run_sweep(
            self, tmp_path):
        from repro.sweep.plan import SweepPlan
        from repro.sweep.runner import run_sweep

        cells = [make_cell(),
                 make_cell(family="nesttree", params={"t": 2, "u": 4}),
                 make_cell(workload="allreduce", tasks=None)]

        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            await broker.start()
            results = [await broker.result(d)
                       for d in broker.submit_many("a", cells)]
            await broker.close()
            return results

        service = run(main())
        direct: dict[str, dict] = {}
        run_sweep(SweepPlan(endpoints=ENDPOINTS, fidelity="approx", seed=0,
                            cells=tuple(cells)), results_out=direct)
        for cell, doc in zip(cells, service):
            want = dict(direct[cell.key()])
            got = dict(doc["record"])
            # wall-clock legitimately differs; everything else must not
            want.pop("wall_seconds"), got.pop("wall_seconds")
            assert got == want


class TestErrors:
    def test_failed_cell_resolves_typed_and_is_not_cached(self, tmp_path):
        async def main():
            # a serial cell timeout of ~0 fails every cell after it runs:
            # the cheapest deterministic per-cell failure we can inject
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            cell_timeout=1e-12)
            await broker.start()
            doc = await broker.result(broker.submit("a", make_cell()))
            await broker.close()
            return broker.counters, doc, len(broker.store)

        counters, doc, stored = run(main())
        assert doc["status"] == "error"
        assert "error" in doc["error"]
        assert counters["errors"] == 1
        assert counters["simulated"] == 0
        assert stored == 0  # failures may be transient; never cached

    def test_unknown_digest_raises(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            await broker.start()
            try:
                with pytest.raises(KeyError):
                    await broker.result("f" * 64)
            finally:
                await broker.close()

        run(main())

    def test_peek_states(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS)
            # broker deliberately not started: the queue holds still
            cell = make_cell()
            digest = broker.submit("a", cell)
            assert broker.peek(digest) == {"status": "pending",
                                           "digest": digest}
            assert broker.peek("f" * 64) is None
            await broker.close()

        run(main())


class TestBackpressure:
    def test_queue_full_is_typed_and_counted(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            capacity=1)
            # not started: submissions stay queued, deterministically
            broker.submit("a", make_cell())
            with pytest.raises(QueueFullError) as err:
                broker.submit("b", make_cell(tasks=8))
            assert err.value.capacity == 1
            assert err.value.depth == 1
            assert broker.counters["rejected"] == 1
            # duplicates of the queued cell still dedup under pressure
            digest = broker.submit("c", make_cell())
            assert broker.counters["deduped"] == 1
            assert broker.peek(digest)["status"] == "pending"
            await broker.close()

        run(main())


class TestStats:
    def test_stats_document_shape(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            weights={"gold": 3})
            await broker.start()
            await broker.result(broker.submit("gold", make_cell()))
            stats = broker.stats()
            await broker.close()
            return stats

        stats = run(main())
        assert stats["meta"] == {"endpoints": ENDPOINTS,
                                 "fidelity": "approx", "seed": 0}
        assert stats["counters"]["simulated"] == 1
        assert stats["queue"]["capacity"] == 256
        assert stats["queue"]["depth"] == 0
        assert stats["store"]["records"] == 1
