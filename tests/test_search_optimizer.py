"""Integration tests for run_search and the JSON search report."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigError
from repro.search.fidelity import (RANK_FULL, RANK_STATIC, FidelityLadder,
                                   LadderEvaluator)
from repro.search.optimizer import run_search
from repro.search.pareto import Objectives, promote
from repro.search.report import (REPORT_SCHEMA_VERSION, render_report,
                                 validate_report, validate_report_file,
                                 write_report)
from repro.search.space import DesignSpace
from repro.search.strategies import make_strategy

WORKLOADS = ("reduce", "permutation")


def small_search(strategy="evolution", seed=7, budget=12, **evaluator_kw):
    ladder = FidelityLadder.for_scale(64, WORKLOADS, seed=seed,
                                      static_pairs=300)
    space = DesignSpace(endpoints=64)
    evaluator = LadderEvaluator(ladder, **evaluator_kw)
    return run_search(space, make_strategy(strategy, space, seed=seed),
                      ladder, budget=budget, evaluator=evaluator)


class TestRunSearch:
    def test_front_is_mutually_nondominated(self):
        result = small_search()
        members = result.front.members()
        assert members
        for a in members:
            for b in members:
                if a.label != b.label:
                    assert not a.objectives.dominates(b.objectives)

    def test_reports_are_byte_identical_under_a_seed(self):
        assert render_report(small_search()) == render_report(small_search())

    def test_different_seeds_may_differ_but_stay_valid(self):
        for seed in (1, 2):
            validate_report(json.loads(render_report(small_search(seed=seed))))

    def test_halving_never_promotes_a_dominated_design(self):
        result = small_search()
        rank0 = {e["label"]: Objectives(**e["objectives"])
                 for e in result.evaluations if e["rank"] == RANK_STATIC}
        simulated = {e["label"] for e in result.evaluations
                     if e["rank"] == RANK_FULL}
        assert simulated  # the climb actually happened
        cap = max(1, math.ceil(len(rank0) / result.halving))
        assert simulated == set(promote(rank0, cap=cap))
        for label in simulated:
            assert not any(rank0[other].dominates(rank0[label])
                           for other in rank0 if other != label)

    def test_budget_caps_rank0_proposals(self):
        result = small_search(budget=5)
        proposals = [e for e in result.evaluations
                     if e["rank"] == RANK_STATIC]
        assert len(proposals) <= 5
        assert result.rank_summary["rank0"]["proposals"] <= 5

    def test_grid_exhausts_below_budget(self):
        result = small_search(strategy="grid", budget=100)
        space_size = DesignSpace(endpoints=64).size()
        assert result.rank_summary["rank0"]["proposals"] == space_size
        assert result.rank_summary["rank0"]["unique_designs"] == space_size

    def test_collapsed_ladder_skips_rank1(self):
        result = small_search()
        assert "skipped" in result.rank_summary["rank1"]
        assert result.ladder.collapsed()

    def test_references_are_not_budget_consumers(self):
        result = small_search()
        labels = {e["label"] for e in result.evaluations}
        assert "fattree" not in labels and "torus" not in labels
        assert set(result.references) == {"fattree", "torus"}

    def test_invalid_budget_and_halving_are_typed_errors(self):
        ladder = FidelityLadder.for_scale(64, WORKLOADS)
        space = DesignSpace(endpoints=64)
        with pytest.raises(ConfigError, match="budget"):
            run_search(space, make_strategy("grid", space), ladder, budget=0)
        with pytest.raises(ConfigError, match="halving"):
            run_search(space, make_strategy("grid", space), ladder,
                       budget=4, halving=1)


class TestReport:
    def test_written_report_round_trips(self, tmp_path):
        result = small_search()
        path = write_report(result, tmp_path / "report.json")
        doc = validate_report_file(path)
        assert doc["schema"] == REPORT_SCHEMA_VERSION
        assert doc["meta"]["endpoints"] == 64
        assert doc["meta"]["workloads"] == list(WORKLOADS)
        front_labels = {row["label"] for row in doc["front"]}
        assert {"fattree", "torus"} & front_labels

    def test_validator_rejects_wrong_schema(self):
        with pytest.raises(ConfigError, match="schema"):
            validate_report({"schema": "bogus"})

    def test_validator_rejects_dominated_front(self, tmp_path):
        result = small_search()
        path = write_report(result, tmp_path / "report.json")
        doc = validate_report_file(path)
        doc["front"].append({
            "label": "impostor", "baseline": False,
            "objectives": {"makespan": 99.0, "cost": 9.0, "power": 9.0}})
        with pytest.raises(ConfigError, match="non-dominated"):
            validate_report(doc)

    def test_validator_rejects_malformed_evaluations(self, tmp_path):
        result = small_search()
        doc = validate_report_file(write_report(result, tmp_path / "r.json"))
        doc["evaluations"].append({"label": "x", "rank": 9})
        with pytest.raises(ConfigError, match="malformed evaluation"):
            validate_report(doc)
