"""Tests for the job scheduling substrate (allocation + co-scheduling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.flows import FlowBuilder
from repro.errors import ConfigError
from repro.scheduling import (Job, aligned_allocation, coschedule,
                              contiguous_allocation, merge_flowsets,
                              random_allocation)
from repro.scheduling.allocator import by_name
from repro.topology import FatTreeTopology, NestTree, TorusTopology


@pytest.fixture(scope="module")
def hybrid():
    return NestTree(64, 2, 2)


class TestAllocators:
    def test_contiguous_blocks(self, hybrid):
        allocs = contiguous_allocation(hybrid, [8, 16])
        assert allocs[0].tolist() == list(range(8))
        assert allocs[1].tolist() == list(range(8, 24))

    def test_random_disjoint_and_seeded(self, hybrid):
        a = random_allocation(hybrid, [10, 10], seed=4)
        b = random_allocation(hybrid, [10, 10], seed=4)
        assert not set(a[0]).intersection(a[1])
        assert (a[0] == b[0]).all()

    def test_aligned_whole_subtori(self, hybrid):
        allocs = aligned_allocation(hybrid, [8, 12])
        # job 0 gets subtorus 0; job 1 starts on a fresh subtorus boundary
        assert allocs[0].tolist() == list(range(8))
        assert allocs[1][0] == 8
        assert allocs[1][0] % hybrid.plan.nodes == 0

    def test_aligned_needs_hybrid(self):
        with pytest.raises(ConfigError):
            aligned_allocation(TorusTopology((4, 4)), [4])

    def test_aligned_capacity_in_subtori(self, hybrid):
        # 8 subtori of 8 nodes: 8 jobs of 1 node each consume all subtori
        aligned_allocation(hybrid, [1] * 8)
        with pytest.raises(ConfigError):
            aligned_allocation(hybrid, [1] * 9)

    def test_overcommit_rejected(self, hybrid):
        with pytest.raises(ConfigError):
            contiguous_allocation(hybrid, [60, 60])

    def test_by_name(self, hybrid):
        for policy in ("contiguous", "random", "aligned"):
            allocs = by_name(policy, hybrid, [8, 8])
            assert not set(allocs[0]).intersection(allocs[1])
        with pytest.raises(ConfigError):
            by_name("greedy", hybrid, [8])


class TestMergeFlowsets:
    def test_offsets(self):
        b1 = FlowBuilder(2)
        f = b1.add_flow(0, 1, 1.0)
        b1.add_flow(1, 0, 2.0, after=[f])
        b2 = FlowBuilder(3)
        b2.add_flow(2, 0, 3.0)
        merged, slices = merge_flowsets([b1.build(), b2.build()])
        assert merged.num_tasks == 5
        assert merged.num_flows == 3
        assert merged.src.tolist() == [0, 1, 4]
        assert merged.dst.tolist() == [1, 0, 2]
        assert slices == [slice(0, 2), slice(2, 3)]

    def test_dependencies_stay_within_jobs(self):
        b1 = FlowBuilder(2)
        f = b1.add_flow(0, 1, 1.0)
        b1.add_flow(1, 0, 1.0, after=[f])
        b2 = FlowBuilder(2)
        g = b2.add_flow(0, 1, 1.0)
        b2.add_flow(1, 0, 1.0, after=[g])
        merged, _ = merge_flowsets([b1.build(), b2.build()])
        assert merged.successors(0).tolist() == [1]
        assert merged.successors(2).tolist() == [3]
        assert merged.indegree.tolist() == [0, 1, 0, 1]
        merged.topological_order()  # acyclic

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            merge_flowsets([])


class TestCoschedule:
    def test_validation(self, hybrid):
        jobs = [Job("a", "reduce", 8)]
        with pytest.raises(ConfigError):
            coschedule(hybrid, jobs, [])  # missing allocation
        with pytest.raises(ConfigError):
            coschedule(hybrid, jobs, [np.arange(4)])  # wrong size
        with pytest.raises(ConfigError):
            coschedule(hybrid, jobs * 2,
                       [np.arange(8), np.arange(8)])  # overlap

    def test_disjoint_jobs_no_interference(self):
        """Jobs on disjoint leaf switches of a fattree don't interact."""
        topo = FatTreeTopology((4, 4))
        jobs = [Job("a", "reduce", 4), Job("b", "reduce", 4)]
        allocs = contiguous_allocation(topo, [4, 4])
        result = coschedule(topo, jobs, allocs, fidelity="exact")
        for j in result.jobs:
            assert j.slowdown == pytest.approx(1.0)

    def test_interference_detected(self):
        """Two pair-wise-exchange jobs squeezing through sparse uplinks slow
        each other down; NIC-bound traffic would mask the effect, so the
        bisection workload (one flow per node per round) is the probe."""
        hybrid = NestTree(64, 2, 8)  # sparse uplinks: shared chokepoints
        jobs = [Job("a", "bisection", 32, seed=1, params={"rounds": 4}),
                Job("b", "bisection", 32, seed=2, params={"rounds": 4})]
        allocs = random_allocation(hybrid, [32, 32], seed=0)
        result = coschedule(hybrid, jobs, allocs)
        assert result.worst_slowdown() > 1.2
        assert result.batch_makespan >= max(j.makespan for j in result.jobs) \
            - 1e-12
        assert "slowdowns" in result.summary()

    def test_denser_uplinks_absorb_interference(self):
        """The paper's density knob also buys multi-job isolation."""
        jobs = [Job("a", "bisection", 32, seed=1, params={"rounds": 4}),
                Job("b", "bisection", 32, seed=2, params={"rounds": 4})]
        dense = NestTree(64, 2, 2)
        sparse = NestTree(64, 2, 8)
        r_dense = coschedule(dense, jobs,
                             random_allocation(dense, [32, 32], seed=0))
        r_sparse = coschedule(sparse, jobs,
                              random_allocation(sparse, [32, 32], seed=0))
        assert r_dense.mean_slowdown() < r_sparse.mean_slowdown()

    def test_aligned_beats_random_on_hybrid(self, hybrid):
        """The paper's lower tier isolates subtorus-aligned jobs: local
        traffic never shares links, so interference drops."""
        jobs = [Job(f"j{i}", "nearneighbors", 8,
                    params={"dims": 3, "diagonals": False}, seed=i)
                for i in range(4)]
        aligned = coschedule(hybrid, jobs,
                             aligned_allocation(hybrid, [8] * 4))
        fragmented = coschedule(hybrid, jobs,
                                random_allocation(hybrid, [8] * 4, seed=3))
        assert aligned.mean_slowdown() <= fragmented.mean_slowdown()
        assert aligned.mean_slowdown() == pytest.approx(1.0, abs=0.05)
