"""Tests for the generalised hypercube fabric and topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.routing import ecube
from repro.topology import GHCFabric, GHCTopology
from repro.topology.linktable import LinkTable


class TestFabric:
    def test_counts(self):
        fabric = GHCFabric((4, 4), 4)
        assert fabric.num_switches == 16
        assert fabric.num_ports == 64

    def test_coord_roundtrip(self):
        fabric = GHCFabric((3, 4, 2), 1)
        for sw in range(fabric.num_switches):
            assert fabric.index_of(fabric.coord_of(sw)) == sw

    def test_invalid(self):
        with pytest.raises(TopologyError):
            GHCFabric((1, 4), 1)
        with pytest.raises(TopologyError):
            GHCFabric((4, 4), 0)

    def test_for_ports_divides_density(self):
        # 24 ports at pps=16 -> drops to pps=12 (largest divisor <= 16)
        fabric = GHCFabric.for_ports(24, 16, 2)
        assert fabric.ports_per_switch == 12
        assert fabric.num_switches * fabric.ports_per_switch == 24

    def test_for_ports_paper_scale(self):
        fabric = GHCFabric.for_ports(131072, 16, 4)
        assert fabric.num_switches == 8192          # paper Table 2, u=1
        assert sorted(fabric.radices) == [8, 8, 8, 16]
        assert fabric.routing_diameter() == 6       # paper Table 1, (2,1)

    def test_link_count(self):
        fabric = GHCFabric((3, 4), 1)
        table = LinkTable()
        fabric.build_links(table, 0, 1.0)
        # undirected edges: S * degree / 2; directed doubles it
        expected = fabric.num_switches * ecube.degree((3, 4))
        assert table.num_links == expected


class TestTopology:
    def test_counts(self, small_ghc):
        assert small_ghc.num_endpoints == 64
        assert small_ghc.num_switches == 16

    def test_connected(self, small_ghc):
        assert nx.is_connected(small_ghc.to_networkx())

    def test_switch_degree(self, small_ghc):
        g = small_ghc.to_networkx()
        for sw in range(64, 64 + 16):
            # 4 endpoints + (3 + 3) fabric neighbours
            assert g.degree(sw) == 4 + 6

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_route_is_valid_walk(self, src, dst):
        topo = GHCTopology((4, 4), ports_per_switch=4)
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    def test_same_switch_two_hops(self, small_ghc):
        # endpoints 0..3 share switch 0
        assert small_ghc.hops(0, 1) == 2

    def test_hops_equal_hamming_plus_access(self, small_ghc):
        fabric = small_ghc.fabric
        for src, dst in [(0, 5), (0, 63), (17, 42)]:
            a = fabric.coord_of(fabric.port_switch(src))
            b = fabric.coord_of(fabric.port_switch(dst))
            assert small_ghc.hops(src, dst) == \
                ecube.hamming(a, b, fabric.radices) + 2

    def test_routing_is_minimal(self, small_ghc):
        g = small_ghc.to_networkx()
        lengths = nx.single_source_shortest_path_length(g, 0)
        for dst in range(1, 64):
            assert small_ghc.hops(0, dst) == lengths[dst]

    def test_diameter(self, small_ghc):
        brute = max(small_ghc.hops(s, d)
                    for s in range(64) for d in range(64) if s != d)
        assert small_ghc.routing_diameter() == brute == 4
