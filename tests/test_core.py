"""Tests for configs, the design-space explorer and normalisation."""

from __future__ import annotations

import pytest

from repro.core import (DesignSpaceExplorer, PAPER_CONFIGS, TopologySpec,
                        WorkloadSpec, baseline_specs, hybrid_specs)
from repro.errors import ConfigError


class TestSpecs:
    def test_paper_configs_are_the_twelve(self):
        assert len(PAPER_CONFIGS) == 12
        assert set(t for t, _ in PAPER_CONFIGS) == {2, 4, 8}
        assert set(u for _, u in PAPER_CONFIGS) == {1, 2, 4, 8}

    def test_hybrid_specs_pair_families(self):
        specs = hybrid_specs([(2, 4)])
        assert [s.family for s in specs] == ["nestghc", "nesttree"]
        assert specs[0].label() == "nestghc(2,4)"

    def test_baselines(self):
        assert [s.family for s in baseline_specs()] == ["fattree", "torus"]
        assert baseline_specs()[0].label() == "fattree"

    def test_topology_spec_builds(self):
        topo = TopologySpec("nesttree", {"t": 2, "u": 2}).build(64)
        assert topo.name == "nesttree"

    def test_workload_spec_task_resolution(self):
        assert WorkloadSpec("reduce").resolve_tasks(64) == 64
        assert WorkloadSpec("reduce", tasks=8).resolve_tasks(64) == 8
        with pytest.raises(ConfigError):
            WorkloadSpec("reduce", tasks=128).resolve_tasks(64)


class TestExplorer:
    @pytest.fixture(scope="class")
    def table(self):
        explorer = DesignSpaceExplorer(
            64, configs=[(2, 1), (2, 2)], fidelity="approx",
            quadratic_tasks=16)
        return explorer.run(["reduce", "unstructuredapp", "mapreduce"])

    def test_all_cells_present(self, table):
        # 3 workloads x (2 configs x 2 families + 2 baselines)
        assert len(table.records) == 3 * 6
        assert set(table.workloads()) == {"reduce", "unstructuredapp",
                                          "mapreduce"}

    def test_quadratic_task_cap_applied(self, table):
        cell = table.cell("mapreduce", "fattree")
        # 16 tasks: (16-1) + 16*15 + (16-1) flows
        assert cell.num_flows == 15 + 240 + 15

    def test_normalisation_reference_is_one(self, table):
        norm = table.normalised("reduce")
        assert norm["fattree"] == pytest.approx(1.0)
        assert len(norm) == 6

    def test_reduce_is_flat_everywhere(self, table):
        """Paper Section 5.2: consumption-port bound, identical makespans."""
        norm = table.normalised("reduce")
        assert max(norm.values()) / min(norm.values()) == \
            pytest.approx(1.0, abs=1e-6)

    def test_topology_cache_reused(self):
        explorer = DesignSpaceExplorer(64, configs=[(2, 1)])
        spec = explorer.topology_specs()[0]
        assert explorer.topology(spec) is explorer.topology(spec)

    def test_csv_roundtrip_shape(self, table):
        csv = table.to_csv()
        lines = csv.strip().split("\n")
        assert len(lines) == 1 + len(table.records)
        assert lines[0].startswith("workload,topology")

    def test_missing_cell_raises(self, table):
        with pytest.raises(KeyError):
            table.cell("reduce", "dragonfly")


class TestWorkloadDefaults:
    def test_quadratic_workloads_capped(self):
        explorer = DesignSpaceExplorer(4096, quadratic_tasks=128)
        assert explorer.workload_spec("mapreduce").tasks == 128
        assert explorer.workload_spec("nbodies").tasks == 128
        assert explorer.workload_spec("allreduce").tasks is None

    def test_small_systems_not_padded(self):
        explorer = DesignSpaceExplorer(64, quadratic_tasks=128)
        assert explorer.workload_spec("mapreduce").tasks == 64


class TestPlacementPolicy:
    def test_nbodies_gets_fragmented_allocation(self):
        from repro.core.explorer import PLACEMENT_POLICY

        explorer = DesignSpaceExplorer(512, quadratic_tasks=64)
        assert PLACEMENT_POLICY["nbodies"] == "random"
        placement = explorer._placement("nbodies", 64)
        spread = explorer._placement("mapreduce", 64)
        assert placement is not None and spread is not None
        # random placement is scattered, spread is strided
        assert sorted(placement.tolist()) != placement.tolist()
        assert spread.tolist() == sorted(spread.tolist())

    def test_full_occupancy_is_identity(self):
        explorer = DesignSpaceExplorer(64)
        assert explorer._placement("allreduce", 64) is None


class TestSkippedConfigs:
    def test_infeasible_subtori_are_skipped(self):
        explorer = DesignSpaceExplorer(64)  # t=8 needs 512 endpoints
        assert all(t != 8 for t, _ in explorer.configs)
        assert (8, 1) in explorer.skipped_configs

    def test_big_systems_keep_everything(self):
        explorer = DesignSpaceExplorer(512)
        assert len(explorer.configs) == 12
        assert explorer.skipped_configs == ()
