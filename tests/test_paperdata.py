"""Tests for the transcribed paper data and internal consistency."""

from __future__ import annotations

import pytest

from repro.core import paperdata
from repro.core.config import PAPER_CONFIGS


class TestTables:
    def test_table1_covers_every_design_point(self):
        assert set(paperdata.TABLE1) == set(PAPER_CONFIGS)

    def test_table2_covers_every_design_point(self):
        assert set(paperdata.TABLE2) == set(PAPER_CONFIGS)

    def test_table2_depends_only_on_u(self):
        """The paper's switch counts are a function of density alone."""
        for u in (1, 2, 4, 8):
            rows = {paperdata.TABLE2[(t, u)] for t in (2, 4, 8)}
            assert len(rows) == 1

    def test_table1_distances_decrease_with_density(self):
        for t in (2, 4, 8):
            ghc = [paperdata.TABLE1[(t, u)][0] for u in (8, 4, 2, 1)]
            tree = [paperdata.TABLE1[(t, u)][1] for u in (8, 4, 2, 1)]
            assert ghc == sorted(ghc, reverse=True)
            assert tree == sorted(tree, reverse=True)

    def test_ghc_always_at_most_tree(self):
        """'the generalised hypercube provides shorter paths by a slight
        margin' — holds in every published row."""
        for (t, u), (avg_g, avg_t, _, _) in paperdata.TABLE1.items():
            assert avg_g <= avg_t, (t, u)

    def test_cost_model_consistency(self):
        """Published percentages equal switches x (0.75 | 0.25) / N."""
        for (t, u), row in paperdata.TABLE2.items():
            _, sw_tree, _, cost_tree, _, power_tree = row
            n = paperdata.PAPER_ENDPOINTS
            assert cost_tree == pytest.approx(sw_tree * 0.75 / n * 100,
                                              abs=0.005)
            assert power_tree == pytest.approx(sw_tree * 0.25 / n * 100,
                                               abs=0.005)


class TestClaims:
    def test_every_workload_has_exactly_one_claim(self):
        from repro.workloads import heavy_workloads, light_workloads

        claimed = {c.workload for c in paperdata.FIGURE_CLAIMS}
        assert claimed == set(heavy_workloads()) | set(light_workloads())

    def test_claims_partition_by_figure(self):
        fig4 = {c.workload for c in paperdata.claims_for(4)}
        fig5 = {c.workload for c in paperdata.claims_for(5)}
        assert not fig4 & fig5
        assert len(fig4) == 6 and len(fig5) == 5

    def test_figure_assignment_matches_classification(self):
        from repro.workloads import build

        for claim in paperdata.FIGURE_CLAIMS:
            wl = build(claim.workload, 16)
            expected = "heavy" if claim.figure == 4 else "light"
            assert wl.classification == expected, claim.workload
