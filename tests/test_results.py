"""Tests for the simulation result record (timeline metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP


@pytest.fixture(scope="module")
def line():
    return TorusTopology((4,), wraparound=False)


class TestStartTimes:
    def test_roots_start_at_zero(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)
        b.add_flow(2, 3, CAP)
        r = simulate(line, b.build())
        assert np.allclose(r.start_times, 0.0)

    def test_released_flows_start_at_predecessor_completion(self, line):
        b = FlowBuilder(4)
        first = b.add_flow(0, 1, CAP)
        second = b.add_flow(1, 2, CAP, after=[first])
        r = simulate(line, b.build())
        assert r.start_times[second] == pytest.approx(
            r.completion_times[first])

    def test_durations(self, line):
        b = FlowBuilder(4)
        first = b.add_flow(0, 1, CAP)
        b.add_flow(1, 2, CAP / 2, after=[first])
        r = simulate(line, b.build())
        assert r.flow_durations[0] == pytest.approx(1.0)
        assert r.flow_durations[1] == pytest.approx(0.5)


class TestConcurrencyProfile:
    def test_sequential_chain_has_one_in_flight(self, line):
        b = FlowBuilder(4)
        prev = None
        for i in range(5):
            prev = b.add_flow(i % 3, i % 3 + 1, CAP / 10,
                              after=[prev] if prev is not None else [])
        r = simulate(line, b.build())
        profile = r.concurrency_profile(50)
        assert profile.max() == 1
        assert profile.min() >= 1  # something always in flight

    def test_parallel_burst(self, line):
        b = FlowBuilder(4)
        for i in range(8):
            b.add_flow(0, 3, CAP / 10)
        r = simulate(line, b.build())
        assert r.concurrency_profile(20).max() == 8

    def test_empty_run(self, line):
        r = simulate(line, FlowBuilder(2).build())
        assert (r.concurrency_profile(10) == 0).all()

    def test_heavy_vs_light_signature(self, line):
        """The profile separates the paper's heavy/light classification."""
        from repro.topology import TorusTopology
        from repro.workloads import Sweep3D, UnstructuredApp

        topo = TorusTopology((4, 4, 4))
        heavy = simulate(topo, UnstructuredApp(64, seed=0).build())
        light = simulate(topo, Sweep3D(64).build())
        assert heavy.concurrency_profile(50).max() > \
            4 * light.concurrency_profile(50).max()
