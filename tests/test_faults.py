"""Tests for the fault-tolerance analysis."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import NestTree, TorusTopology
from repro.topology.faults import (failover_coverage, reroute_uplinks,
                                   route_survives, sample_link_failures,
                                   vulnerability)


@pytest.fixture(scope="module")
def hybrid():
    return NestTree(64, 2, 2)


class TestSampling:
    def test_failures_are_cables(self, hybrid):
        failed = sample_link_failures(hybrid, 5, seed=1)
        assert len(failed) == 10  # both directions of each cable
        for lid in failed:
            u, v = hybrid.links.endpoints_of(lid)
            assert hybrid.links.id_of(v, u) in failed

    def test_nic_links_never_fail(self, hybrid):
        failed = sample_link_failures(hybrid, 50, seed=2)
        nic = set(hybrid.injection_links.tolist()
                  + hybrid.consumption_links.tolist())
        assert not failed & nic

    def test_deterministic_by_seed(self, hybrid):
        assert sample_link_failures(hybrid, 5, seed=3) == \
            sample_link_failures(hybrid, 5, seed=3)

    def test_too_many_rejected(self, hybrid):
        with pytest.raises(TopologyError):
            sample_link_failures(hybrid, 10_000)


class TestVulnerability:
    def test_no_failures_no_breakage(self, hybrid):
        report = vulnerability(hybrid, set(), pairs=100)
        assert report.broken_pairs == 0
        assert report.broken_fraction == 0.0

    def test_failures_break_deterministic_routes(self, hybrid):
        failed = sample_link_failures(hybrid, 20, seed=0)
        report = vulnerability(hybrid, failed, pairs=300, seed=0)
        assert report.broken_pairs > 0
        assert report.disconnected_pairs <= report.broken_pairs
        assert "broken" in report.summary()

    def test_most_breakage_is_reroutable(self):
        """A torus keeps high path diversity: killing a few cables rarely
        disconnects anything, it only breaks the deterministic DOR path."""
        topo = TorusTopology((4, 4, 4))
        failed = sample_link_failures(topo, 8, seed=1)
        report = vulnerability(topo, failed, pairs=400, seed=1)
        assert report.broken_pairs > 0
        assert report.reroutable_fraction > 0.9

    def test_route_survives(self, hybrid):
        route = set(hybrid.route(0, 63))
        lid = next(iter(route))
        assert not route_survives(hybrid, 0, 63, {lid})
        assert route_survives(hybrid, 0, 63, set())


class TestOptionalNetworkx:
    def test_vulnerability_fails_fast_without_networkx(self, hybrid,
                                                       monkeypatch):
        import sys

        from repro.errors import ReproError

        # None in sys.modules makes `import networkx` raise ImportError
        monkeypatch.setitem(sys.modules, "networkx", None)
        with pytest.raises(ReproError, match=r"install networkx.*faults"):
            vulnerability(hybrid, set(), pairs=10)

    def test_jellyfish_fails_fast_without_networkx(self, monkeypatch):
        import sys

        from repro.errors import ReproError
        from repro.topology import build

        monkeypatch.setitem(sys.modules, "networkx", None)
        with pytest.raises(ReproError, match="install networkx"):
            build("jellyfish", 64)


class TestUplinkFailover:
    def test_healthy_path_unchanged(self, hybrid):
        assert reroute_uplinks(hybrid, 0, 63, set()) == \
            hybrid.vertex_path(0, 63)

    def test_failed_designated_uplink_port_is_avoided(self, hybrid):
        src, dst = 1, 63  # different subtori
        us = hybrid.designated_uplink(src)
        path = reroute_uplinks(hybrid, src, dst, {us})
        # the dead port is never used to enter the upper tier (the node may
        # still appear as a torus transit hop — only its port is dead)
        switch_lo = hybrid.num_endpoints
        for a, b in zip(path, path[1:]):
            assert not (a == us and b >= switch_lo)
            assert not (b == us and a >= switch_lo)
            assert hybrid.links.has(a, b)
        assert path[0] == src and path[-1] == dst

    def test_intra_subtorus_unaffected(self, hybrid):
        us = hybrid.designated_uplink(1)
        assert reroute_uplinks(hybrid, 1, 3, {us}) == hybrid.vertex_path(1, 3)

    def test_all_uplinks_dead_raises(self, hybrid):
        # kill every uplink of subtorus 0
        dead = {l for l in range(hybrid.plan.nodes)
                if (l % hybrid.plan.nodes) in hybrid.plan.uplink_rank}
        with pytest.raises(TopologyError):
            reroute_uplinks(hybrid, 1, 63, dead)

    def test_rejects_non_hybrids(self):
        with pytest.raises(TopologyError):
            reroute_uplinks(TorusTopology((4, 4)), 0, 1, set())

    def test_coverage_degrades_gracefully(self, hybrid):
        full = failover_coverage(hybrid, set(), pairs=200)
        assert full == 1.0
        one_dead = failover_coverage(hybrid, {hybrid.designated_uplink(0)},
                                     pairs=200)
        assert 0.5 < one_dead <= 1.0
