"""Property-based tests of the end-to-end simulator.

Random small workloads (random sizes, random forward-edge DAGs, random
endpoints) on a small torus must always satisfy the engine's core
invariants, in both fidelities.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import analyze, simulate
from repro.engine.flows import FlowBuilder, FlowSet
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP

TOPO = TorusTopology((4, 2))


@st.composite
def random_flowset(draw) -> FlowSet:
    n = draw(st.integers(1, 25))
    b = FlowBuilder(8)
    for _ in range(n):
        b.add_flow(draw(st.integers(0, 7)), draw(st.integers(0, 7)),
                   CAP * draw(st.floats(0.001, 0.2)),
                   weight=draw(st.sampled_from([1.0, 1.0, 2.0, 0.5])))
    for _ in range(draw(st.integers(0, 30))):
        if n < 2:
            break
        succ = draw(st.integers(1, n - 1))
        pred = draw(st.integers(0, succ - 1))
        b.add_dependency(pred, succ)
    return b.build()


class TestInvariants:
    @given(random_flowset(), st.sampled_from(["exact", "approx"]))
    @settings(max_examples=80, deadline=None)
    def test_core_invariants(self, flows, fidelity):
        result = simulate(TOPO, flows, fidelity=fidelity)
        times = result.completion_times
        starts = result.start_times

        # every flow completes, after it starts
        assert not np.isnan(times).any()
        assert (times >= starts - 1e-12).all()
        # makespan is the last completion
        assert result.makespan == pytest.approx(times.max())
        # dependencies are respected
        for pred in range(flows.num_flows):
            for succ in flows.successors(pred).tolist():
                assert starts[succ] >= times[pred] - 1e-9
        # no networked flow beats its own uncontended transfer time;
        # zero-hop flows (src task == dst task here, so co-located under
        # the identity placement) complete instantly by design
        lower = flows.size / CAP
        networked = flows.src != flows.dst
        assert ((times - starts)[networked]
                >= lower[networked] * (1 - 1e-9)).all()
        assert (times[~networked] == starts[~networked]).all()

    @given(random_flowset())
    @settings(max_examples=40, deadline=None)
    def test_static_bound_lower_bounds_exact_makespan(self, flows):
        static = analyze(TOPO, flows)
        dynamic = simulate(TOPO, flows, fidelity="exact")
        assert static.bottleneck_time <= dynamic.makespan * (1 + 1e-9)

    @given(random_flowset())
    @settings(max_examples=40, deadline=None)
    def test_approx_tracks_exact(self, flows):
        exact = simulate(TOPO, flows, fidelity="exact").makespan
        approx = simulate(TOPO, flows, fidelity="approx").makespan
        assert approx == pytest.approx(exact, rel=0.25)

    @given(random_flowset())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, flows):
        a = simulate(TOPO, flows, fidelity="exact")
        b = simulate(TOPO, flows, fidelity="exact")
        assert np.allclose(a.completion_times, b.completion_times)

    @given(random_flowset(), st.floats(1.5, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_capacity_scaling(self, flows, factor):
        """Scaling every capacity by f scales every completion by 1/f."""
        fast = TorusTopology((4, 2), link_capacity=CAP * factor)
        base = simulate(TOPO, flows, fidelity="exact")
        scaled = simulate(fast, flows, fidelity="exact")
        assert np.allclose(scaled.completion_times * factor,
                           base.completion_times, rtol=1e-6)
