"""Tests for the persistent incremental max-min allocator.

The :class:`~repro.engine.active.ActiveSet` must produce the *same* rates
as the reference :func:`repro.engine.maxmin.allocate` on whatever flow set
it currently holds — after any interleaving of admissions and retirements,
on every topology family, with and without weights, through the warm path
and the full pass alike.  These tests drive it through randomized churn
and compare against the reference on the CSR the set itself gathers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.active import ActiveSet
from repro.engine.flows import FlowBuilder
from repro.engine.maxmin import allocate
from repro.errors import SimulationError
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import AllReduce, Permutation, UnstructuredApp


def _reference_rates(active: ActiveSet, capacities: np.ndarray,
                     weighted: bool) -> np.ndarray:
    """Reference allocation over the set's current flows (slot order)."""
    entries, ptr = active.gather_csr()
    return allocate(entries, ptr, capacities,
                    active.weights.copy() if weighted else None)


def _random_route(topo, rng, route_cache):
    """An interned route between two distinct random endpoints."""
    n = topo.num_endpoints
    s = int(rng.integers(n))
    d = int(rng.integers(n))
    while d == s:
        d = int(rng.integers(n))
    key = (s, d)
    route = route_cache.get(key)
    if route is None:
        route = np.asarray(topo.route(s, d), dtype=np.int64)
        route_cache[key] = route
    return route


class TestMembership:
    def test_add_remove_roundtrip(self):
        active = ActiveSet(np.ones(4))
        active.add(7, np.array([0, 1], dtype=np.int64), rate=3.5)
        assert active.size == 1
        assert active.flow_ids.tolist() == [7]
        assert active.remove(7) == 3.5
        assert active.size == 0

    def test_swap_with_last_keeps_alignment(self):
        active = ActiveSet(np.ones(4))
        for fid in (10, 11, 12):
            active.add(fid, np.array([fid - 10], dtype=np.int64),
                       rate=float(fid))
        active.remove(10)  # last slot (12) swaps into slot 0
        ids = active.flow_ids.tolist()
        rates = active.rates.tolist()
        assert sorted(ids) == [11, 12]
        assert rates[ids.index(12)] == 12.0
        assert rates[ids.index(11)] == 11.0

    def test_duplicate_add_rejected(self):
        active = ActiveSet(np.ones(2))
        active.add(0, np.array([0], dtype=np.int64))
        with pytest.raises(SimulationError):
            active.add(0, np.array([1], dtype=np.int64))

    def test_empty_route_rejected(self):
        active = ActiveSet(np.ones(2))
        with pytest.raises(SimulationError):
            active.add(0, np.empty(0, dtype=np.int64))

    def test_nonpositive_weight_rejected(self):
        active = ActiveSet(np.ones(2), weighted=True)
        with pytest.raises(SimulationError):
            active.add(0, np.array([0], dtype=np.int64), weight=0.0)

    def test_remove_unknown_rejected(self):
        active = ActiveSet(np.ones(2))
        with pytest.raises(SimulationError):
            active.remove(99)

    def test_set_rates_length_checked(self):
        active = ActiveSet(np.ones(2))
        active.add(0, np.array([0], dtype=np.int64))
        with pytest.raises(SimulationError):
            active.set_rates(np.zeros(3))

    def test_empty_allocation_is_noop(self):
        active = ActiveSet(np.ones(2))
        stats: dict = {}
        assert active.allocate(stats=stats).shape == (0,)
        assert stats == {"iterations": 0, "warm": False}


class TestChurnMatchesReference:
    """Property test: arbitrary add/remove sequences keep rates exact."""

    def test_random_churn_all_topologies(self, all_small_topologies):
        for t_idx, topo in enumerate(all_small_topologies):
            rng = np.random.default_rng(100 + t_idx)
            caps = topo.links.capacities
            active = ActiveSet(caps)
            route_cache: dict = {}
            alive: list[int] = []
            next_fid = 0
            for step in range(150):
                if alive and rng.random() < 0.45:
                    fid = alive.pop(int(rng.integers(len(alive))))
                    active.remove(fid)
                else:
                    active.add(next_fid,
                               _random_route(topo, rng, route_cache))
                    alive.append(next_fid)
                    next_fid += 1
                if active.size and step % 3 == 0:
                    got = active.allocate().copy()
                    want = _reference_rates(active, caps, weighted=False)
                    np.testing.assert_allclose(got, want, rtol=1e-12)
            # the sequence must have taken both code paths at least once
            assert active.full_passes > 0

    def test_random_churn_weighted(self, small_torus):
        rng = np.random.default_rng(17)
        caps = small_torus.links.capacities
        active = ActiveSet(caps, weighted=True)
        route_cache: dict = {}
        alive: list[int] = []
        next_fid = 0
        for step in range(120):
            if alive and rng.random() < 0.45:
                fid = alive.pop(int(rng.integers(len(alive))))
                active.remove(fid)
            else:
                active.add(next_fid,
                           _random_route(small_torus, rng, route_cache),
                           weight=float(rng.uniform(0.5, 4.0)))
                alive.append(next_fid)
                next_fid += 1
            if active.size and step % 3 == 0:
                got = active.allocate().copy()
                want = _reference_rates(active, caps, weighted=True)
                np.testing.assert_allclose(got, want, rtol=1e-9)
        assert active.warm_fills == 0  # weighted sets never warm-fill

    def test_pool_growth_and_compaction(self):
        """Heavy churn through pool exhaustion keeps rates exact."""
        rng = np.random.default_rng(5)
        caps = np.full(16, CAP)
        active = ActiveSet(caps)
        alive: list[int] = []
        next_fid = 0
        for step in range(800):
            if alive and (rng.random() < 0.5 or len(alive) > 120):
                fid = alive.pop(int(rng.integers(len(alive))))
                active.remove(fid)
            else:
                length = int(rng.integers(1, 7))
                route = rng.choice(16, size=length,
                                   replace=False).astype(np.int64)
                active.add(next_fid, route)
                alive.append(next_fid)
                next_fid += 1
            if active.size and step % 25 == 0:
                got = active.allocate().copy()
                want = _reference_rates(active, caps, weighted=False)
                np.testing.assert_allclose(got, want, rtol=1e-12)


class TestWarmPath:
    def test_route_swap_takes_warm_path(self, small_torus):
        caps = small_torus.links.capacities
        r1 = np.asarray(small_torus.route(0, 5), dtype=np.int64)
        r2 = np.asarray(small_torus.route(3, 9), dtype=np.int64)
        active = ActiveSet(caps)
        active.add(0, r1)
        active.add(1, r2)
        active.add(2, r1)
        active.allocate()
        assert active.full_passes == 1

        # retire one flow and replace it with the *same* route object:
        # the multiset of routes is unchanged, so the warm path applies
        active.remove(0)
        active.add(3, r1)
        stats: dict = {}
        got = active.allocate(stats=stats).copy()
        assert stats["warm"] is True and stats["iterations"] == 0
        assert active.warm_fills == 1 and active.full_passes == 1
        want = _reference_rates(active, caps, weighted=False)
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_changed_multiset_takes_full_pass(self, small_torus):
        caps = small_torus.links.capacities
        r1 = np.asarray(small_torus.route(0, 5), dtype=np.int64)
        r2 = np.asarray(small_torus.route(3, 9), dtype=np.int64)
        active = ActiveSet(caps)
        active.add(0, r1)
        active.allocate()
        active.add(1, r2)  # genuinely new route: no warm fill
        stats: dict = {}
        active.allocate(stats=stats)
        assert stats["warm"] is False
        assert active.full_passes == 2

    def test_set_rates_invalidates_levels(self, small_torus):
        caps = small_torus.links.capacities
        r1 = np.asarray(small_torus.route(0, 5), dtype=np.int64)
        active = ActiveSet(caps)
        active.add(0, r1)
        active.allocate()
        entries, ptr = active.gather_csr()
        active.set_rates(allocate(entries, ptr, caps))
        active.remove(0)
        active.add(1, r1)
        stats: dict = {}
        active.allocate(stats=stats)
        # externally installed rates poison the recorded water levels
        assert stats["warm"] is False


class TestSimulatorEquivalence:
    """The incremental and rebuild allocators must agree end to end."""

    WORKLOADS = (
        lambda n: AllReduce(n).build(),
        lambda n: UnstructuredApp(n, messages_per_task=3, seed=7).build(),
        lambda n: Permutation(n, repetitions=3).build(),
    )

    def test_identical_results_all_topologies(self, all_small_topologies):
        for topo in all_small_topologies:
            for make in self.WORKLOADS:
                flows = make(topo.num_endpoints)
                for fidelity in ("exact", "approx"):
                    inc = simulate(topo, flows, fidelity=fidelity)
                    reb = simulate(topo, flows, fidelity=fidelity,
                                   allocator="rebuild")
                    assert inc.events == reb.events
                    assert inc.makespan == \
                        pytest.approx(reb.makespan, rel=1e-12)
                    np.testing.assert_allclose(
                        inc.completion_times, reb.completion_times,
                        rtol=1e-9)

    def test_weighted_flows_agree(self, small_torus):
        b = FlowBuilder(8)
        rng = np.random.default_rng(3)
        for _ in range(24):
            s, d = int(rng.integers(8)), int(rng.integers(8))
            b.add_flow(s, d, float(rng.uniform(1, 4)) * CAP,
                       weight=float(rng.uniform(0.5, 3.0)))
        flows = b.build()
        inc = simulate(small_torus, flows)
        reb = simulate(small_torus, flows, allocator="rebuild")
        assert inc.makespan == pytest.approx(reb.makespan, rel=1e-9)

    def test_unknown_allocator_rejected(self, small_torus):
        b = FlowBuilder(2)
        b.add_flow(0, 1, CAP)
        with pytest.raises(SimulationError, match="allocator"):
            simulate(small_torus, b.build(), allocator="magic")

    def test_allocator_stats_reported(self, small_torus):
        flows = Permutation(small_torus.num_endpoints,
                            repetitions=4).build()
        inc = simulate(small_torus, flows)
        assert inc.allocator_stats is not None
        assert inc.allocator_stats["allocator"] == "incremental"
        assert inc.allocator_stats["full_passes"] >= 1
        # chained identical-route releases are the warm path's use case
        assert inc.allocator_stats["warm_fills"] > 0
        reb = simulate(small_torus, flows, allocator="rebuild")
        assert reb.allocator_stats["allocator"] == "rebuild"
        # the rebuild engine recomputes from scratch at every allocation
        assert reb.allocator_stats["full_passes"] == reb.reallocations
        assert reb.allocator_stats["warm_fills"] == 0
