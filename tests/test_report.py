"""Tests for the report renderers (Tables 1-2, figure series)."""

from __future__ import annotations

import pytest

from repro.core import DesignSpaceExplorer, claims_report, figure, table1, table2


@pytest.fixture(scope="module")
def small_table():
    explorer = DesignSpaceExplorer(64, configs=[(2, 1), (2, 2)],
                                   fidelity="approx", quadratic_tasks=16)
    return explorer.run(["reduce", "sweep3d"])


class TestTable1:
    def test_small_scale_renders(self):
        text = table1(64, max_pairs=5000, configs=[(2, 1), (2, 2)])
        assert "Table 1" in text
        assert "(2,1)" in text and "(2,2)" in text
        assert "fattree avg" in text and "torus" in text

    def test_no_paper_columns_off_scale(self):
        text = table1(64, max_pairs=2000, configs=[(2, 1)])
        assert "paper" not in text

    def test_paper_columns_forced(self):
        text = table1(64, max_pairs=2000, configs=[(2, 1)],
                      compare_paper=True)
        assert "5.87/5.98" in text  # paper's (2,1) row


class TestTable2:
    def test_small_scale_renders(self):
        text = table2(4096, configs=[(2, 1), (2, 8)])
        assert "sw GHC" in text and "%" in text

    def test_full_scale_matches_paper_fattree_column(self):
        text = table2(131072)
        # Table 2 row (·,1): 9216 tree switches at +5.27% / +1.76%
        assert "9216" in text and "5.27%" in text and "1.76%" in text

    def test_reference_footer(self):
        text = table2(131072)
        assert "Reference: full fattree needs 9216 switches" in text


class TestFigure:
    def test_renders_all_configs(self, small_table):
        text = figure(small_table, ["reduce", "sweep3d"], title="Mini")
        assert "== reduce ==" in text and "== sweep3d ==" in text
        assert "(2,1)" in text and "(2,2)" in text
        assert "NestGHC" in text and "Torus3D" in text

    def test_reference_column_is_unity(self, small_table):
        text = figure(small_table, ["reduce"], title="Mini")
        # the fattree column of every row is 1.000 by construction
        rows = [l for l in text.splitlines()
                if l.strip().startswith("(2")]
        assert rows and all("1.000" in r for r in rows)


class TestClaimsReport:
    def test_runs_on_partial_tables(self, small_table):
        text = claims_report(small_table, 5)
        # only claims whose workloads are present are evaluated
        assert "reduce" in text and "sweep3d" in text
        assert "mapreduce" not in text
        assert text.count("[") == text.count("]") >= 2
