"""Tests for Pareto dominance bookkeeping (repro.search.pareto)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.pareto import (Objectives, ParetoFront, nondominated,
                                 promote)


def obj(makespan, cost=0.0, power=0.0) -> Objectives:
    return Objectives(makespan=makespan, cost=cost, power=power)


def random_entries(rng, n) -> dict[str, Objectives]:
    return {f"d{i}": obj(*rng.uniform(0.0, 2.0, size=3)) for i in range(n)}


def mutually_nondominated(vectors: list[Objectives]) -> bool:
    return not any(a.dominates(b)
                   for a in vectors for b in vectors if a is not b)


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert obj(1.0, 0.1, 0.1).dominates(obj(2.0, 0.2, 0.2))

    def test_better_somewhere_equal_elsewhere(self):
        assert obj(1.0, 0.1, 0.1).dominates(obj(1.0, 0.2, 0.1))

    def test_equal_vectors_do_not_dominate(self):
        assert not obj(1.0, 0.1, 0.1).dominates(obj(1.0, 0.1, 0.1))

    def test_tradeoff_is_incomparable(self):
        fast_costly, slow_cheap = obj(1.0, 0.3, 0.1), obj(2.0, 0.0, 0.0)
        assert not fast_costly.dominates(slow_cheap)
        assert not slow_cheap.dominates(fast_costly)


class TestParetoFront:
    def test_dominated_insert_is_rejected(self):
        front = ParetoFront()
        assert front.add("good", obj(1.0, 0.1, 0.1))
        assert not front.add("bad", obj(2.0, 0.2, 0.2))
        assert "bad" not in front and len(front) == 1

    def test_dominating_insert_evicts_members(self):
        front = ParetoFront()
        front.add("a", obj(2.0, 0.2, 0.2))
        front.add("b", obj(1.5, 0.3, 0.3))
        assert front.add("best", obj(1.0, 0.1, 0.1))
        assert front.members() == [m for m in front.members()
                                   if m.label == "best"]

    def test_duplicate_label_updates_in_place(self):
        front = ParetoFront()
        front.add("a", obj(2.0, 0.0, 0.0))
        front.add("a", obj(1.0, 0.0, 0.0))
        assert len(front) == 1
        assert front.members()[0].objectives.makespan == 1.0

    def test_iteration_order_is_insertion_independent(self):
        entries = [("a", obj(1.0, 0.3, 0.3)), ("b", obj(2.0, 0.2, 0.2)),
                   ("c", obj(3.0, 0.1, 0.1))]
        forward, backward = ParetoFront(), ParetoFront()
        for label, o in entries:
            forward.add(label, o)
        for label, o in reversed(entries):
            backward.add(label, o)
        assert ([m.label for m in forward.members()]
                == [m.label for m in backward.members()])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_front_stays_mutually_nondominated(self, seed):
        rng = np.random.default_rng(seed)
        front = ParetoFront()
        for label, o in random_entries(rng, 60).items():
            front.add(label, o)
        members = front.members()
        assert members
        assert mutually_nondominated([m.objectives for m in members])


class TestPromotion:
    def test_never_promotes_a_dominated_candidate(self):
        entries = {"winner": obj(1.0, 0.1, 0.1),
                   "dominated": obj(2.0, 0.2, 0.2),
                   "tradeoff": obj(3.0, 0.0, 0.0)}
        # cap is big enough for everything, yet the dominated entry stays
        assert promote(entries, cap=3) == ["winner", "tradeoff"]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_promoted_subset_of_nondominated(self, seed):
        rng = np.random.default_rng(seed)
        entries = random_entries(rng, 40)
        for cap in (1, 3, 40):
            promoted = promote(entries, cap=cap)
            assert len(promoted) <= cap
            assert set(promoted) <= set(nondominated(entries))
            for label in promoted:
                assert not any(entries[other].dominates(entries[label])
                               for other in entries if other != label)

    def test_zero_cap_promotes_nothing(self):
        assert promote({"a": obj(1.0)}, cap=0) == []

    def test_nondominated_order_is_deterministic(self):
        rng = np.random.default_rng(5)
        entries = random_entries(rng, 30)
        shuffled = dict(sorted(entries.items(), reverse=True))
        assert nondominated(entries) == nondominated(shuffled)
