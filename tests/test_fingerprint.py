"""Regression tests for the canonical cell fingerprint.

The checkpoint key format is load-bearing: every JSONL checkpoint written
by an earlier release resumes against keys recomputed by this one, so
``SweepCell.key()`` (now a projection of the shared ``fingerprint()``)
must reproduce the historical strings *byte-identically*.  The literals
below were produced by the pre-fingerprint implementation — do not
regenerate them from the code under test.
"""

from __future__ import annotations

import pytest

from repro._version import __version__ as ENGINE_VERSION
from repro.core.config import TopologySpec, WorkloadSpec
from repro.sweep.plan import SweepCell
from repro.topology.timeline import TimelineSpec


def _cell(**kwargs) -> SweepCell:
    defaults = dict(workload=WorkloadSpec("allreduce"),
                    topology=TopologySpec("nesttree", {"t": 2, "u": 4}))
    defaults.update(kwargs)
    return SweepCell(**defaults)


class TestCheckpointKeyRegression:
    """Pinned pre-fingerprint key strings, one per key-affecting axis."""

    def test_healthy_default(self):
        assert _cell().key() == "allreduce@all|nesttree(2,4)"

    def test_baseline_no_params(self):
        cell = _cell(topology=TopologySpec("fattree"))
        assert cell.key() == "allreduce@all|fattree"

    def test_capped_tasks(self):
        cell = _cell(workload=WorkloadSpec("mapreduce", tasks=512))
        assert cell.key() == "mapreduce@512|nesttree(2,4)"

    def test_static_faults(self):
        cell = _cell(fail_links=4, fail_uplinks=2, fail_seed=7)
        assert cell.key() == "allreduce@all|nesttree(2,4)|faults(4,2,s7)"

    def test_routing_policy(self):
        cell = _cell(routing="adaptive")
        assert cell.key() == "allreduce@all|nesttree(2,4)|routing(adaptive)"

    def test_timeline(self):
        cell = _cell(timeline=TimelineSpec(cables=2, seed=3, horizon=0.5,
                                           mttr=0.125))
        assert cell.key() == ("allreduce@all|nesttree(2,4)"
                              "|tl(2,0,s3,h0.5,r0.125)")

    def test_everything_but_faults(self):
        cell = _cell(workload=WorkloadSpec("nbodies", tasks=128),
                     routing="ecmp",
                     timeline=TimelineSpec(cables=1, uplinks=1, seed=0,
                                           horizon=1.0, mttr=None))
        assert cell.key() == ("nbodies@128|nesttree(2,4)|routing(ecmp)"
                              "|tl(1,1,s0,h1,r-)")

    def test_placement_never_in_key(self):
        # checkpoint keys predate the placement axis; two placements of
        # the same cell share a key (but not a fingerprint)
        assert _cell(placement="random").key() == _cell().key()


class TestFingerprint:
    def test_carries_engine_version(self):
        assert _cell().fingerprint()["engine"] == ENGINE_VERSION

    def test_distinguishes_placement(self):
        assert _cell(placement="random").fingerprint() \
            != _cell(placement="spread").fingerprint()

    def test_json_safe_and_deterministic(self):
        import json

        cell = _cell(fail_links=2, fail_seed=1, routing="adaptive")
        a = json.dumps(cell.fingerprint(), sort_keys=True)
        b = json.dumps(_cell(fail_links=2, fail_seed=1,
                             routing="adaptive").fingerprint(),
                       sort_keys=True)
        assert a == b

    @pytest.mark.parametrize("kwargs", [
        {},
        {"fail_links": 3, "fail_seed": 2},
        {"routing": "ecmp"},
        {"timeline": TimelineSpec(cables=2, horizon=0.25)},
    ])
    def test_key_is_projection(self, kwargs):
        """Every key-visible axis also appears in the fingerprint."""
        cell = _cell(**kwargs)
        fp = cell.fingerprint()
        assert fp["topology"] in cell.key()
        assert fp["workload"] in cell.key()
        assert fp["faults"] == cell.fault_fingerprint()
