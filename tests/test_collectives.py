"""Tests for the Reduce and AllReduce workloads."""

from __future__ import annotations

import pytest

from repro.engine import simulate
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import AllReduce, Reduce


class TestReduce:
    def test_flow_count(self):
        fs = Reduce(16).build()
        assert fs.num_flows == 15
        assert fs.num_dependencies == 0

    def test_all_target_root(self):
        fs = Reduce(16, root=3).build()
        assert (fs.dst == 3).all()
        assert 3 not in fs.src

    def test_root_validated(self):
        with pytest.raises(ValueError):
            Reduce(16, root=16)

    def test_consumption_port_serialisation(self):
        """Paper Section 5.2: the root's consumption port is the bottleneck,
        so every topology takes (N-1) * size / capacity."""
        fs = Reduce(16, message_size=CAP / 10).build()
        for dims in [(16,), (4, 4), (4, 2, 2)]:
            topo = TorusTopology(dims)
            r = simulate(topo, fs)
            assert r.makespan == pytest.approx(15 / 10), dims


class TestAllReduce:
    def test_power_of_two_flow_count(self):
        # log2(16) = 4 steps of 16 sends each
        fs = AllReduce(16).build()
        assert fs.num_flows == 16 * 4

    def test_non_power_of_two_adds_fold_phases(self):
        fs = AllReduce(10).build()
        # 2 pre + 8 * 3 steps + 2 post
        assert fs.num_flows == 2 + 8 * 3 + 2

    def test_two_tasks(self):
        fs = AllReduce(2).build()
        assert fs.num_flows == 2
        assert fs.num_dependencies == 0

    def test_partners_are_xor(self):
        fs = AllReduce(8).build()
        src = fs.src.reshape(3, 8)
        dst = fs.dst.reshape(3, 8)
        for step, dist in enumerate([1, 2, 4]):
            assert (dst[step] == (src[step] ^ dist)).all()

    def test_dependency_depth_is_log2(self):
        fs = AllReduce(64).build()
        assert fs.dependency_depth() == 6

    def test_dependencies_link_consecutive_steps(self):
        fs = AllReduce(4).build()
        # step-1 flows (ids 4..7) each wait on own + partner's step-0 send
        assert fs.indegree[:4].tolist() == [0, 0, 0, 0]
        assert fs.indegree[4:].tolist() == [2, 2, 2, 2]

    def test_simulated_time_scales_with_steps(self):
        topo = TorusTopology((16,))
        t4 = simulate(topo, AllReduce(4, message_size=CAP / 100).build())
        t16 = simulate(topo, AllReduce(16, message_size=CAP / 100).build())
        # 2 steps vs 4 steps: more steps -> strictly longer
        assert t16.makespan > t4.makespan

    def test_every_rank_ends_with_result(self):
        """In the final step every rank of the power-of-two core sends."""
        fs = AllReduce(32).build()
        last = fs.src[-32:]
        assert sorted(last.tolist()) == list(range(32))

    def test_completion_order_respects_steps(self):
        topo = TorusTopology((8,))
        fs = AllReduce(8, message_size=CAP / 50).build()
        times = simulate(topo, fs).completion_times.reshape(3, 8)
        assert (times[1] >= times[0].min()).all()
        assert times[2].min() >= times[0].max() - 1e-12
