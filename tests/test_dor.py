"""Unit and property tests for dimension-order routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import dor

radices_st = st.lists(st.integers(min_value=1, max_value=7),
                      min_size=1, max_size=4)


def coords_for(radices):
    return st.tuples(*[st.integers(0, k - 1) for k in radices])


class TestWrapDelta:
    def test_forward_shorter(self):
        assert dor.wrap_delta(0, 2, 8) == 2

    def test_backward_shorter(self):
        assert dor.wrap_delta(0, 6, 8) == -2

    def test_tie_positive(self):
        assert dor.wrap_delta(0, 4, 8) == 4

    def test_radix_two_single_hop(self):
        assert dor.wrap_delta(0, 1, 2) == 1
        assert dor.wrap_delta(1, 0, 2) == 1

    def test_mesh_is_plain_difference(self):
        assert dor.wrap_delta(1, 6, 8, torus=False) == 5
        assert dor.wrap_delta(6, 1, 8, torus=False) == -5

    def test_out_of_range_rejected(self):
        with pytest.raises(RoutingError):
            dor.wrap_delta(8, 0, 8)

    @given(st.integers(2, 16), st.data())
    def test_magnitude_at_most_half_radix(self, k, data):
        s = data.draw(st.integers(0, k - 1))
        d = data.draw(st.integers(0, k - 1))
        assert abs(dor.wrap_delta(s, d, k)) <= k // 2


class TestPath:
    def test_identity(self):
        assert dor.path((1, 1), (1, 1), (4, 4)) == [(1, 1)]

    def test_single_dim(self):
        assert dor.path((0,), (2,), (4,)) == [(0,), (1,), (2,)]

    def test_wraparound_used(self):
        assert dor.path((0,), (3,), (4,)) == [(0,), (3,)]

    def test_dimension_order(self):
        p = dor.path((0, 0), (1, 1), (4, 4))
        assert p == [(0, 0), (1, 0), (1, 1)]  # X first, then Y

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RoutingError):
            dor.path((0, 0), (1,), (4, 4))

    @given(radices_st.filter(lambda r: all(k >= 1 for k in r)), st.data())
    @settings(max_examples=200)
    def test_path_properties(self, radices, data):
        src = data.draw(coords_for(radices))
        dst = data.draw(coords_for(radices))
        p = dor.path(src, dst, radices)
        assert p[0] == src and p[-1] == dst
        # length matches the wrap-aware Manhattan distance
        assert len(p) - 1 == dor.distance(src, dst, radices)
        # each hop changes exactly one coordinate by one (wrap-aware)
        for a, b in zip(p, p[1:]):
            diffs = [(x, y, k) for x, y, k in zip(a, b, radices) if x != y]
            assert len(diffs) == 1
            x, y, k = diffs[0]
            assert (x + 1) % k == y or (x - 1) % k == y
        # no vertex repeats (loop-free)
        assert len(set(p)) == len(p)

    @given(radices_st, st.data())
    @settings(max_examples=100)
    def test_mesh_path_stays_in_bounds(self, radices, data):
        src = data.draw(coords_for(radices))
        dst = data.draw(coords_for(radices))
        for c in dor.path(src, dst, radices, torus=False):
            assert all(0 <= v < k for v, k in zip(c, radices))


class TestIndexing:
    @given(radices_st, st.data())
    @settings(max_examples=200)
    def test_roundtrip(self, radices, data):
        c = data.draw(coords_for(radices))
        assert dor.index_to_coord(dor.coord_to_index(c, radices), radices) == c

    def test_dimension_zero_fastest(self):
        assert dor.coord_to_index((1, 0), (4, 4)) == 1
        assert dor.coord_to_index((0, 1), (4, 4)) == 4

    def test_bad_index_rejected(self):
        with pytest.raises(RoutingError):
            dor.index_to_coord(16, (4, 4))
        with pytest.raises(RoutingError):
            dor.index_to_coord(-1, (4, 4))

    def test_bad_coord_rejected(self):
        with pytest.raises(RoutingError):
            dor.coord_to_index((4, 0), (4, 4))


class TestNeighbors:
    def test_interior_count_3d(self):
        assert len(dor.neighbors((1, 1, 1), (4, 4, 4))) == 6

    def test_radix_two_deduplicated(self):
        # +1 and -1 wrap to the same vertex
        assert dor.neighbors((0,), (2,)) == [(1,)]

    def test_radix_one_dimension_contributes_nothing(self):
        assert dor.neighbors((0, 1), (1, 4)) == [(0, 2), (0, 0)]

    def test_mesh_edges_truncated(self):
        nbs = dor.neighbors((0, 0), (4, 4), torus=False)
        assert set(nbs) == {(1, 0), (0, 1)}

    @given(radices_st, st.data())
    @settings(max_examples=100)
    def test_symmetry(self, radices, data):
        c = data.draw(coords_for(radices))
        for nb in dor.neighbors(c, radices):
            assert c in dor.neighbors(nb, radices)
