"""Tests for the bisection-width model."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import TopologyError
from repro.topology import (FatTreeTopology, GHCTopology, NestGHC, NestTree,
                            TorusTopology)
from repro.topology.bisection import (bisection_bandwidth, bisection_cables,
                                      bisection_per_endpoint,
                                      fattree_bisection, ghc_bisection,
                                      torus_bisection)


def brute_force_bisection(topo) -> int:
    """Minimum edge cut over all balanced endpoint bipartitions.

    Exponential — only usable on the tiniest instances.  Switch vertices
    are assigned greedily to whichever side minimises the cut, which is
    exact for the tiny fabrics used here (verified by full enumeration of
    switch sides when few switches exist).
    """
    g = topo.to_networkx()
    n = topo.num_endpoints
    endpoints = list(range(n))
    best = None
    for left in itertools.combinations(endpoints, n // 2):
        left_set = set(left)
        switches = list(range(n, n + topo.num_switches))
        local_best = None
        for assign in itertools.product([0, 1], repeat=len(switches)):
            side = dict(zip(switches, assign))
            cut = 0
            for u, v in g.edges():
                su = (u in left_set) if u < n else side[u] == 0
                sv = (v in left_set) if v < n else side[v] == 0
                cut += su != sv
            if local_best is None or cut < local_best:
                local_best = cut
        if best is None or local_best < best:
            best = local_best
    return best


class TestClosedForms:
    def test_torus_even(self):
        assert torus_bisection((4, 4)) == 2 * 4  # two wrap boundaries

    def test_torus_radix_two_single_boundary(self):
        assert torus_bisection((2, 2)) == 2  # k=2 wrap collapses

    def test_mesh_single_boundary(self):
        assert torus_bisection((4, 4), wraparound=False) == 4

    def test_fattree_full(self):
        assert fattree_bisection(128) == 64

    def test_ghc_row_cut(self):
        # 4x4 GHC, 1 port/switch: each of 4 rows contributes 2*2 links
        assert ghc_bisection((4, 4), 1) == 16

    def test_ghc_min_over_dims(self):
        # radix-2 dimension: 8 rows x 1 link = 8 < radix-8 dim's 2 x 16
        assert ghc_bisection((2, 8), 1) == 8

    def test_ghc_degenerate_single_switch(self):
        assert ghc_bisection((), 8) == 4


class TestDispatch:
    def test_torus(self):
        assert bisection_cables(TorusTopology((4, 4, 2))) == 2 * 8

    def test_fattree(self):
        assert bisection_cables(FatTreeTopology((4, 4))) == 8

    def test_ghc_topology(self):
        assert bisection_cables(GHCTopology((4, 4), 4)) == 16

    def test_nesttree_inherits_fabric(self):
        topo = NestTree(64, 2, 2)  # 32 fattree ports upstairs
        assert bisection_cables(topo) == 16

    def test_nestghc_inherits_fabric(self):
        topo = NestGHC(64, 2, 4, ports_per_switch=4, ghc_dims=2)
        assert bisection_cables(topo) == \
            ghc_bisection(topo.fabric.radices, 4)

    def test_unknown_rejected(self):
        with pytest.raises(TopologyError):
            bisection_cables(object())  # type: ignore[arg-type]


class TestDerived:
    def test_bandwidth(self):
        topo = FatTreeTopology((4, 4), link_capacity=5.0)
        assert bisection_bandwidth(topo) == 8 * 5.0

    def test_per_endpoint_full_bisection(self):
        assert bisection_per_endpoint(FatTreeTopology((4, 4))) == 0.5

    def test_sparser_uplinks_thinner_bisection(self):
        dense = NestTree(64, 2, 1)
        sparse = NestTree(64, 2, 8)
        assert bisection_cables(sparse) < bisection_cables(dense)


class TestBruteForce:
    def test_small_torus_matches(self):
        topo = TorusTopology((4, 2))
        assert bisection_cables(topo) == brute_force_bisection(topo)

    def test_small_mesh_matches(self):
        topo = TorusTopology((4, 2), wraparound=False)
        assert bisection_cables(topo) == brute_force_bisection(topo)
