"""Tests for sweep fault injection and parallel-runner hardening.

The worker-death tests patch ``_run_cell`` in the parent and rely on the
``fork`` start method to carry the patch into worker processes; they are
skipped on platforms without ``fork``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time

import pytest

import repro.sweep.runner as runner_mod
from repro.core import DesignSpaceExplorer
from repro.errors import SimulationError
from repro.sweep import SweepCheckpoint, run_sweep

ENDPOINTS = 64
#: Small design space (4 hybrids + 2 baselines) to keep these sweeps quick.
CONFIGS = ((2, 2), (2, 4))

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker-death tests need the fork start method")


def make_explorer(**kwargs) -> DesignSpaceExplorer:
    return DesignSpaceExplorer(ENDPOINTS, configs=CONFIGS,
                               quadratic_tasks=16, seed=0, **kwargs)


def fingerprint(table):
    return [(r.workload, r.topology, r.family, r.t, r.u, r.makespan,
             r.num_flows, r.events, r.reallocations, r.faults)
            for r in table.records]


def checkpoint_errors(path) -> list[dict]:
    return [doc for doc in map(json.loads, path.read_text().splitlines()[1:])
            if "error" in doc]


class TestDegradedSweeps:
    # fail_seed=1: keeps every family connected at this size (seed 0 cuts
    # a fattree endpoint's only edge link, which is a correct abort)
    def test_serial_and_parallel_identical_under_faults(self):
        serial = make_explorer().run(["reduce"], fail_links=2, fail_uplinks=1,
                                     fail_seed=1)
        parallel = make_explorer().run(["reduce"], fail_links=2,
                                       fail_uplinks=1, fail_seed=1, jobs=3)
        assert fingerprint(serial) == fingerprint(parallel)
        for r in serial.records:
            expected = 1 if r.family in ("nesttree", "nestghc") else 0
            assert r.faults == {"cables": 2, "uplinks": expected, "seed": 1}

    def test_healthy_and_degraded_keys_never_mix(self):
        healthy = make_explorer().plan(["reduce"])
        degraded = make_explorer().plan(["reduce"], fail_links=2)
        healthy_keys = {c.key() for c in healthy.cells}
        degraded_keys = {c.key() for c in degraded.cells}
        assert not healthy_keys & degraded_keys
        assert all("faults(2,0,s0)" in k for k in degraded_keys)

    def test_degraded_resume_ignores_healthy_records(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        make_explorer().run(["reduce"], checkpoint=str(ck))
        healthy_lines = len(ck.read_text().splitlines())
        table = make_explorer().run(["reduce"], checkpoint=str(ck),
                                    resume=True, fail_links=2, fail_seed=1)
        # every degraded cell ran (appended), none satisfied by healthy rows
        assert len(ck.read_text().splitlines()) == \
            healthy_lines + len(table.records)
        assert all(r.faults for r in table.records)


class TestKeepGoing:
    @pytest.fixture()
    def poisoned(self, monkeypatch):
        """Patch one cell (reduce on the torus baseline) to raise."""
        real = runner_mod._run_cell

        def failing(plan, cell, *args, **kwargs):
            if cell.topology.family == "torus":
                raise SimulationError("injected cell failure")
            return real(plan, cell, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_cell", failing)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cell_failure_becomes_typed_error_record(self, tmp_path,
                                                     poisoned, jobs):
        ck = tmp_path / "sweep.jsonl"
        table = make_explorer().run(["reduce"], jobs=jobs,
                                    checkpoint=str(ck), keep_going=True)
        assert all(r.family != "torus" for r in table.records)
        errors = checkpoint_errors(ck)
        assert len(errors) == 1
        assert errors[0]["topology"] == "torus"
        assert errors[0]["error"]["type"] == "SimulationError"
        assert "injected cell failure" in errors[0]["error"]["message"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_without_keep_going_failure_aborts(self, poisoned, jobs):
        with pytest.raises(SimulationError, match="injected cell failure"):
            make_explorer().run(["reduce"], jobs=jobs)

    def test_resume_retries_previously_failed_cells(self, tmp_path,
                                                    monkeypatch):
        ck = tmp_path / "sweep.jsonl"
        real = runner_mod._run_cell

        def failing(plan, cell, *args, **kwargs):
            if cell.topology.family == "torus":
                raise SimulationError("injected cell failure")
            return real(plan, cell, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_cell", failing)
        partial = make_explorer().run(["reduce"], checkpoint=str(ck),
                                      keep_going=True)
        monkeypatch.setattr(runner_mod, "_run_cell", real)
        full = make_explorer().run(["reduce"], checkpoint=str(ck),
                                   resume=True)
        assert len(full.records) == len(partial.records) + 1
        assert any(r.family == "torus" for r in full.records)


@needs_fork
class TestWorkerDeath:
    def test_sigkilled_worker_cells_are_requeued(self, tmp_path,
                                                 monkeypatch):
        """A SIGKILLed worker must not lose its cells: the sweep requeues
        them, respawns a replacement, and still returns every record."""
        flag = tmp_path / "killed-once"
        real = runner_mod._run_cell

        def kill_once(plan, cell, *args, **kwargs):
            if cell.topology.family == "fattree" and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real(plan, cell, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_cell", kill_once)
        table = make_explorer().run(["reduce"], jobs=2)
        assert flag.exists()  # the kill actually happened
        monkeypatch.setattr(runner_mod, "_run_cell", real)
        serial = make_explorer().run(["reduce"])
        assert fingerprint(table) == fingerprint(serial)

    def test_repeat_crasher_is_marked_failed_with_keep_going(
            self, tmp_path, monkeypatch):
        def always_kill(plan, cell, *args, **kwargs):
            if cell.topology.family == "fattree":
                os.kill(os.getpid(), signal.SIGKILL)
            return runner_mod.__dict__["_real_run_cell"](
                plan, cell, *args, **kwargs)

        monkeypatch.setitem(runner_mod.__dict__, "_real_run_cell",
                            runner_mod._run_cell)
        monkeypatch.setattr(runner_mod, "_run_cell", always_kill)
        ck = tmp_path / "sweep.jsonl"
        table = make_explorer().run(["reduce"], jobs=2, checkpoint=str(ck),
                                    keep_going=True)
        assert all(r.family != "fattree" for r in table.records)
        errors = checkpoint_errors(ck)
        assert len(errors) == 1
        assert errors[0]["error"]["type"] == "WorkerCrashed"

    def test_cell_timeout_kills_stuck_worker(self, tmp_path, monkeypatch):
        real = runner_mod._run_cell

        def stuck(plan, cell, *args, **kwargs):
            if cell.topology.family == "fattree":
                time.sleep(60)
            return real(plan, cell, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_cell", stuck)
        ck = tmp_path / "sweep.jsonl"
        t0 = time.monotonic()
        table = make_explorer().run(["reduce"], jobs=2, checkpoint=str(ck),
                                    keep_going=True, cell_timeout=2.0)
        assert time.monotonic() - t0 < 50  # killed, not waited out
        assert all(r.family != "fattree" for r in table.records)
        errors = checkpoint_errors(ck)
        assert len(errors) == 1
        assert errors[0]["error"]["type"] == "CellTimeout"


class TestSerialTimeout:
    def test_serial_timeout_is_flagged_post_hoc(self, tmp_path, monkeypatch):
        real = runner_mod._run_cell

        def slow(plan, cell, *args, **kwargs):
            doc = real(plan, cell, *args, **kwargs)
            if cell.topology.family == "torus":
                doc["wall_seconds"] = 99.0
            return doc

        monkeypatch.setattr(runner_mod, "_run_cell", slow)
        ck = tmp_path / "sweep.jsonl"
        table = make_explorer().run(["reduce"], checkpoint=str(ck),
                                    keep_going=True, cell_timeout=10.0)
        assert all(r.family != "torus" for r in table.records)
        assert checkpoint_errors(ck)[0]["error"]["type"] == "CellTimeout"


class TestCheckpointHardening:
    META = {"endpoints": ENDPOINTS, "fidelity": "approx", "seed": 0}

    def write(self, path, body_lines):
        header = json.dumps({"magic": "repro-sweep-v1", "meta": self.META})
        path.write_text("\n".join([header, *body_lines]) + "\n")

    def good_record(self, key="reduce@all|torus"):
        return {"key": key, "workload": "reduce", "topology": "torus",
                "family": "torus", "t": None, "u": None, "faults": None,
                "makespan": 1.0, "num_flows": 2, "events": 3,
                "reallocations": 4, "wall_seconds": 0.1}

    def test_mid_file_corruption_is_skipped_and_counted(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        self.write(ck, [
            json.dumps(self.good_record("a")),
            '{"key": "torn-mid-file", "makespa',       # torn mid-file
            json.dumps({"key": "b", "workload": "reduce"}),  # schema-invalid
            json.dumps({"no_key": True}),              # schema-invalid
            json.dumps(self.good_record("c")),
        ])
        messages = []
        store = SweepCheckpoint(ck, self.META)
        records = store.load(log=messages.append)
        assert set(records) == {"a", "c"}
        assert len(messages) == 1 and "skipped 3" in messages[0]

    def test_error_records_load_as_schema_valid(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        err = {"key": "e", "workload": "reduce", "topology": "torus",
               "faults": None,
               "error": {"type": "CellTimeout", "message": "too slow"}}
        self.write(ck, [json.dumps(err)])
        store = SweepCheckpoint(ck, self.META)
        assert store.load() == {"e": err}

    def test_silent_without_log_sink(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        self.write(ck, ["garbage"])
        assert SweepCheckpoint(ck, self.META).load() == {}


class TestRunnerGuards:
    def test_bad_cell_timeout_rejected(self):
        plan = make_explorer().plan(["reduce"])
        with pytest.raises(SimulationError, match="cell_timeout"):
            run_sweep(plan, cell_timeout=0)

    def test_bad_max_respawns_rejected(self):
        plan = make_explorer().plan(["reduce"])
        with pytest.raises(SimulationError, match="max_respawns"):
            run_sweep(plan, max_respawns=-1)
