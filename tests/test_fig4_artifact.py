"""Scale-smoke validation of the committed 131,072-endpoint Figure 4 sweep.

The repo commits the paper-scale Figure 4 artifact
(``results/fig4_131072.{txt,csv}``, produced by ``repro fig4 --endpoints
131072 --workloads allreduce --jobs 4`` with the sharded per-worker
route-cache budgets).  CI cannot afford to regenerate it, but it *can*
prove the committed artifact is internally consistent: full cell
coverage, paper-scale flow counts, the fattree reference present, and
the shape checks the figure renderer stamped still reading OK.
"""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

pytestmark = pytest.mark.scale_smoke

ARTIFACT_DIR = Path(__file__).resolve().parent.parent / "results"
ENDPOINTS = 131072

#: 12 (t,u) points x 2 hybrid families + fattree + torus, allreduce only.
EXPECTED_CELLS = 26

#: AllReduce at N endpoints injects 15 waves of N flows at this scale
#: (the recursive-doubling schedule's depth is log2-driven; the committed
#: 32k artifact shows the same 15 x N shape).
FLOWS_PER_CELL = 15 * ENDPOINTS


def _skip_unless_complete():
    """Skip when the artifact is absent or mid-generation.

    The renderer writes the report (shape checks included) only after
    the last cell completes, so its presence marks a finished sweep —
    a checkout caught between `repro fig4` starting and finishing must
    read as "no artifact", not as a validation failure.
    """
    report = ARTIFACT_DIR / f"fig4_{ENDPOINTS}.txt"
    if not report.exists() or "shape checks" not in report.read_text():
        pytest.skip(f"completed fig4_{ENDPOINTS} artifact not present")


class TestFig4PaperScaleArtifact:
    @pytest.fixture(scope="class")
    def rows(self):
        _skip_unless_complete()
        path = ARTIFACT_DIR / f"fig4_{ENDPOINTS}.csv"
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        return rows

    def test_cell_coverage(self, rows):
        assert len(rows) == EXPECTED_CELLS
        assert {r["workload"] for r in rows} == {"allreduce"}
        families = {r["family"] for r in rows}
        assert families == {"nesttree", "nestghc", "fattree", "torus"}
        hybrids = [r for r in rows if r["family"] in ("nesttree",
                                                      "nestghc")]
        assert len(hybrids) == 24
        assert {(r["t"], r["u"]) for r in hybrids} == \
            {(t, u) for t in ("2", "4", "8") for u in ("1", "2", "4", "8")}

    def test_paper_scale_flow_counts(self, rows):
        for r in rows:
            assert int(r["num_flows"]) == FLOWS_PER_CELL, r["topology"]
            assert int(r["events"]) > 0, r["topology"]
            assert float(r["makespan_s"]) > 0.0, r["topology"]

    def test_fattree_is_the_fastest_reference(self, rows):
        by_family = {r["family"]: r for r in rows}
        ref = float(by_family["fattree"]["makespan_s"])
        assert ref > 0.0
        # the paper's central claim at scale: no topology beats the full
        # fat-tree on allreduce, and the torus degrades well past it
        for r in rows:
            assert float(r["makespan_s"]) >= ref * (1.0 - 1e-9), \
                r["topology"]
        assert float(by_family["torus"]["makespan_s"]) > 2.0 * ref

    def test_report_shape_checks_ok(self):
        _skip_unless_complete()
        text = (ARTIFACT_DIR / f"fig4_{ENDPOINTS}.txt").read_text()
        assert f"{ENDPOINTS} endpoints" in text
        assert "[OK ] allreduce" in text
        assert "[FAIL" not in text
