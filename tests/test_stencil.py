"""Tests for the grid-structured workloads: Sweep3D, Flood, NearNeighbors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.errors import WorkloadError
from repro.routing import dor
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import Flood, NearNeighbors, Sweep3D


class TestSweep3D:
    def test_flow_count(self):
        # 4x4x4 grid: 3 * 4^2 * (4-1) = 144 forwarding flows
        wl = Sweep3D(64)
        fs = wl.build()
        gx, gy, gz = wl.grid_dims
        expected = gy * gz * (gx - 1) + gx * gz * (gy - 1) + gx * gy * (gz - 1)
        assert fs.num_flows == expected

    def test_corner_task_is_the_only_root_sender(self):
        wl = Sweep3D(64)
        fs = wl.build()
        roots = fs.roots()
        assert set(fs.src[roots].tolist()) == {0}

    def test_wavefront_depth(self):
        wl = Sweep3D(64)
        # longest chain: corner to corner = sum(dims - 1) hops
        assert wl.build().dependency_depth() == sum(d - 1 for d in wl.grid_dims)

    def test_wavefront_completion_order(self):
        wl = Sweep3D(27)
        fs = wl.build()
        topo = TorusTopology((27,))
        times = simulate(topo, fs).completion_times
        # a flow from a deeper diagonal can never finish before the shallowest
        # flow of an earlier diagonal has delivered (wavefront causality)
        depth = np.array([sum(wl.coord(int(s))) for s in fs.src])
        for level in range(1, depth.max() + 1):
            assert times[depth == level].min() > \
                times[depth == level - 1].min()
        # the corner's sends are the first to finish overall
        first = np.nonzero(fs.src == 0)[0]
        assert times[first].min() == pytest.approx(times.min())

    def test_multiple_sweeps_chain(self):
        one = Sweep3D(27, sweeps=1).build()
        two = Sweep3D(27, sweeps=2).build()
        assert two.num_flows == 2 * one.num_flows
        assert two.dependency_depth() > one.dependency_depth()

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            Sweep3D(27, sweeps=0)


class TestFlood:
    def test_source_is_grid_centre(self):
        wl = Flood(64)
        assert wl.coord(wl.source) == tuple(k // 2 for k in wl.grid_dims)

    def test_flows_point_outward(self):
        wl = Flood(64, wavefronts=1)
        fs = wl.build()
        src_c = wl.coord(wl.source)
        for s, d in zip(fs.src.tolist(), fs.dst.tolist()):
            ds = dor.distance(src_c, wl.coord(s), wl.grid_dims, torus=False)
            dd = dor.distance(src_c, wl.coord(d), wl.grid_dims, torus=False)
            assert dd == ds + 1

    def test_wavefront_scaling(self):
        one = Flood(64, wavefronts=1).build()
        three = Flood(64, wavefronts=3).build()
        assert three.num_flows == 3 * one.num_flows

    def test_source_flows_are_roots(self):
        wl = Flood(64, wavefronts=2)
        fs = wl.build()
        roots = set(fs.roots().tolist())
        first_wave_source = [i for i in range(fs.num_flows)
                             if fs.src[i] == wl.source and i in roots]
        assert first_wave_source  # the source starts the flood

    def test_heavier_than_sweep(self):
        # flood pushes more concurrent wavefronts -> more flows
        assert Flood(64, wavefronts=4).build().num_flows > \
            Sweep3D(64).build().num_flows


class TestNearNeighbors:
    def test_flow_count_per_round(self):
        wl = NearNeighbors(64, rounds=1)   # default: 2-D 9-point stencil
        fs = wl.build()
        assert wl.grid_dims == (8, 8)
        assert fs.num_flows == 64 * 8     # 8 wraparound neighbours each

    def test_grid_is_widest_first(self):
        assert NearNeighbors(512).grid_dims == (32, 16)

    def test_3d_variant_flow_count(self):
        wl = NearNeighbors(64, rounds=1, dims=3, diagonals=False)
        fs = wl.build()
        per_task = len(dor.neighbors((1, 1, 1), wl.grid_dims))
        assert fs.num_flows == 64 * per_task

    def test_rounds_scale_flows(self):
        assert NearNeighbors(64, rounds=3).build().num_flows == \
            3 * NearNeighbors(64, rounds=1).build().num_flows

    def test_first_round_all_concurrent(self):
        fs = NearNeighbors(64, rounds=2).build()
        half = fs.num_flows // 2
        assert (fs.indegree[:half] == 0).all()
        assert (fs.indegree[half:] > 0).all()

    def test_depth_equals_rounds(self):
        assert NearNeighbors(64, rounds=3).build().dependency_depth() == 3

    def test_all_tasks_inject(self):
        fs = NearNeighbors(64, rounds=1).build()
        assert set(fs.src.tolist()) == set(range(64))

    def test_3d_stencil_matches_torus(self):
        """A torus-aligned (3-D) stencil travels one physical hop per halo."""
        wl = NearNeighbors(64, rounds=1, dims=3, diagonals=False,
                           message_size=CAP / 100)
        topo = TorusTopology(wl.grid_dims)
        for s, d in zip(wl.build().src[:20], wl.build().dst[:20]):
            assert topo.hops(int(s), int(d)) == 1

    def test_2d_stencil_strides_across_a_torus(self):
        """The default 2-D decomposition does NOT align with a 3-D torus:
        one stencil direction is multiple physical hops away, which is what
        makes the torus lose this workload in the paper's Figure 4."""
        wl = NearNeighbors(512, rounds=1, message_size=CAP / 100)
        topo = TorusTopology.cubic(512)
        hops = [topo.hops(int(s), int(d))
                for s, d in zip(wl.build().src, wl.build().dst)]
        assert max(hops) > 1

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            NearNeighbors(64, rounds=0)


class TestGridValidation:
    def test_prime_task_count_rejected(self):
        with pytest.raises(WorkloadError):
            Sweep3D(7)
