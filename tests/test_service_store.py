"""Tests for the content-addressed result store."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service.store import (RESULT_SCHEMA_VERSION, ResultStore,
                                 ResultStoreWarning, content_digest,
                                 validate_store_record)

META = {"endpoints": 64, "fidelity": "approx", "seed": 0}

FINGERPRINT = {
    "workload": "reduce", "tasks": None, "topology": "fattree",
    "placement": "spread", "faults": None, "routing": "deterministic",
    "timeline": None, "engine": "1.0.0",
}

RECORD = {
    "key": "reduce@all|fattree", "workload": "reduce",
    "topology": "fattree", "family": "fattree", "makespan": 0.0065,
    "num_flows": 63, "events": 1, "reallocations": 1,
    "wall_seconds": 0.01,
}


def digest() -> str:
    return content_digest(FINGERPRINT, META)


class TestContentDigest:
    def test_deterministic_and_order_independent(self):
        reordered = dict(reversed(list(FINGERPRINT.items())))
        assert content_digest(FINGERPRINT, META) \
            == content_digest(reordered, META)
        assert len(digest()) == 64

    def test_meta_and_fingerprint_sensitive(self):
        assert content_digest(FINGERPRINT, META) \
            != content_digest(FINGERPRINT, dict(META, endpoints=128))
        other = dict(FINGERPRINT, placement="random")
        assert content_digest(FINGERPRINT, META) \
            != content_digest(other, META)

    def test_engine_version_changes_the_address(self):
        bumped = dict(FINGERPRINT, engine="9.9.9")
        assert content_digest(FINGERPRINT, META) \
            != content_digest(bumped, META)


class TestValidation:
    def make_doc(self, **over) -> dict:
        doc = {"schema": RESULT_SCHEMA_VERSION, "digest": digest(),
               "fingerprint": dict(FINGERPRINT), "meta": dict(META),
               "record": dict(RECORD)}
        doc.update(over)
        return doc

    def test_valid_doc_passes(self):
        validate_store_record(self.make_doc())

    def test_bad_schema_rejected(self):
        with pytest.raises(ServiceError, match="schema"):
            validate_store_record(self.make_doc(schema="something-else"))

    def test_bad_digest_rejected(self):
        with pytest.raises(ServiceError, match="digest"):
            validate_store_record(self.make_doc(digest="abc"))

    def test_error_records_never_stored(self):
        bad = self.make_doc(record=dict(RECORD, error="SimulationError"))
        with pytest.raises(ServiceError, match="error records"):
            validate_store_record(bad)

    def test_missing_result_fields_rejected(self):
        body = dict(RECORD)
        del body["makespan"]
        with pytest.raises(ServiceError, match="makespan"):
            validate_store_record(self.make_doc(record=body))

    def test_engineless_fingerprint_rejected(self):
        fp = dict(FINGERPRINT)
        del fp["engine"]
        with pytest.raises(ServiceError, match="engine"):
            validate_store_record(self.make_doc(fingerprint=fp))


class TestStoreRoundTrip:
    def test_put_get_contains_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(digest()) is None
        assert digest() not in store
        doc = store.put(digest(), FINGERPRINT, META, RECORD)
        assert digest() in store
        assert store.get(digest()) == doc
        assert store.digests() == [digest()]
        assert len(store) == 1
        assert store.stats["puts"] == 1 and store.stats["hits"] == 1

    def test_records_fan_into_prefix_dirs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(digest(), FINGERPRINT, META, RECORD)
        path = tmp_path / digest()[:2] / f"{digest()}.json"
        assert path.exists()

    def test_fresh_store_reads_predecessors_records(self, tmp_path):
        ResultStore(tmp_path).put(digest(), FINGERPRINT, META, RECORD)
        again = ResultStore(tmp_path)
        assert again.get(digest())["record"] == RECORD


class TestCorruptRecovery:
    def write_raw(self, root: Path, text: str) -> Path:
        path = root / digest()[:2] / f"{digest()}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def test_garbage_record_warns_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self.write_raw(tmp_path, "not json at all")
        with pytest.warns(ResultStoreWarning):
            assert store.get(digest()) is None
        assert not path.exists()  # removed, so the next read is a clean miss
        assert store.stats["corrupt"] == 1

    def test_truncated_record_recovers(self, tmp_path):
        store = ResultStore(tmp_path)
        doc = store.put(digest(), FINGERPRINT, META, RECORD)
        path = tmp_path / digest()[:2] / f"{digest()}.json"
        path.write_text(json.dumps(doc)[: len(json.dumps(doc)) // 2])
        with pytest.warns(ResultStoreWarning):
            assert store.get(digest()) is None
        # re-putting heals the store
        store.put(digest(), FINGERPRINT, META, RECORD)
        assert store.get(digest()) is not None

    def test_foreign_schema_record_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        self.write_raw(tmp_path, json.dumps({"schema": "other-v1"}))
        with pytest.warns(ResultStoreWarning):
            assert store.get(digest()) is None

    def test_digest_mismatch_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        doc = {"schema": RESULT_SCHEMA_VERSION, "digest": "f" * 64,
               "fingerprint": FINGERPRINT, "meta": META, "record": RECORD}
        self.write_raw(tmp_path, json.dumps(doc))
        with pytest.warns(ResultStoreWarning):
            assert store.get(digest()) is None

    def test_crashed_predecessors_tmp_debris_is_inert(self, tmp_path):
        # a predecessor that died mid-put leaves a *.tmp file behind; it
        # must never be served and must not break enumeration
        store = ResultStore(tmp_path)
        store.put(digest(), FINGERPRINT, META, RECORD)
        debris = tmp_path / digest()[:2] / f"{digest()}.99999.tmp"
        debris.write_text("half-written garbag")
        assert store.digests() == [digest()]
        assert store.get(digest())["record"] == RECORD


WRITER = """
import sys
from repro.service.store import ResultStore, content_digest

root, start = sys.argv[1], int(sys.argv[2])
meta = {"endpoints": 64, "fidelity": "approx", "seed": 0}
store = ResultStore(root)
for i in range(start, start + 40):
    fp = {"workload": "reduce", "tasks": None, "topology": f"topo{i % 8}",
          "placement": "spread", "faults": None,
          "routing": "deterministic", "timeline": None, "engine": "1.0.0"}
    record = {"key": f"k{i % 8}", "workload": "reduce",
              "topology": f"topo{i % 8}", "family": "t", "makespan": 0.1,
              "num_flows": 1, "events": 1, "reallocations": 0,
              "wall_seconds": 0.0}
    store.put(content_digest(fp, meta), fp, meta, record)
print(len(store.digests()))
"""


class TestConcurrentAccess:
    def test_two_processes_share_one_store_without_corruption(
            self, tmp_path):
        # two writers race on an overlapping digest set (i % 8 aliases
        # across the ranges): every surviving record must validate
        import os

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(repro.__file__).parents[1])]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        procs = [subprocess.Popen(
            [sys.executable, "-c", WRITER, str(tmp_path), str(start)],
            stdout=subprocess.PIPE, env=env)
            for start in (0, 4)]
        for proc in procs:
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
        store = ResultStore(tmp_path)
        digests = store.digests()
        assert len(digests) == 8  # 8 distinct fingerprints across both
        for d in digests:
            doc = store.get(d)
            assert doc is not None and doc["digest"] == d
        assert store.stats["corrupt"] == 0
