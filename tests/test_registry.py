"""Tests for the topology and workload registries."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.topology import registry as topo_registry
from repro.workloads import registry as wl_registry
from repro.workloads.base import HEAVY, LIGHT


class TestTopologyRegistry:
    def test_available_families(self):
        assert {"torus", "fattree", "thintree", "ghc", "nesttree",
                "nestghc"} <= set(topo_registry.available())

    def test_build_each_family(self):
        assert topo_registry.build("torus", 64).name == "torus"
        assert topo_registry.build("fattree", 64).name == "fattree"
        assert topo_registry.build("ghc", 64,
                                   ports_per_switch=4).name == "ghc"
        assert topo_registry.build("nesttree", 64, t=2, u=2).name == "nesttree"
        assert topo_registry.build("nestghc", 64, t=2, u=4,
                                   ports_per_switch=4).name == "nestghc"

    def test_torus_explicit_dims(self):
        topo = topo_registry.build("torus", 0, dims=(4, 2))
        assert topo.num_endpoints == 8

    def test_fattree_explicit_arities(self):
        topo = topo_registry.build("fattree", 0, arities=(4, 2))
        assert topo.num_endpoints == 8

    def test_unknown_family(self):
        with pytest.raises(ConfigError):
            topo_registry.build("hypertorus9000", 64)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            topo_registry.register("torus", lambda n, p: None)

    def test_ghc_indivisible_ports(self):
        with pytest.raises(ConfigError):
            topo_registry.build("ghc", 66, ports_per_switch=4)


class TestWorkloadRegistry:
    def test_paper_eleven_plus_extras_present(self):
        assert len(wl_registry.available()) == 12  # 11 paper + permutation
        assert "permutation" in wl_registry.available()

    def test_paper_figure_grouping(self):
        assert wl_registry.heavy_workloads() == sorted(
            ["unstructuredapp", "unstructuredhr", "bisection", "allreduce",
             "nbodies", "nearneighbors"])
        assert wl_registry.light_workloads() == sorted(
            ["unstructuredmgnt", "mapreduce", "reduce", "flood", "sweep3d"])

    def test_build(self):
        wl = wl_registry.build("reduce", 16)
        assert wl.name == "reduce"
        assert wl.num_tasks == 16

    def test_unknown(self):
        with pytest.raises(ConfigError):
            wl_registry.build("alltoallv", 16)

    def test_classifications_are_valid(self):
        from repro.workloads.base import EXTRA

        for name in wl_registry.available():
            wl = wl_registry.build(name, 16)
            assert wl.classification in (HEAVY, LIGHT, EXTRA)

    def test_extras_stay_out_of_the_figures(self):
        assert "permutation" not in wl_registry.heavy_workloads()
        assert "permutation" not in wl_registry.light_workloads()
